//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The workspace's property tests must run in sandboxes with **no registry
//! access**, so the strategy combinators and macros they use are
//! reimplemented here from scratch (see the workspace `Cargo.toml`, which
//! wires this in as a path dependency). Semantics:
//!
//! * Strategies are pure generators — `generate(rng) -> Value` — with the
//!   combinators the workspace uses: [`prop_map`](strategy::Strategy::prop_map),
//!   [`prop_flat_map`](strategy::Strategy::prop_flat_map),
//!   [`prop_recursive`](strategy::Strategy::prop_recursive),
//!   [`boxed`](strategy::Strategy::boxed), tuples, ranges, [`strategy::Just`],
//!   [`arbitrary::any`], [`collection::vec`], [`sample::select`],
//!   [`sample::subsequence`], and [`prop_oneof!`].
//! * The [`proptest!`] macro runs each test body for
//!   [`ProptestConfig::cases`](test_runner::ProptestConfig) deterministic
//!   pseudo-random cases (seeded from the test's module path, so runs are
//!   reproducible across machines).
//! * `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!` forward to the
//!   standard assertion macros; [`prop_assume!`] rejects the current case
//!   and draws a fresh one.
//! * **No shrinking**: a failing case reports its case number and panics
//!   with the original assertion message. That trades minimal
//!   counterexamples for zero dependencies, which is the right trade for
//!   an air-gapped CI sandbox.

pub mod test_runner {
    //! Deterministic case scheduling: RNG, config, and the rejection
    //! signal `prop_assume!` raises.

    /// How many random cases a `proptest!` test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running exactly `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Panic payload used by `prop_assume!` to reject a case; the
    /// `proptest!` harness catches it and draws a fresh case instead of
    /// failing the test.
    #[derive(Debug)]
    pub struct Rejected;

    /// SplitMix64 — a tiny, statistically solid generator; each test case
    /// gets an independent stream derived from (test name, case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The deterministic generator for one test case.
        pub fn for_case(name_hash: u64, case: u32) -> TestRng {
            TestRng {
                state: name_hash ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform on `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// FNV-1a hash of a test's fully qualified name, used as the base seed.
    pub fn hash_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    ///
    /// Unlike real proptest there is no value tree and no shrinking; a
    /// strategy is simply a deterministic function of an RNG stream.
    pub trait Strategy: 'static {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O + 'static,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` derives
        /// from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S + 'static,
        {
            FlatMap { inner: self, f }
        }

        /// Recursive strategies: `self` generates leaves; `recurse` builds
        /// a strategy for one more level on top of an inner strategy. A
        /// random depth up to `max_depth` is chosen per case.
        ///
        /// `desired_size` and `expected_branch_size` are accepted for
        /// source compatibility and ignored (they tune proptest's size
        /// accounting, which this shim does not model).
        fn prop_recursive<S, F>(
            self,
            max_depth: u32,
            desired_size: u32,
            expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized,
            S: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        {
            let _ = (desired_size, expected_branch_size);
            Recursive {
                base: self.boxed(),
                max_depth,
                recurse: Rc::new(move |inner| recurse(inner).boxed()),
            }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            let me = Rc::new(self);
            BoxedStrategy(Rc::new(move |rng| me.generate(rng)))
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + 'static,
        O: 'static,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + 'static,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        max_depth: u32,
        recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let depth = rng.below(self.max_depth as usize + 1);
            let mut strat = self.base.clone();
            for _ in 0..depth {
                strat = (self.recurse)(strat);
            }
            strat.generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between strategies of a common value type; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T: 'static> Union<T> {
        /// A union over the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.arms.len());
            self.arms[k].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start
                        .wrapping_add((u128::from(rng.next_u64()) % span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                    lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+ ))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies for primitive types.

    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical [`any`] strategy.
    pub trait Arbitrary: Sized + 'static {
        /// Generates one uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        pub(crate) fn pick(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below(self.hi - self.lo + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub(crate) use SizeRange as SizeRangeInternal;
}

pub mod sample {
    //! Sampling from fixed pools.

    use crate::collection::SizeRangeInternal as SizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`select`].
    pub struct Select<T> {
        pool: Vec<T>,
    }

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.pool[rng.below(self.pool.len())].clone()
        }
    }

    /// One element of `pool`, uniformly.
    ///
    /// # Panics
    ///
    /// Panics (on generation) if `pool` is empty.
    pub fn select<T: Clone + 'static>(pool: Vec<T>) -> Select<T> {
        Select { pool }
    }

    /// The strategy returned by [`subsequence`].
    pub struct Subsequence<T> {
        pool: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone + 'static> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let want = self.size.pick(rng).min(self.pool.len());
            // Reservoir-free order-preserving subset: walk the pool and
            // keep each element with the probability needed to hit `want`.
            let mut out = Vec::with_capacity(want);
            let mut remaining_pool = self.pool.len();
            let mut remaining_want = want;
            for item in &self.pool {
                if remaining_want == 0 {
                    break;
                }
                // P(keep) = want-left / pool-left keeps all subsets of the
                // chosen size equally likely.
                if rng.below(remaining_pool) < remaining_want {
                    out.push(item.clone());
                    remaining_want -= 1;
                }
                remaining_pool -= 1;
            }
            out
        }
    }

    /// An order-preserving random subsequence of `pool` with a length in
    /// `size` (clamped to the pool length).
    pub fn subsequence<T: Clone + 'static>(
        pool: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> Subsequence<T> {
        Subsequence {
            pool,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Everything property tests normally import.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Rejects the current case (the harness draws a fresh one) when the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            ::std::panic::panic_any($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies;
/// see the crate docs for the differences from real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __name_hash = $crate::test_runner::hash_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __case: u32 = 0;
            let mut __attempt: u32 = 0;
            // Rejections (prop_assume!) do not count as cases; give up
            // quietly if the assumption is almost never satisfiable.
            while __case < __config.cases && __attempt < __config.cases.saturating_mul(64) {
                let mut __rng = $crate::test_runner::TestRng::for_case(__name_hash, __attempt);
                __attempt += 1;
                $(
                    let $arg = {
                        let __s = $strat;
                        $crate::strategy::Strategy::generate(&__s, &mut __rng)
                    };
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body })
                );
                match __outcome {
                    ::std::result::Result::Ok(_) => {
                        __case += 1;
                    }
                    ::std::result::Result::Err(__payload) => {
                        if __payload
                            .downcast_ref::<$crate::test_runner::Rejected>()
                            .is_some()
                        {
                            continue;
                        }
                        ::std::eprintln!(
                            "proptest: `{}` failed on generated case #{} (attempt {})",
                            stringify!($name),
                            __case,
                            __attempt - 1,
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn strategies_are_deterministic_per_stream() {
        let strat = crate::collection::vec(0.0f64..4.0, 1..5);
        let mut a = TestRng::for_case(1, 2);
        let mut b = TestRng::for_case(1, 2);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn subsequence_preserves_order_and_bounds() {
        let pool: Vec<usize> = (0..10).collect();
        let strat = crate::sample::subsequence(pool, 1..=10);
        let mut rng = TestRng::for_case(3, 4);
        for _ in 0..200 {
            let sub = strat.generate(&mut rng);
            assert!(!sub.is_empty() && sub.len() <= 10);
            assert!(sub.windows(2).all(|w| w[0] < w[1]), "{sub:?}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0usize..4)
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::for_case(9, 0);
        let mut max_seen = 0;
        for _ in 0..100 {
            max_seen = max_seen.max(depth(&strat.generate(&mut rng)));
        }
        assert!((1..=3).contains(&max_seen), "depth {max_seen}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_in_range(x in 3usize..7, p in 0.0f64..=1.0) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn assume_rejects_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_just_mix(v in prop_oneof![Just(1usize), 5usize..8]) {
            prop_assert!(v == 1 || (5..8).contains(&v));
        }
    }
}
