//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace's benches must compile (and be runnable) in sandboxes with
//! no registry access, so the small slice of criterion's API they use is
//! reimplemented here (see the workspace `Cargo.toml`, which wires this in
//! as a path dependency). Instead of criterion's bootstrapped statistics
//! and HTML reports, each benchmark is timed for a fixed number of
//! wall-clock samples and a `median / mean / throughput` line is printed to
//! stdout. That is enough to compare configurations by eye and to drive
//! the repo's JSON-emitting bench binaries; it makes no attempt at
//! criterion's noise rejection.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; accepted for source compatibility, and
/// only used to pick an iteration count per sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: many iterations per sample.
    SmallInput,
    /// Large per-iteration inputs: one iteration per sample.
    LargeInput,
    /// Per-iteration setup dominates: one iteration per sample.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Times `routine`, recording one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the recorded durations.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = size;
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// A named family of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
        };
        f(&mut bencher);
        report(&full, &samples, self.throughput);
        let _ = &self.criterion;
        self
    }

    /// Ends the group (kept for source compatibility; reporting happens
    /// per benchmark).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark with default settings.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(10);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_count: 10,
        };
        f(&mut bencher);
        report(&id, &samples, None);
        self
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let mut line = format!(
        "{name:<48} median {:>12} mean {:>12} ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len()
    );
    if let Some(tp) = throughput {
        let secs = median.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.1} elem/s", n as f64 / secs));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.1} B/s", n as f64 / secs));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Collects benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group, mirroring `criterion::criterion_main!`.
/// CLI filter arguments accepted by real criterion are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(7);
        group.throughput(Throughput::Elements(3));
        let mut runs = 0usize;
        group.bench_function("iter", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 7);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut setups = 0usize;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64; 8]
                },
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 10);
    }
}
