//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace must build and test in sandboxes with **no registry
//! access**, so the handful of `rand` APIs it consumes are reimplemented
//! here from scratch and wired in via a path dependency (see the workspace
//! `Cargo.toml`). The generator is xoshiro256++ seeded through SplitMix64 —
//! the same family the real `SmallRng` uses — so streams are deterministic,
//! fast, and of good statistical quality for simulation workloads.
//!
//! Only the surface the workspace actually calls is provided:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] for
//! `u64`/`f64`/`u32`/`bool`, [`Rng::gen_bool`], and [`Rng::gen_range`]
//! over integer and float ranges. Drop-in source compatibility with rand
//! 0.8 is the goal; statistical *bit* compatibility with the real crate is
//! not (and nothing in the workspace depends on it).

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (see [`Standard`] for the types
    /// supported).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Constructing reproducible generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard {
    /// Samples one uniformly distributed value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types [`Rng::gen_range`] can produce.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[low, high)`; `high` is exclusive.
    fn sample_below<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The successor value, for inclusive upper bounds (saturating).
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn successor(self) -> $t {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_below<R: RngCore>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "empty range");
        low + f64::sample(rng) * (high - low)
    }
    fn successor(self) -> f64 {
        self
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_below(rng, *self.start(), self.end().successor())
    }
}

pub mod rngs {
    //! The generators this shim provides.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// family the real `rand::rngs::SmallRng` wraps on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            // xoshiro must not start from the all-zero state; SplitMix64
            // cannot produce four consecutive zeros, but guard anyway.
            debug_assert!(s.iter().any(|&w| w != 0));
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!(
            (sum / 10_000.0 - 0.5).abs() < 0.02,
            "mean {}",
            sum / 10_000.0
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&w));
        }
    }
}
