//! `swact-suite` — umbrella crate for the `swact` workspace.
//!
//! This crate exists to host the workspace-spanning integration tests in
//! `tests/` and the runnable examples in `examples/`. It re-exports every
//! member crate so examples and tests can reach the whole public API through
//! one dependency.
//!
//! See the individual crates for the actual functionality:
//!
//! * [`swact`] — the LIDAG Bayesian-network switching-activity estimator
//!   (the paper's contribution).
//! * [`swact_circuit`] — gate-level netlists, `.bench` parsing, benchmark
//!   generators.
//! * [`swact_bayesnet`] — discrete Bayesian networks and junction-tree
//!   inference.
//! * [`swact_bdd`] — reduced ordered binary decision diagrams.
//! * [`swact_sim`] — bit-parallel logic simulation (ground truth).
//! * [`swact_baselines`] — comparison estimators from the prior literature.

pub use swact;
pub use swact_baselines;
pub use swact_bayesnet;
pub use swact_bdd;
pub use swact_circuit;
pub use swact_sim;
