//! Pairwise spatial-correlation propagation (Ercolani et al. 1992 /
//! Marculescu et al. 1994 proxy).
//!
//! Every line pair `(a, b)` carries a *correlation coefficient*
//! `C(a,b) = P(a·b) / (P(a)·P(b))`; gate outputs derive their signal
//! probability **and** their coefficients against other lines from their
//! inputs' coefficients, recursively, assuming higher-order correlations
//! factor into pairwise ones:
//!
//! ```text
//! C(AND(a,b), x) ≈ C(a,x) · C(b,x)
//! ```
//!
//! with complement coefficients `C(ā,x) = (1 − P(a)·C(a,x)) / (1 − P(a))`
//! closing the system for all gate kinds over 2-input decomposed logic.
//! This captures first-order reconvergent fan-out exactly where one shared
//! variable dominates, but — as the paper stresses — cannot represent
//! conditional independence or genuine higher-order dependence.

use std::collections::HashMap;

use swact::InputSpec;
use swact_circuit::{decompose::decompose_fanin, Circuit, Driver, GateKind, LineId};

use crate::error::check_spec;
use crate::{BaselineError, SwitchingEstimator};

/// The pairwise-correlation estimator. `max_depth` truncates the coefficient
/// recursion (deeper pairs are assumed uncorrelated), trading accuracy for
/// bounded work on deep circuits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseCorrelation {
    /// Maximum recursion depth for coefficient queries.
    pub max_depth: usize,
}

impl Default for PairwiseCorrelation {
    fn default() -> PairwiseCorrelation {
        PairwiseCorrelation { max_depth: 24 }
    }
}

impl SwitchingEstimator for PairwiseCorrelation {
    fn name(&self) -> &'static str {
        "pairwise-correlation"
    }

    fn estimate(&self, circuit: &Circuit, spec: &InputSpec) -> Result<Vec<f64>, BaselineError> {
        check_spec(circuit, spec)?;
        let working = decompose_fanin(circuit, 2).expect("decomposition of a valid circuit");
        let mut engine = Engine::new(&working, spec, self.max_depth);
        engine.propagate();
        // Map back to original lines by name; switching under temporal
        // independence is 2·p·(1−p), inputs report modeled activity.
        Ok(circuit
            .line_ids()
            .map(|line| match circuit.driver(line) {
                Driver::Input => {
                    let pos = circuit
                        .inputs()
                        .iter()
                        .position(|&l| l == line)
                        .expect("input in list");
                    spec.model(pos).activity()
                }
                Driver::Gate(_) => {
                    let w = working
                        .find_line(circuit.line_name(line))
                        .expect("names preserved");
                    let p = engine.p[w.index()];
                    2.0 * p * (1.0 - p)
                }
            })
            .collect())
    }
}

struct Engine<'c> {
    circuit: &'c Circuit,
    /// Topological rank per line (later lines decompose first).
    rank: Vec<usize>,
    /// Signal probability per line, filled in topological order.
    p: Vec<f64>,
    /// Memoized coefficients keyed by (low id, high id).
    memo: HashMap<(u32, u32), f64>,
    max_depth: usize,
}

impl<'c> Engine<'c> {
    fn new(circuit: &'c Circuit, spec: &InputSpec, max_depth: usize) -> Engine<'c> {
        let mut rank = vec![0usize; circuit.num_lines()];
        for (i, line) in circuit.topo_order().into_iter().enumerate() {
            rank[line.index()] = i;
        }
        let mut p = vec![0.0f64; circuit.num_lines()];
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            p[pi.index()] = spec.model(i).p1();
        }
        Engine {
            circuit,
            rank,
            p,
            memo: HashMap::new(),
            max_depth,
        }
    }

    fn propagate(&mut self) {
        for line in self.circuit.topo_order() {
            if let Driver::Gate(g) = self.circuit.driver(line) {
                self.p[line.index()] = match (g.kind, g.inputs.as_slice()) {
                    (GateKind::Const0, _) => 0.0,
                    (GateKind::Const1, _) => 1.0,
                    (GateKind::Buf, &[a]) => self.p[a.index()],
                    (GateKind::Not, &[a]) => 1.0 - self.p[a.index()],
                    (kind, &[a]) => {
                        // Single-input multi-kind gate degenerates.
                        let pa = self.p[a.index()];
                        match kind.base() {
                            GateKind::And | GateKind::Or | GateKind::Xor => {
                                if kind.is_inverting() {
                                    1.0 - pa
                                } else {
                                    pa
                                }
                            }
                            _ => pa,
                        }
                    }
                    (kind, &[a, b]) => {
                        let c_ab = self.corr(a, b, 0);
                        self.joint_output_probability(kind, a, b, c_ab)
                    }
                    _ => unreachable!("circuit decomposed to fan-in ≤ 2"),
                }
                .clamp(0.0, 1.0);
            }
        }
    }

    /// `P(gate(a,b) = 1)` given the inputs' coefficient.
    fn joint_output_probability(&self, kind: GateKind, a: LineId, b: LineId, c_ab: f64) -> f64 {
        let pa = self.p[a.index()];
        let pb = self.p[b.index()];
        let p_ab = clamp_joint(pa * pb * c_ab, pa, pb);
        match kind {
            GateKind::And => p_ab,
            GateKind::Nand => 1.0 - p_ab,
            GateKind::Or => pa + pb - p_ab,
            GateKind::Nor => 1.0 - (pa + pb - p_ab),
            GateKind::Xor => pa + pb - 2.0 * p_ab,
            GateKind::Xnor => 1.0 - (pa + pb - 2.0 * p_ab),
            _ => unreachable!("binary kinds only"),
        }
    }

    /// The coefficient `C(x, y) = P(x·y)/(P(x)·P(y))`.
    fn corr(&mut self, x: LineId, y: LineId, depth: usize) -> f64 {
        if x == y {
            let p = self.p[x.index()];
            return if p > 0.0 { 1.0 / p } else { 1.0 };
        }
        if depth >= self.max_depth {
            return 1.0;
        }
        let key = (
            x.index().min(y.index()) as u32,
            x.index().max(y.index()) as u32,
        );
        if let Some(&hit) = self.memo.get(&key) {
            return hit;
        }
        // Decompose the topologically later line.
        let (later, other) = if self.rank[x.index()] >= self.rank[y.index()] {
            (x, y)
        } else {
            (y, x)
        };
        let result = match self.circuit.driver(later) {
            Driver::Input => 1.0, // two distinct primary inputs
            Driver::Gate(g) => {
                let kind = g.kind;
                let inputs = g.inputs.clone();
                self.gate_corr(kind, &inputs, later, other, depth)
            }
        };
        let result = if result.is_finite() {
            result.max(0.0)
        } else {
            1.0
        };
        self.memo.insert(key, result);
        result
    }

    /// `C(gate, x)` via the product approximation over the gate's literals.
    fn gate_corr(
        &mut self,
        kind: GateKind,
        inputs: &[LineId],
        gate_line: LineId,
        x: LineId,
        depth: usize,
    ) -> f64 {
        let py = self.p[gate_line.index()];
        let px = self.p[x.index()];
        if py <= 0.0 || py >= 1.0 || px <= 0.0 {
            return 1.0; // constant lines are uncorrelated with everything
        }
        match (kind, inputs) {
            (GateKind::Const0 | GateKind::Const1, _) => 1.0,
            (GateKind::Buf, &[a]) => {
                // P(y·x) = P(a·x); rescale onto P(y) (= P(a)).
                self.corr(a, x, depth + 1)
            }
            (GateKind::Not, &[a]) => {
                let pa = self.p[a.index()];
                let c_ax = self.corr(a, x, depth + 1);
                complement_corr(pa, c_ax)
            }
            (kind, &[a]) => {
                // Degenerate single-input multi-kind gate.
                let c = self.corr(a, x, depth + 1);
                if kind.is_inverting() {
                    complement_corr(self.p[a.index()], c)
                } else {
                    c
                }
            }
            (kind, &[a, b]) => {
                let pa = self.p[a.index()];
                let pb = self.p[b.index()];
                let c_ax = self.corr(a, x, depth + 1);
                let c_bx = self.corr(b, x, depth + 1);
                let c_ab = self.corr(a, b, depth + 1);
                // P(a·b·x) ≈ P(a)P(b)P(x)·C(ab)C(ax)C(bx): conditional
                // joints of each literal pair, composed multiplicatively.
                let and_joint_x = |pa: f64, pb: f64, cab: f64, cax: f64, cbx: f64| -> f64 {
                    pa * pb * cab * cax * cbx
                };
                // P(y·x)/P(x) for each kind, from literal combinations.
                let na = 1.0 - pa;
                let nb = 1.0 - pb;
                let c_nax = complement_corr(pa, c_ax);
                let c_nbx = complement_corr(pb, c_bx);
                let c_anb = complement_corr_second(pa, pb, c_ab);
                let c_nab = complement_corr_second(pb, pa, c_ab);
                let c_nanb = complement_corr_both(pa, pb, c_ab);
                let p_y_given_x_scaled = match kind {
                    GateKind::And => and_joint_x(pa, pb, c_ab, c_ax, c_bx),
                    GateKind::Nand => 1.0 - and_joint_x(pa, pb, c_ab, c_ax, c_bx),
                    GateKind::Or => 1.0 - and_joint_x(na, nb, c_nanb, c_nax, c_nbx),
                    GateKind::Nor => and_joint_x(na, nb, c_nanb, c_nax, c_nbx),
                    GateKind::Xor => {
                        and_joint_x(pa, nb, c_anb, c_ax, c_nbx)
                            + and_joint_x(na, pb, c_nab, c_nax, c_bx)
                    }
                    GateKind::Xnor => {
                        1.0 - and_joint_x(pa, nb, c_anb, c_ax, c_nbx)
                            - and_joint_x(na, pb, c_nab, c_nax, c_bx)
                    }
                    _ => unreachable!("binary kinds only"),
                };
                (p_y_given_x_scaled / py).max(0.0)
            }
            _ => 1.0,
        }
    }
}

/// `C(ā, x)` from `C(a, x)`.
fn complement_corr(pa: f64, c_ax: f64) -> f64 {
    if pa >= 1.0 {
        1.0
    } else {
        ((1.0 - pa * c_ax) / (1.0 - pa)).max(0.0)
    }
}

/// `C(a, b̄)` from `C(a, b)` (complement the *second* argument: `pa` is the
/// first argument's probability, `pb` the complemented one's).
fn complement_corr_second(pa: f64, pb: f64, c_ab: f64) -> f64 {
    let _ = pa;
    complement_corr(pb, c_ab)
}

/// `C(ā, b̄)` from `C(a, b)`.
fn complement_corr_both(pa: f64, pb: f64, c_ab: f64) -> f64 {
    let (na, nb) = (1.0 - pa, 1.0 - pb);
    if na <= 0.0 || nb <= 0.0 {
        return 1.0;
    }
    let joint = 1.0 - pa - pb + pa * pb * c_ab;
    (joint / (na * nb)).max(0.0)
}

/// Clamps an approximate joint `P(a·b)` into its Fréchet bounds.
fn clamp_joint(joint: f64, pa: f64, pb: f64) -> f64 {
    let lo = (pa + pb - 1.0).max(0.0);
    let hi = pa.min(pb);
    if lo >= hi {
        // Degenerate interval (possible only through rounding).
        return hi;
    }
    joint.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_circuit::{catalog, CircuitBuilder};

    #[test]
    fn exact_on_first_order_reconvergence() {
        // y = AND(a, NOT a) = 0: pairwise correlation captures this exactly
        // (C(a, ā) = 0), where independence fails.
        let mut b = CircuitBuilder::new("contradiction");
        b.input("a").unwrap();
        b.gate("na", GateKind::Not, &["a"]).unwrap();
        b.gate("y", GateKind::And, &["a", "na"]).unwrap();
        b.output("y").unwrap();
        let c = b.finish().unwrap();
        let sw = PairwiseCorrelation::default()
            .estimate(&c, &InputSpec::uniform(1))
            .unwrap();
        let y = c.find_line("y").unwrap();
        assert!(sw[y.index()].abs() < 1e-9, "got {}", sw[y.index()]);
    }

    #[test]
    fn matches_independence_on_trees() {
        let t = swact_circuit::benchgen::tree("t8", 3, GateKind::Nand, 3);
        let spec = InputSpec::independent(vec![0.4; 8]);
        let pw = PairwiseCorrelation::default().estimate(&t, &spec).unwrap();
        let ind = crate::Independence.estimate(&t, &spec).unwrap();
        for line in t.line_ids() {
            assert!(
                (pw[line.index()] - ind[line.index()]).abs() < 1e-9,
                "tree circuits have no correlation to model"
            );
        }
    }

    #[test]
    fn better_than_independence_on_c17() {
        // Compare both against the exact BDD switching under uniform
        // temporally independent inputs.
        let c17 = catalog::c17();
        let spec = InputSpec::uniform(5);
        let exact = crate::BddExact::default().estimate(&c17, &spec).unwrap();
        let pw = PairwiseCorrelation::default()
            .estimate(&c17, &spec)
            .unwrap();
        let ind = crate::Independence.estimate(&c17, &spec).unwrap();
        let err = |est: &[f64]| -> f64 {
            c17.line_ids()
                .map(|l| (est[l.index()] - exact[l.index()]).abs())
                .sum::<f64>()
        };
        assert!(
            err(&pw) <= err(&ind) + 1e-9,
            "pairwise {} vs independence {}",
            err(&pw),
            err(&ind)
        );
    }

    #[test]
    fn probabilities_stay_in_range_on_benchmarks() {
        for name in ["pcler8", "count"] {
            let c = catalog::benchmark(name).unwrap();
            let sw = PairwiseCorrelation::default()
                .estimate(&c, &InputSpec::uniform(c.num_inputs()))
                .unwrap();
            assert!(
                sw.iter().all(|&s| (0.0..=1.0).contains(&s)),
                "{name} out of range"
            );
        }
    }

    #[test]
    fn depth_zero_reduces_to_independence() {
        let c17 = catalog::c17();
        let spec = InputSpec::uniform(5);
        let shallow = PairwiseCorrelation { max_depth: 0 }
            .estimate(&c17, &spec)
            .unwrap();
        let ind = crate::Independence.estimate(&c17, &spec).unwrap();
        for line in c17.line_ids() {
            assert!((shallow[line.index()] - ind[line.index()]).abs() < 1e-9);
        }
    }
}
