//! Prior-art switching-activity estimators — the comparison class of the
//! paper's Table 2.
//!
//! Four estimators share the [`SwitchingEstimator`] interface:
//!
//! * [`Independence`] — Parker–McCluskey-style signal-probability
//!   propagation under full spatial independence, switching recovered as
//!   `2·p·(1−p)`. The fastest and least accurate family (paper refs
//!   \[14\], \[3\]).
//! * [`TransitionDensity`] — Najm's transition density (\[11\]): densities
//!   propagate through Boolean differences, signal probabilities assumed
//!   independent.
//! * [`PairwiseCorrelation`] — spatial correlation coefficients between
//!   line pairs, propagated through 2-input gates (Ercolani \[12\] /
//!   Marculescu'94 \[7\] proxy). Captures first-order reconvergent
//!   fan-out but not higher-order dependence — the gap the paper's
//!   Bayesian network closes.
//! * [`BddExact`] — exact switching probabilities from global BDDs over
//!   duplicated (prev, next) inputs; exponential worst case, used as a
//!   reference on circuits whose BDDs fit the node budget.
//!
//! # Example
//!
//! ```
//! use swact::InputSpec;
//! use swact_baselines::{Independence, SwitchingEstimator};
//! use swact_circuit::catalog;
//!
//! # fn main() -> Result<(), swact_baselines::BaselineError> {
//! let c17 = catalog::c17();
//! let estimator = Independence;
//! let switching = estimator.estimate(&c17, &InputSpec::uniform(5))?;
//! assert_eq!(switching.len(), c17.num_lines());
//! # Ok(())
//! # }
//! ```

mod bddexact;
mod density;
mod error;
mod independence;
mod pairwise;

pub use bddexact::BddExact;
pub use density::{TransitionDensity, TransitionDensityExact};
pub use error::BaselineError;
pub use independence::{signal_probabilities_independent, Independence};
pub use pairwise::PairwiseCorrelation;

use swact::InputSpec;
use swact_circuit::Circuit;

/// Common interface of all baseline estimators: per-line switching
/// activity (indexed by `LineId::index`) for a circuit under given input
/// statistics.
pub trait SwitchingEstimator {
    /// Short name for result tables.
    fn name(&self) -> &'static str;

    /// Estimates per-line switching activity.
    ///
    /// # Errors
    ///
    /// Implementation-specific — see each estimator.
    fn estimate(&self, circuit: &Circuit, spec: &InputSpec) -> Result<Vec<f64>, BaselineError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_circuit::catalog;

    #[test]
    fn all_estimators_cover_all_lines() {
        let c17 = catalog::c17();
        let spec = InputSpec::uniform(5);
        let estimators: Vec<Box<dyn SwitchingEstimator>> = vec![
            Box::new(Independence),
            Box::new(TransitionDensity),
            Box::new(PairwiseCorrelation::default()),
            Box::new(BddExact::default()),
        ];
        for est in estimators {
            let sw = est.estimate(&c17, &spec).unwrap();
            assert_eq!(sw.len(), c17.num_lines(), "{}", est.name());
            assert!(
                sw.iter().all(|&s| (0.0..=1.0).contains(&s)),
                "{} out of range",
                est.name()
            );
        }
    }
}
