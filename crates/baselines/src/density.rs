//! Najm's transition-density propagation (IEEE TCAD 1993).
//!
//! The transition density `D(y)` of a gate output is approximated from its
//! inputs' densities through Boolean differences:
//!
//! ```text
//! D(y) = Σᵢ P(∂y/∂xᵢ) · D(xᵢ)
//! ```
//!
//! where `∂y/∂xᵢ = y|xᵢ=1 ⊕ y|xᵢ=0` and its probability is evaluated under
//! spatial independence. Densities over-count when several inputs toggle
//! simultaneously and ignore correlation — the classic fast-but-biased
//! estimator the paper contrasts with.

use swact::InputSpec;
use swact_circuit::{Circuit, Driver, GateKind};

use crate::error::check_spec;
use crate::independence::signal_probabilities_independent;
use crate::{BaselineError, SwitchingEstimator};

/// Najm-style transition-density estimator.
///
/// Per-line results are densities *per clock*, so they are comparable to
/// switching activities; on fast-moving logic the linear superposition can
/// exceed 1 and is clamped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionDensity;

impl SwitchingEstimator for TransitionDensity {
    fn name(&self) -> &'static str {
        "transition-density"
    }

    fn estimate(&self, circuit: &Circuit, spec: &InputSpec) -> Result<Vec<f64>, BaselineError> {
        check_spec(circuit, spec)?;
        let p = signal_probabilities_independent(circuit, spec)?;
        let mut density = vec![0.0f64; circuit.num_lines()];
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            density[pi.index()] = spec.model(i).activity();
        }
        for line in circuit.topo_order() {
            if let Driver::Gate(g) = circuit.driver(line) {
                let probs: Vec<f64> = g.inputs.iter().map(|&l| p[l.index()]).collect();
                let mut d = 0.0;
                for (i, &input) in g.inputs.iter().enumerate() {
                    d += boolean_difference_probability(g.kind, &probs, i) * density[input.index()];
                }
                density[line.index()] = d.min(1.0);
            }
        }
        Ok(density)
    }
}

/// Najm's transition density with **exact** Boolean differences: the
/// sensitization probability `P(∂y/∂xᵢ)` is computed on the global BDD of
/// each line with respect to each *primary input* (not gate-locally), so
/// the only remaining approximation is the density superposition itself
/// plus the temporal independence of inputs. This is the strongest member
/// of the density family; it needs the circuit's BDDs to fit the node
/// budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionDensityExact {
    /// Maximum BDD nodes before giving up.
    pub node_limit: usize,
}

impl Default for TransitionDensityExact {
    fn default() -> TransitionDensityExact {
        TransitionDensityExact {
            node_limit: 2_000_000,
        }
    }
}

impl SwitchingEstimator for TransitionDensityExact {
    fn name(&self) -> &'static str {
        "transition-density-exact"
    }

    fn estimate(&self, circuit: &Circuit, spec: &InputSpec) -> Result<Vec<f64>, BaselineError> {
        check_spec(circuit, spec)?;
        let mut bdds = swact_bdd::build_circuit_bdds(circuit, self.node_limit)?;
        let p1: Vec<f64> = (0..circuit.num_inputs())
            .map(|i| spec.model(i).p1())
            .collect();
        let input_density: Vec<f64> = (0..circuit.num_inputs())
            .map(|i| spec.model(i).activity())
            .collect();
        let mut density = vec![0.0f64; circuit.num_lines()];
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            density[pi.index()] = input_density[i];
        }
        for line in circuit.line_ids() {
            if circuit.is_input(line) {
                continue;
            }
            let f = bdds.lines[line.index()];
            let mut d = 0.0;
            for (i, &di) in input_density.iter().enumerate() {
                let f1 = bdds.bdd.restrict(f, i, true).map_err(BaselineError::from)?;
                let f0 = bdds
                    .bdd
                    .restrict(f, i, false)
                    .map_err(BaselineError::from)?;
                let diff = bdds.bdd.xor(f1, f0).map_err(BaselineError::from)?;
                d += bdds.bdd.probability(diff, &p1) * di;
            }
            density[line.index()] = d.min(1.0);
        }
        Ok(density)
    }
}

/// `P(∂f/∂xᵢ)` for a gate under independent inputs: the probability that
/// toggling input `i` toggles the output, evaluated by enumerating the
/// other inputs' assignments (fan-in is bounded by decomposition, so the
/// 2^(k−1) enumeration is tiny).
pub(crate) fn boolean_difference_probability(kind: GateKind, probs: &[f64], toggle: usize) -> f64 {
    let k = probs.len();
    debug_assert!(toggle < k);
    let mut total = 0.0;
    let others: Vec<usize> = (0..k).filter(|&j| j != toggle).collect();
    for mask in 0..1usize << others.len() {
        let mut weight = 1.0;
        let mut assignment = vec![false; k];
        for (bit, &j) in others.iter().enumerate() {
            let value = mask >> bit & 1 == 1;
            assignment[j] = value;
            weight *= if value { probs[j] } else { 1.0 - probs[j] };
        }
        assignment[toggle] = false;
        let f0 = kind.eval(assignment.iter().copied());
        assignment[toggle] = true;
        let f1 = kind.eval(assignment.iter().copied());
        if f0 != f1 {
            total += weight;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_circuit::catalog;

    #[test]
    fn boolean_difference_of_basic_gates() {
        // AND(a,b): ∂y/∂a = b, so P = P(b).
        let p = [0.5, 0.8];
        assert!((boolean_difference_probability(GateKind::And, &p, 0) - 0.8).abs() < 1e-12);
        // OR(a,b): ∂y/∂a = ¬b.
        assert!((boolean_difference_probability(GateKind::Or, &p, 0) - 0.2).abs() < 1e-12);
        // XOR: always sensitizes.
        assert!((boolean_difference_probability(GateKind::Xor, &p, 0) - 1.0).abs() < 1e-12);
        // NOT: always.
        assert!((boolean_difference_probability(GateKind::Not, &[0.3], 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverter_chain_preserves_density() {
        use swact_circuit::CircuitBuilder;
        let mut b = CircuitBuilder::new("invchain");
        b.input("a").unwrap();
        b.gate("x", GateKind::Not, &["a"]).unwrap();
        b.gate("y", GateKind::Not, &["x"]).unwrap();
        b.output("y").unwrap();
        let c = b.finish().unwrap();
        let spec = InputSpec::from_models(vec![swact::InputModel::new(0.5, 0.3).unwrap()]);
        let d = TransitionDensity.estimate(&c, &spec).unwrap();
        for line in c.line_ids() {
            assert!((d[line.index()] - 0.3).abs() < 1e-12);
        }
    }

    #[test]
    fn density_overestimates_on_xor_of_shared_input() {
        // y = XOR(a, a) never switches, but density propagation predicts
        // 2·D(a) (clamped) — the documented over-counting.
        use swact_circuit::CircuitBuilder;
        let mut b = CircuitBuilder::new("xorshare");
        b.input("a").unwrap();
        b.gate("y", GateKind::Xor, &["a", "a"]).unwrap();
        b.output("y").unwrap();
        let c = b.finish().unwrap();
        let d = TransitionDensity
            .estimate(&c, &InputSpec::uniform(1))
            .unwrap();
        let y = c.find_line("y").unwrap();
        assert!(
            d[y.index()] > 0.9,
            "over-count expected, got {}",
            d[y.index()]
        );
    }

    #[test]
    fn sane_on_c17() {
        let c17 = catalog::c17();
        let d = TransitionDensity
            .estimate(&c17, &InputSpec::uniform(5))
            .unwrap();
        assert!(d.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Outputs must show nonzero density under active inputs.
        assert!(d[c17.outputs()[0].index()] > 0.1);
    }

    #[test]
    fn exact_density_beats_local_density_on_c17() {
        // The exact Boolean difference handles reconvergence the local one
        // cannot; errors against the BDD-exact switching must not grow.
        let c17 = catalog::c17();
        let spec = InputSpec::uniform(5);
        let truth = crate::BddExact::default().estimate(&c17, &spec).unwrap();
        let local = TransitionDensity.estimate(&c17, &spec).unwrap();
        let exact = TransitionDensityExact::default()
            .estimate(&c17, &spec)
            .unwrap();
        let err = |est: &[f64]| -> f64 {
            est.iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
        };
        assert!(
            err(&exact) <= err(&local) + 1e-9,
            "exact {} vs local {}",
            err(&exact),
            err(&local)
        );
    }

    #[test]
    fn exact_density_equals_switching_on_single_input_cones() {
        // For a function of ONE input, density = P(∂f/∂x)·D(x) = D(x)
        // whenever the output depends on x — and so does the truth.
        use swact_circuit::CircuitBuilder;
        let mut b = CircuitBuilder::new("chain");
        b.input("a").unwrap();
        b.gate("x", GateKind::Not, &["a"]).unwrap();
        b.gate("y", GateKind::Buf, &["x"]).unwrap();
        b.output("y").unwrap();
        let c = b.finish().unwrap();
        let spec = InputSpec::from_models(vec![swact::InputModel::new(0.4, 0.3).unwrap()]);
        let d = TransitionDensityExact::default()
            .estimate(&c, &spec)
            .unwrap();
        for line in c.line_ids() {
            assert!((d[line.index()] - 0.3).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_density_node_limit_reported() {
        let c = catalog::benchmark("c1355").unwrap();
        let tiny = TransitionDensityExact { node_limit: 64 };
        assert!(matches!(
            tiny.estimate(&c, &InputSpec::uniform(c.num_inputs())),
            Err(crate::BaselineError::Bdd(_))
        ));
    }

    #[test]
    fn frozen_inputs_produce_zero_density() {
        let c17 = catalog::c17();
        let spec = InputSpec::from_models(vec![swact::InputModel::new(0.5, 0.0).unwrap(); 5]);
        let d = TransitionDensity.estimate(&c17, &spec).unwrap();
        assert!(d.iter().all(|&x| x.abs() < 1e-12));
    }
}
