use std::error::Error;
use std::fmt;

use swact_bdd::BddError;

/// Errors from baseline estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BaselineError {
    /// The input spec covers a different number of inputs than the circuit.
    InputCountMismatch {
        /// Inputs the circuit has.
        circuit: usize,
        /// Inputs the spec covers.
        spec: usize,
    },
    /// A BDD-based estimator exhausted its node budget.
    Bdd(BddError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InputCountMismatch { circuit, spec } => write!(
                f,
                "input spec covers {spec} inputs but the circuit has {circuit}"
            ),
            BaselineError::Bdd(e) => write!(f, "bdd error: {e}"),
        }
    }
}

impl Error for BaselineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BaselineError::Bdd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BddError> for BaselineError {
    fn from(e: BddError) -> BaselineError {
        BaselineError::Bdd(e)
    }
}

pub(crate) fn check_spec(
    circuit: &swact_circuit::Circuit,
    spec: &swact::InputSpec,
) -> Result<(), BaselineError> {
    if spec.len() != circuit.num_inputs() {
        return Err(BaselineError::InputCountMismatch {
            circuit: circuit.num_inputs(),
            spec: spec.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BaselineError::InputCountMismatch {
            circuit: 4,
            spec: 2,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.source().is_none());
        let e = BaselineError::from(BddError::NodeLimit { limit: 10 });
        assert!(e.source().is_some());
    }
}
