//! Exact switching probabilities from global BDDs.
//!
//! Builds `f(prev inputs) ⊕ f(next inputs)` for every line over duplicated
//! primary-input variables (see `swact-bdd`) and evaluates it under the
//! input statistics — exact for independent inputs *including* per-input
//! temporal correlation. Exponential in the worst case (a node budget
//! bounds the damage), so this is the small/medium-circuit gold reference,
//! mirroring the exact-but-unscalable OBDD method of Najm's and Bryant's
//! lineage the paper cites.

use swact::InputSpec;
use swact_bdd::{build_switching_bdds, PairDistribution};
use swact_circuit::Circuit;

use crate::error::check_spec;
use crate::{BaselineError, SwitchingEstimator};

/// Exact BDD-based switching estimator with a configurable node budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddExact {
    /// Maximum BDD nodes before giving up with [`BaselineError::Bdd`].
    pub node_limit: usize,
}

impl Default for BddExact {
    fn default() -> BddExact {
        BddExact {
            node_limit: 2_000_000,
        }
    }
}

impl SwitchingEstimator for BddExact {
    fn name(&self) -> &'static str {
        "bdd-exact"
    }

    fn estimate(&self, circuit: &Circuit, spec: &InputSpec) -> Result<Vec<f64>, BaselineError> {
        check_spec(circuit, spec)?;
        let sw = build_switching_bdds(circuit, self.node_limit)?;
        let pairs: Vec<PairDistribution> = (0..circuit.num_inputs())
            .map(|i| {
                let model = spec.model(i);
                let d = model.to_distribution().as_array();
                PairDistribution::new(d)
            })
            .collect();
        Ok(circuit
            .line_ids()
            .map(|line| sw.bdd.pair_probability(sw.switch_fn(line), &pairs))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_circuit::catalog;

    #[test]
    fn matches_single_bn_estimator_on_c17() {
        // Two independent exact methods must agree to machine precision.
        let c17 = catalog::c17();
        let spec = InputSpec::from_models(vec![
            swact::InputModel::new(0.3, 0.2).unwrap(),
            swact::InputModel::independent(0.9),
            swact::InputModel::new(0.5, 0.1).unwrap(),
            swact::InputModel::independent(0.2),
            swact::InputModel::new(0.7, 0.3).unwrap(),
        ]);
        let bdd = BddExact::default().estimate(&c17, &spec).unwrap();
        let bn = swact::estimate(&c17, &spec, &swact::Options::single_bn()).unwrap();
        for line in c17.line_ids() {
            assert!(
                (bdd[line.index()] - bn.switching(line)).abs() < 1e-9,
                "line {}: bdd {} vs bn {}",
                c17.line_name(line),
                bdd[line.index()],
                bn.switching(line)
            );
        }
    }

    #[test]
    fn node_limit_reported() {
        let c = catalog::benchmark("c1355").unwrap();
        let tiny = BddExact { node_limit: 64 };
        assert!(matches!(
            tiny.estimate(&c, &InputSpec::uniform(c.num_inputs())),
            Err(BaselineError::Bdd(_))
        ));
    }

    #[test]
    fn frozen_inputs_never_switch() {
        let c17 = catalog::c17();
        let spec = InputSpec::from_models(vec![swact::InputModel::new(0.5, 0.0).unwrap(); 5]);
        let sw = BddExact::default().estimate(&c17, &spec).unwrap();
        assert!(sw.iter().all(|&s| s.abs() < 1e-12));
    }
}
