//! Signal-probability propagation under full independence
//! (Parker–McCluskey 1975; the zero-delay probabilistic baseline).

use swact::InputSpec;
use swact_circuit::{Circuit, Driver, GateKind};

use crate::error::check_spec;
use crate::{BaselineError, SwitchingEstimator};

/// Computes every line's signal probability assuming all gate inputs are
/// mutually independent: `P(AND) = Π pᵢ`, `P(OR) = 1 − Π (1 − pᵢ)`, parity
/// by association, and the general case by truth-table enumeration.
///
/// Exact on trees; biased wherever fan-out reconverges.
///
/// # Errors
///
/// Returns [`BaselineError::InputCountMismatch`] for a wrong-size spec.
///
/// # Example
///
/// ```
/// use swact::InputSpec;
/// use swact_baselines::signal_probabilities_independent;
/// use swact_circuit::catalog;
///
/// # fn main() -> Result<(), swact_baselines::BaselineError> {
/// let c17 = catalog::c17();
/// let p = signal_probabilities_independent(&c17, &InputSpec::uniform(5))?;
/// // 10 = NAND(pi, pi): 1 − ¼ = ¾ under independence.
/// let l10 = c17.find_line("10").unwrap();
/// assert!((p[l10.index()] - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn signal_probabilities_independent(
    circuit: &Circuit,
    spec: &InputSpec,
) -> Result<Vec<f64>, BaselineError> {
    check_spec(circuit, spec)?;
    let mut p = vec![0.0f64; circuit.num_lines()];
    for (i, &pi) in circuit.inputs().iter().enumerate() {
        p[pi.index()] = spec.model(i).p1();
    }
    for line in circuit.topo_order() {
        if let Driver::Gate(g) = circuit.driver(line) {
            let probs: Vec<f64> = g.inputs.iter().map(|&l| p[l.index()]).collect();
            p[line.index()] = gate_probability(g.kind, &probs);
        }
    }
    Ok(p)
}

/// `P(gate = 1)` for independent inputs with the given one-probabilities.
pub(crate) fn gate_probability(kind: GateKind, probs: &[f64]) -> f64 {
    match kind {
        GateKind::And => probs.iter().product(),
        GateKind::Nand => 1.0 - probs.iter().product::<f64>(),
        GateKind::Or => 1.0 - probs.iter().map(|p| 1.0 - p).product::<f64>(),
        GateKind::Nor => probs.iter().map(|p| 1.0 - p).product(),
        GateKind::Xor => probs
            .iter()
            .fold(0.0, |acc, &p| acc * (1.0 - p) + (1.0 - acc) * p),
        GateKind::Xnor => {
            1.0 - probs
                .iter()
                .fold(0.0, |acc, &p| acc * (1.0 - p) + (1.0 - acc) * p)
        }
        GateKind::Not => 1.0 - probs[0],
        GateKind::Buf => probs[0],
        GateKind::Const0 => 0.0,
        GateKind::Const1 => 1.0,
    }
}

/// The Parker–McCluskey baseline: independent signal probabilities,
/// switching recovered under temporal independence as `2·p·(1−p)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Independence;

impl SwitchingEstimator for Independence {
    fn name(&self) -> &'static str {
        "independence"
    }

    fn estimate(&self, circuit: &Circuit, spec: &InputSpec) -> Result<Vec<f64>, BaselineError> {
        let p = signal_probabilities_independent(circuit, spec)?;
        Ok(circuit
            .line_ids()
            .map(|line| match circuit.driver(line) {
                // Inputs report their modeled activity exactly.
                Driver::Input => {
                    let pos = circuit
                        .inputs()
                        .iter()
                        .position(|&l| l == line)
                        .expect("input in list");
                    spec.model(pos).activity()
                }
                Driver::Gate(_) => 2.0 * p[line.index()] * (1.0 - p[line.index()]),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_circuit::{catalog, CircuitBuilder};

    #[test]
    fn gate_probability_formulas() {
        let p = [0.3, 0.6];
        assert!((gate_probability(GateKind::And, &p) - 0.18).abs() < 1e-12);
        assert!((gate_probability(GateKind::Or, &p) - (1.0 - 0.7 * 0.4)).abs() < 1e-12);
        let xor = 0.3 * 0.4 + 0.7 * 0.6;
        assert!((gate_probability(GateKind::Xor, &p) - xor).abs() < 1e-12);
        assert!((gate_probability(GateKind::Xnor, &p) - (1.0 - xor)).abs() < 1e-12);
        assert!((gate_probability(GateKind::Not, &[0.3]) - 0.7).abs() < 1e-12);
        assert_eq!(gate_probability(GateKind::Const1, &[]), 1.0);
    }

    #[test]
    fn exact_on_tree_circuits() {
        // Without reconvergence the independence assumption holds, so the
        // result matches the BDD-exact signal probability.
        let t = swact_circuit::benchgen::tree("t8", 3, GateKind::And, 1);
        let spec = InputSpec::independent(vec![0.6; 8]);
        let p = signal_probabilities_independent(&t, &spec).unwrap();
        let out = t.outputs()[0];
        assert!((p[out.index()] - 0.6f64.powi(8)).abs() < 1e-12);
    }

    #[test]
    fn biased_on_reconvergent_fanout() {
        // y = AND(a, NOT a) is constantly 0, but independence predicts
        // p(1-p) > 0.
        let mut b = CircuitBuilder::new("contradiction");
        b.input("a").unwrap();
        b.gate("na", GateKind::Not, &["a"]).unwrap();
        b.gate("y", GateKind::And, &["a", "na"]).unwrap();
        b.output("y").unwrap();
        let c = b.finish().unwrap();
        let p = signal_probabilities_independent(&c, &InputSpec::uniform(1)).unwrap();
        let y = c.find_line("y").unwrap();
        assert!((p[y.index()] - 0.25).abs() < 1e-12, "the known bias");
    }

    #[test]
    fn switching_matches_two_state_formula() {
        let c17 = catalog::c17();
        let spec = InputSpec::uniform(5);
        let sw = Independence.estimate(&c17, &spec).unwrap();
        let p = signal_probabilities_independent(&c17, &spec).unwrap();
        for line in c17.gate_lines() {
            let want = 2.0 * p[line.index()] * (1.0 - p[line.index()]);
            assert!((sw[line.index()] - want).abs() < 1e-12);
        }
        // Inputs report the model activity.
        let pi = c17.inputs()[0];
        assert!((sw[pi.index()] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spec_size_checked() {
        let c17 = catalog::c17();
        assert!(matches!(
            Independence.estimate(&c17, &InputSpec::uniform(2)),
            Err(BaselineError::InputCountMismatch { .. })
        ));
    }
}
