//! Ground-truth simulation throughput: what "estimation by simulation"
//! costs per vector pair (the slow-but-exact alternative of the paper's
//! §1 taxonomy).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use swact_circuit::catalog;
use swact_sim::{measure_activity, StreamModel};

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    const PAIRS: usize = 64 * 256;
    group.throughput(Throughput::Elements(PAIRS as u64));
    for name in ["c17", "c432", "c880"] {
        let circuit = catalog::benchmark(name).expect("known");
        let model = StreamModel::uniform(circuit.num_inputs());
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                measure_activity(&circuit, &model, PAIRS, seed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulate);
criterion_main!(benches);
