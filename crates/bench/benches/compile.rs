//! Compile-time benchmark: LIDAG construction + junction-tree compilation
//! per circuit — Table 1's one-off cost.

use criterion::{criterion_group, criterion_main, Criterion};
use swact::{CompiledEstimator, Options};
use swact_circuit::catalog;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    for name in ["c17", "c432", "c880", "alu2"] {
        let circuit = catalog::benchmark(name).expect("known benchmark");
        group.bench_function(name, |b| {
            b.iter(|| {
                CompiledEstimator::compile(&circuit, &Options::default())
                    .expect("benchmark compiles")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
