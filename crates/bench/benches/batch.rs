//! Batch-throughput benchmark: scenarios/sec through `swact-engine` at
//! 1/2/4/8 worker threads on a segmented benchgen circuit.
//!
//! The engine compiles the circuit once per worker count (warm-up batch,
//! untimed); the measured iterations exercise the paper's cheap "Update"
//! path — concurrent propagation over the shared compiled junction trees.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use swact_bench::batch_specs;
use swact_circuit::catalog;
use swact_engine::Engine;

fn bench_batch(c: &mut Criterion) {
    let circuit = catalog::benchmark("c880").expect("known benchmark");
    let specs = batch_specs(&circuit, 32);
    let options = swact::Options::default();

    let mut group = c.benchmark_group("batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(specs.len() as u64));
    for jobs in [1usize, 2, 4, 8] {
        let engine = Engine::with_jobs(jobs);
        let warm = engine
            .estimate_batch(&circuit, &specs[..1], &options)
            .expect("compiles");
        assert!(warm.all_ok());
        group.bench_function(format!("c880/jobs={jobs}"), |b| {
            b.iter(|| {
                let report = engine
                    .estimate_batch(&circuit, &specs, &options)
                    .expect("cached model");
                assert!(report.cache_hit && report.all_ok());
                report
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
