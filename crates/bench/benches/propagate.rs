//! Propagation (update) benchmark — the paper's §6 claim that once
//! compiled, re-estimation under new input statistics is cheap (Table 1's
//! "Update" column and experiment E4).

use criterion::{criterion_group, criterion_main, Criterion};
use swact::{CompiledEstimator, InputSpec, Options};
use swact_circuit::catalog;

fn bench_propagate(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagate");
    group.sample_size(10);
    for name in ["c17", "c432", "c880", "alu2"] {
        let circuit = catalog::benchmark(name).expect("known benchmark");
        let compiled = CompiledEstimator::compile(&circuit, &Options::default()).expect("compiles");
        let specs: Vec<InputSpec> = (0..4)
            .map(|k| {
                InputSpec::independent(
                    (0..circuit.num_inputs()).map(move |i| 0.2 + 0.15 * ((i + k) % 5) as f64),
                )
            })
            .collect();
        let mut k = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                // Rotate input statistics so every iteration re-propagates.
                let est = compiled.estimate(&specs[k % specs.len()]).expect("matches");
                k += 1;
                est
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_propagate);
criterion_main!(benches);
