//! Sparse-kernel benchmark: propagation (the paper's cheap "Update" path)
//! with zero-compressed clique potentials against the dense baseline, on
//! the same precompiled circuits. Gate truth tables zero out most of each
//! clique table, so the sparse kernels touch a fraction of the entries.

use criterion::{criterion_group, criterion_main, Criterion};
use swact::{CompiledEstimator, InputSpec, Options, SparseMode};
use swact_circuit::catalog;

fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse");
    group.sample_size(10);
    for name in ["c17", "c432", "c880", "alu2"] {
        let circuit = catalog::benchmark(name).expect("known benchmark");
        let specs: Vec<InputSpec> = (0..4)
            .map(|k| {
                InputSpec::independent(
                    (0..circuit.num_inputs()).map(move |i| 0.2 + 0.15 * ((i + k) % 5) as f64),
                )
            })
            .collect();
        for (label, sparse) in [("dense", SparseMode::Off), ("sparse", SparseMode::Auto)] {
            let options = Options {
                sparse,
                ..Options::default()
            };
            let compiled = CompiledEstimator::compile(&circuit, &options).expect("compiles");
            let mut k = 0usize;
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    // Rotate input statistics so every iteration
                    // re-propagates rather than hitting a warm result.
                    let est = compiled.estimate(&specs[k % specs.len()]).expect("matches");
                    k += 1;
                    est
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sparse);
criterion_main!(benches);
