//! Factor-algebra kernels: the inner loops of junction-tree propagation.

use criterion::{criterion_group, criterion_main, Criterion};
use swact_bayesnet::{Factor, VarId};

fn factor_over(vars: &[usize], card: usize, fill: f64) -> Factor {
    let scope: Vec<(VarId, usize)> = vars.iter().map(|&v| (VarId::from_index(v), card)).collect();
    let size: usize = scope.iter().map(|&(_, c)| c).product();
    Factor::new(scope, (0..size).map(|i| fill + i as f64 * 1e-6).collect())
}

fn bench_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("factor");
    // Clique-sized four-state factors, as produced by the LIDAG.
    let clique = factor_over(&[0, 1, 2, 3, 4, 5], 4, 0.5); // 4096 entries
    let sepset = factor_over(&[2, 3, 4], 4, 0.7); // 64 entries
    group.bench_function("product_6x3", |b| b.iter(|| clique.product(&sepset)));
    group.bench_function("mul_assign_sub_6x3", |b| {
        b.iter_batched(
            || clique.clone(),
            |mut f| {
                f.mul_assign_sub(&sepset);
                f
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("marginalize_6_to_3", |b| {
        b.iter(|| clique.marginalize_keep(sepset.vars()))
    });
    group.bench_function("normalize_6", |b| {
        b.iter_batched(
            || clique.clone(),
            |mut f| {
                f.normalize();
                f
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_factor);
criterion_main!(benches);
