//! Triangulation heuristics on LIDAG moral graphs (ablation A1's cost
//! side).

use criterion::{criterion_group, criterion_main, Criterion};
use swact::{InputSpec, Lidag};
use swact_bayesnet::graph::moral_graph;
use swact_bayesnet::triangulate::{triangulate, Heuristic};
use swact_circuit::catalog;

fn bench_triangulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangulate");
    group.sample_size(10);
    for name in ["c17", "c432", "count"] {
        let circuit = catalog::benchmark(name).expect("known");
        let spec = InputSpec::uniform(circuit.num_inputs());
        let lidag = Lidag::build(&circuit, &spec, 4).expect("builds");
        let moral = moral_graph(lidag.net());
        let cards = lidag.net().cards();
        for (label, heuristic) in [
            ("min_fill", Heuristic::MinFill),
            ("min_degree", Heuristic::MinDegree),
        ] {
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| triangulate(&moral, &cards, heuristic))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_triangulate);
criterion_main!(benches);
