//! Experiment harness regenerating every table and figure of Bhanja &
//! Ranganathan (DAC 2001).
//!
//! The binaries in `src/bin` print the paper's artifacts:
//!
//! * `table1` — Table 1: per-circuit switching-accuracy and timing of the
//!   Bayesian-network estimator against logic-simulation ground truth;
//! * `table2` — Table 2: accuracy/time comparison against the prior-art
//!   estimators in `swact-baselines`;
//! * `figures` — Figures 1–4: the running example circuit, its LIDAG-BN,
//!   the triangulated moral graph, and the junction tree, as Graphviz DOT;
//! * `ablation` — the design-choice studies indexed in DESIGN.md
//!   (segmentation budget, boundary correlation, triangulation heuristic,
//!   two- vs four-state variables, input-correlation sensitivity);
//! * `batch_report` — `swact-engine` batch throughput at 1/2/4/8 workers,
//!   written to `BENCH_batch.json`.
//!
//! The Criterion benches in `benches/` measure the compile/propagate split
//! (paper §6's "circuits can be precompiled; only propagation has to be
//! done for different input statistics") and the core kernels.

use std::fmt::Write as _;
use std::time::Instant;

use swact::{CompiledEstimator, ErrorStats, InputSpec, Options};
use swact_baselines::SwitchingEstimator;
use swact_circuit::{catalog, Circuit};
use swact_sim::{measure_activity, StreamModel};

/// Default number of simulated vector pairs for ground truth.
pub const DEFAULT_PAIRS: usize = 1 << 20;

/// Ground-truth seed shared by all experiments (reported results are
/// deterministic).
pub const GROUND_TRUTH_SEED: u64 = 0x5eed_2001;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub circuit: String,
    /// Gates in the (original) circuit.
    pub gates: usize,
    /// Segments (Bayesian networks) used.
    pub segments: usize,
    /// Mean absolute per-node error vs simulation (µErr).
    pub mean_err: f64,
    /// Standard deviation of the per-node error (σErr).
    pub std_err: f64,
    /// Percent error of the circuit-average activity (%Error).
    pub pct_err: f64,
    /// Compile + propagate wall clock, seconds ("Total").
    pub total_s: f64,
    /// Propagate-only wall clock, seconds ("Update").
    pub update_s: f64,
}

/// Runs the Table 1 experiment for one circuit.
///
/// # Panics
///
/// Panics if `name` is not a known benchmark.
pub fn table1_row(name: &str, pairs: usize, options: &Options) -> Table1Row {
    let circuit = catalog::benchmark(name).expect("known benchmark");
    let spec = InputSpec::uniform(circuit.num_inputs());
    let compiled =
        CompiledEstimator::compile(&circuit, options).expect("benchmark circuits compile");
    let estimate = compiled.estimate(&spec).expect("uniform spec matches");
    let truth = ground_truth(&circuit, pairs);
    let stats = estimate.compare(&truth);
    Table1Row {
        circuit: name.to_string(),
        gates: circuit.num_gates(),
        segments: estimate.num_segments(),
        mean_err: stats.mean_abs_error,
        std_err: stats.std_error,
        pct_err: stats.percent_error,
        total_s: estimate.total_time().as_secs_f64(),
        update_s: estimate.propagate_time().as_secs_f64(),
    }
}

/// Runs Table 1 for every benchmark in the paper's row order.
pub fn table1(pairs: usize, options: &Options) -> Vec<Table1Row> {
    catalog::BENCHMARKS
        .iter()
        .map(|info| table1_row(info.name, pairs, options))
        .collect()
}

/// Formats Table 1 rows as an aligned text table.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>6} {:>5} {:>9} {:>9} {:>8} {:>10} {:>10}\n",
        "Circuit", "Gates", "BNs", "µErr", "σErr", "%Error", "Total(s)", "Update(s)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>6} {:>5} {:>9.4} {:>9.4} {:>7.3}% {:>10.4} {:>10.4}\n",
            r.circuit, r.gates, r.segments, r.mean_err, r.std_err, r.pct_err, r.total_s, r.update_s
        ));
    }
    let n = rows.len() as f64;
    out.push_str(&format!(
        "{:<10} {:>6} {:>5} {:>9.4} {:>9.4} {:>7.3}% {:>10.4} {:>10.4}\n",
        "average",
        "",
        "",
        rows.iter().map(|r| r.mean_err).sum::<f64>() / n,
        rows.iter().map(|r| r.std_err).sum::<f64>() / n,
        rows.iter().map(|r| r.pct_err).sum::<f64>() / n,
        rows.iter().map(|r| r.total_s).sum::<f64>() / n,
        rows.iter().map(|r| r.update_s).sum::<f64>() / n,
    ));
    out
}

/// One method's result on one circuit in Table 2.
#[derive(Debug, Clone)]
pub struct Table2Cell {
    /// Estimator name.
    pub method: String,
    /// Mean absolute per-node error (µErr).
    pub mean_err: f64,
    /// Standard deviation of the per-node error (σErr).
    pub std_err: f64,
    /// Wall-clock estimation time, seconds.
    pub time_s: f64,
}

/// One row (circuit) of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub circuit: String,
    /// Cells per method, in the order the methods were supplied.
    pub cells: Vec<Table2Cell>,
}

/// Runs the Table 2 comparison on one circuit: the Bayesian network plus
/// every supplied baseline, all against the same simulated ground truth.
///
/// # Panics
///
/// Panics if `name` is not a known benchmark.
pub fn table2_row(
    name: &str,
    pairs: usize,
    options: &Options,
    baselines: &[&dyn SwitchingEstimator],
) -> Table2Row {
    let circuit = catalog::benchmark(name).expect("known benchmark");
    let spec = InputSpec::uniform(circuit.num_inputs());
    let truth = ground_truth(&circuit, pairs);

    let mut cells = Vec::new();
    let start = Instant::now();
    let estimate = swact::estimate(&circuit, &spec, options).expect("benchmark circuits compile");
    let bn_time = start.elapsed().as_secs_f64();
    let stats = estimate.compare(&truth);
    cells.push(Table2Cell {
        method: "bayesian-network".to_string(),
        mean_err: stats.mean_abs_error,
        std_err: stats.std_error,
        time_s: bn_time,
    });
    for baseline in baselines {
        let start = Instant::now();
        match baseline.estimate(&circuit, &spec) {
            Ok(switching) => {
                let time_s = start.elapsed().as_secs_f64();
                let stats = ErrorStats::between(&switching, &truth);
                cells.push(Table2Cell {
                    method: baseline.name().to_string(),
                    mean_err: stats.mean_abs_error,
                    std_err: stats.std_error,
                    time_s,
                });
            }
            Err(_) => cells.push(Table2Cell {
                method: baseline.name().to_string(),
                mean_err: f64::NAN,
                std_err: f64::NAN,
                time_s: f64::NAN,
            }),
        }
    }
    Table2Row {
        circuit: name.to_string(),
        cells,
    }
}

/// Formats Table 2 rows as an aligned text table.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    if let Some(first) = rows.first() {
        out.push_str(&format!("{:<10}", "Circuit"));
        for cell in &first.cells {
            out.push_str(&format!(" | {:^28}", cell.method));
        }
        out.push('\n');
        out.push_str(&format!("{:<10}", ""));
        for _ in &first.cells {
            out.push_str(&format!(" | {:>8} {:>8} {:>9}", "µErr", "σErr", "time(s)"));
        }
        out.push('\n');
    }
    for row in rows {
        out.push_str(&format!("{:<10}", row.circuit));
        for cell in &row.cells {
            if cell.mean_err.is_nan() {
                out.push_str(&format!(" | {:>8} {:>8} {:>9}", "-", "-", "-"));
            } else {
                out.push_str(&format!(
                    " | {:>8.4} {:>8.4} {:>9.4}",
                    cell.mean_err, cell.std_err, cell.time_s
                ));
            }
        }
        out.push('\n');
    }
    out
}

/// Simulated ground-truth switching for a circuit under uniform inputs.
pub fn ground_truth(circuit: &Circuit, pairs: usize) -> Vec<f64> {
    let model = StreamModel::uniform(circuit.num_inputs());
    measure_activity(circuit, &model, pairs, GROUND_TRUTH_SEED).switching
}

/// One batch-throughput measurement: `scenarios` input specs pushed through
/// a [`swact_engine::Engine`] with `jobs` workers.
#[derive(Debug, Clone)]
pub struct BatchThroughputRow {
    /// Worker threads.
    pub jobs: usize,
    /// Scenarios in the batch.
    pub scenarios: usize,
    /// Wall-clock seconds for the propagation-only batch (model precompiled).
    pub wall_s: f64,
    /// Scenarios per wall-clock second.
    pub scenarios_per_sec: f64,
    /// Throughput relative to the 1-worker row (1.0 for the first row).
    pub speedup: f64,
    /// Whether the engine served the batch from its compiled-model cache.
    pub cache_hit: bool,
    /// Propagation seconds summed over scenarios (exceeds `wall_s` when
    /// multiple workers overlap).
    pub propagate_s: f64,
    /// Boundary-forwarding seconds summed over scenarios.
    pub forward_s: f64,
}

/// Sweep scenario specs: per-input p1 varies with both input position and
/// scenario index so every scenario re-propagates distinct evidence.
/// Resolves a benchmark name against the built-in catalog; unknown names
/// get an error message listing every valid name, ready to print as-is.
pub fn lookup_benchmark(name: &str) -> Result<Circuit, String> {
    catalog::benchmark(name).ok_or_else(|| {
        let mut msg = format!("unknown benchmark `{name}`; valid names are:");
        for info in catalog::BENCHMARKS {
            let _ = write!(msg, "\n  {}", info.name);
        }
        msg
    })
}

pub fn batch_specs(circuit: &Circuit, scenarios: usize) -> Vec<InputSpec> {
    (0..scenarios)
        .map(|k| {
            InputSpec::independent(
                (0..circuit.num_inputs()).map(move |i| 0.1 + 0.08 * ((i + 3 * k) % 10) as f64),
            )
        })
        .collect()
}

/// Measures batch throughput over `jobs_list` worker counts.
///
/// A warm-up batch populates the engine's compiled-model cache first, so
/// the timed rows measure the paper's "Update" path (propagation only) and
/// every row after the warm-up is a cache hit.
///
/// # Panics
///
/// Panics if the circuit fails to compile or any scenario fails.
pub fn batch_throughput(
    circuit: &Circuit,
    scenarios: usize,
    jobs_list: &[usize],
) -> Vec<BatchThroughputRow> {
    let specs = batch_specs(circuit, scenarios);
    let options = Options::default();
    let mut rows: Vec<BatchThroughputRow> = Vec::new();
    for &jobs in jobs_list {
        // Forced: this bench measures scheduler behavior at *exactly* the
        // requested worker count, including deliberate oversubscription
        // (the default engine clamps to available CPUs precisely because
        // of what this bench recorded).
        let engine = swact_engine::Engine::with_jobs_forced(jobs);
        // Warm-up: compile into this engine's cache (untimed).
        let warm = engine
            .estimate_batch(circuit, &specs[..1], &options)
            .expect("benchmark circuit compiles");
        assert!(warm.all_ok(), "warm-up batch failed");
        let report = engine
            .estimate_batch(circuit, &specs, &options)
            .expect("compiled model present");
        assert!(report.all_ok(), "batch scenario failed");
        let wall_s = report.wall_time.as_secs_f64();
        let scenarios_per_sec = report.scenarios_per_sec();
        let speedup = match rows.first() {
            Some(base) if base.scenarios_per_sec > 0.0 => {
                scenarios_per_sec / base.scenarios_per_sec
            }
            _ => 1.0,
        };
        rows.push(BatchThroughputRow {
            jobs,
            scenarios,
            wall_s,
            scenarios_per_sec,
            speedup,
            cache_hit: report.cache_hit,
            propagate_s: report.stages.propagate.as_secs_f64(),
            forward_s: report.stages.forward.as_secs_f64(),
        });
    }
    rows
}

/// One circuit's sparse-vs-dense propagation measurement.
#[derive(Debug, Clone)]
pub struct SparseThroughputRow {
    /// Benchmark name.
    pub circuit: String,
    /// Nonzero clique-potential entries (identical for both modes).
    pub nnz: usize,
    /// Fraction of clique-potential entries that are structural zeros.
    pub zero_fraction: f64,
    /// Cliques stored zero-compressed under `SparseMode::Auto`.
    pub compressed_cliques: usize,
    /// Propagate-only wall clock under `SparseMode::Off`, seconds.
    pub dense_s: f64,
    /// Propagate-only wall clock under `SparseMode::Auto`, seconds.
    pub sparse_s: f64,
    /// `dense_s / sparse_s`.
    pub speedup: f64,
}

/// Times the precompiled propagate-only path dense vs sparse, `reps`
/// repetitions per mode per circuit (input statistics rotate so no
/// iteration can reuse a warm result). Compilation is untimed; both modes
/// propagate the same rotated specs, so the wall-clock difference isolates
/// the kernels.
///
/// # Panics
///
/// Panics if any name is unknown or a circuit fails to compile.
pub fn sparse_throughput(names: &[&str], reps: usize) -> Vec<SparseThroughputRow> {
    names
        .iter()
        .map(|&name| {
            let circuit = catalog::benchmark(name).expect("known benchmark");
            let specs = batch_specs(&circuit, 8);
            let time_mode = |sparse| {
                let options = Options {
                    sparse,
                    ..Options::default()
                };
                let compiled =
                    CompiledEstimator::compile(&circuit, &options).expect("benchmark compiles");
                // One untimed propagation warms allocator and caches.
                compiled.estimate(&specs[0]).expect("estimates");
                let start = Instant::now();
                for k in 0..reps {
                    compiled
                        .estimate(&specs[k % specs.len()])
                        .expect("estimates");
                }
                (start.elapsed().as_secs_f64(), compiled)
            };
            let (dense_s, _) = time_mode(swact::SparseMode::Off);
            let (sparse_s, compiled) = time_mode(swact::SparseMode::Auto);
            SparseThroughputRow {
                circuit: name.to_string(),
                nnz: compiled.nnz(),
                zero_fraction: compiled.zero_fraction(),
                compressed_cliques: compiled.compressed_cliques(),
                dense_s,
                sparse_s,
                speedup: if sparse_s > 0.0 {
                    dense_s / sparse_s
                } else {
                    1.0
                },
            }
        })
        .collect()
}

/// Renders sparse-vs-dense rows as a JSON document with host metadata
/// (hand-rolled: the workspace deliberately has no serde dependency).
pub fn sparse_throughput_json(rows: &[SparseThroughputRow], reps: usize) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(
        out,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    let _ = writeln!(out, "  \"host_os\": \"{}\",", std::env::consts::OS);
    let _ = writeln!(out, "  \"host_arch\": \"{}\",", std::env::consts::ARCH);
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"circuit\": \"{}\", \"nnz\": {}, \"zero_fraction\": {:.6}, \
             \"compressed_cliques\": {}, \"dense_s\": {:.6}, \"sparse_s\": {:.6}, \
             \"speedup\": {:.3}}}",
            row.circuit,
            row.nnz,
            row.zero_fraction,
            row.compressed_cliques,
            row.dense_s,
            row.sparse_s,
            row.speedup
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One circuit's kernel-grid measurement: propagate-only wall clock of the
/// blocked fused kernels ({dense, sparse} × {scalar, simd}) against the
/// per-entry two-pass projection tables — the previous kernel generation,
/// kept reachable as `CompiledTree::calibrate_two_pass`.
#[derive(Debug, Clone)]
pub struct KernelThroughputRow {
    /// Benchmark name.
    pub circuit: String,
    /// Segments (Bayesian networks) the circuit planned into.
    pub segments: usize,
    /// Total junction-tree cliques across all segments.
    pub cliques: usize,
    /// Per-entry two-pass baseline (dense, scalar), seconds.
    pub baseline_s: f64,
    /// Blocked kernels, `SparseMode::Off` × `KernelMode::Scalar`, seconds.
    pub dense_scalar_s: f64,
    /// Blocked kernels, `SparseMode::Off` × `KernelMode::Simd`, seconds.
    pub dense_simd_s: f64,
    /// Blocked kernels, `SparseMode::Auto` × `KernelMode::Scalar`, seconds.
    pub sparse_scalar_s: f64,
    /// Blocked kernels, `SparseMode::Auto` × `KernelMode::Simd`, seconds.
    pub sparse_simd_s: f64,
    /// `baseline_s` over the fastest grid cell.
    pub best_speedup: f64,
}

impl KernelThroughputRow {
    /// The fastest grid cell, seconds.
    pub fn best_s(&self) -> f64 {
        self.dense_scalar_s
            .min(self.dense_simd_s)
            .min(self.sparse_scalar_s)
            .min(self.sparse_simd_s)
    }
}

/// Times calibration of each circuit's own segment junction trees —
/// exactly the trees the estimator pipeline compiles, rebuilt via
/// [`swact::pipeline::SegmentModel`] — across the kernel grid, `reps`
/// calibrations per cell. No estimator plumbing (root weighting, marginal
/// extraction, boundary forwarding) is inside the timed region, so the
/// wall-clock difference isolates the message-pass kernels.
///
/// Also asserts, per circuit, that the blocked scalar kernels calibrate
/// bit-identically to the two-pass baseline and that simd agrees to
/// `1e-12` — a wrong kernel can never report a speedup.
///
/// # Panics
///
/// Panics if any name is unknown, a circuit fails to plan or compile, or
/// the kernel-equivalence checks fail.
pub fn kernel_throughput(names: &[&str], reps: usize) -> Vec<KernelThroughputRow> {
    use swact::pipeline::{PlannedCircuit, SegmentModel};
    use swact_bayesnet::{
        initial_potentials, CompiledTree, Factor, JunctionTree, KernelMode, SparseMode,
    };

    names
        .iter()
        .map(|&name| {
            let circuit = catalog::benchmark(name).expect("known benchmark");
            let options = Options::default();
            let planned = PlannedCircuit::new(&circuit, &options).expect("circuit plans");
            // Compile each segment's junction tree once; every grid cell
            // rebuilds its CompiledTree from clones of the same tree and
            // potentials, so all cells propagate identical structures.
            let parts: Vec<(JunctionTree, Vec<Factor>)> = (0..planned.num_segments())
                .map(|i| {
                    let model = SegmentModel::build(&planned, i, 0).expect("segment model");
                    let tree = JunctionTree::compile_with(model.net(), options.heuristic)
                        .expect("segment compiles");
                    let potentials = initial_potentials(&tree, model.net());
                    (tree, potentials)
                })
                .collect();
            let build = |sparse: SparseMode, kernel: KernelMode| -> Vec<CompiledTree> {
                parts
                    .iter()
                    .map(|(tree, pots)| {
                        CompiledTree::from_parts_with_kernel(
                            tree.clone(),
                            pots.clone(),
                            sparse,
                            kernel,
                        )
                    })
                    .collect()
            };
            // States are created outside the timed region and recalibrated
            // in place: calibrate re-seeds from the initial potentials, so
            // warm reps do the full message pass with zero allocation.
            let time = |trees: &[CompiledTree], two_pass: bool| -> f64 {
                let mut states: Vec<_> = trees.iter().map(CompiledTree::new_state).collect();
                let pass = |states: &mut Vec<swact_bayesnet::PropagationState>| {
                    for (tree, state) in trees.iter().zip(states.iter_mut()) {
                        if two_pass {
                            tree.calibrate_two_pass(state);
                        } else {
                            tree.calibrate(state);
                        }
                    }
                };
                pass(&mut states); // untimed warm-up
                let start = Instant::now();
                for _ in 0..reps {
                    pass(&mut states);
                }
                start.elapsed().as_secs_f64()
            };

            let dense_scalar = build(SparseMode::Off, KernelMode::Scalar);
            let dense_simd = build(SparseMode::Off, KernelMode::Simd);
            let sparse_scalar = build(SparseMode::Auto, KernelMode::Scalar);
            let sparse_simd = build(SparseMode::Auto, KernelMode::Simd);

            // Equivalence gate before any timing is reported.
            for (k, (tree, _)) in parts.iter().enumerate() {
                let mut reference = dense_scalar[k].new_state();
                dense_scalar[k].calibrate_two_pass(&mut reference);
                let mut scalar = dense_scalar[k].new_state();
                dense_scalar[k].calibrate(&mut scalar);
                let mut simd = dense_simd[k].new_state();
                dense_simd[k].calibrate(&mut simd);
                for clique in 0..tree.num_cliques() {
                    let expect = reference.clique_potential(clique).values();
                    let got = scalar.clique_potential(clique).values();
                    assert_eq!(expect.len(), got.len());
                    for (e, g) in expect.iter().zip(got) {
                        assert_eq!(
                            e.to_bits(),
                            g.to_bits(),
                            "{name}: blocked scalar kernels must be bit-identical \
                             to the two-pass baseline"
                        );
                    }
                    for (e, g) in expect.iter().zip(simd.clique_potential(clique).values()) {
                        assert!(
                            (e - g).abs() <= 1e-12,
                            "{name}: simd kernels drifted past 1e-12 ({e} vs {g})"
                        );
                    }
                }
            }

            let baseline_s = time(&dense_scalar, true);
            let dense_scalar_s = time(&dense_scalar, false);
            let dense_simd_s = time(&dense_simd, false);
            let sparse_scalar_s = time(&sparse_scalar, false);
            let sparse_simd_s = time(&sparse_simd, false);
            let row = KernelThroughputRow {
                circuit: name.to_string(),
                segments: parts.len(),
                cliques: parts.iter().map(|(tree, _)| tree.num_cliques()).sum(),
                baseline_s,
                dense_scalar_s,
                dense_simd_s,
                sparse_scalar_s,
                sparse_simd_s,
                best_speedup: 0.0,
            };
            let best = row.best_s();
            KernelThroughputRow {
                best_speedup: if best > 0.0 { baseline_s / best } else { 1.0 },
                ..row
            }
        })
        .collect()
}

/// Renders kernel-grid rows as a JSON document with host metadata
/// (hand-rolled: the workspace deliberately has no serde dependency).
pub fn kernel_throughput_json(rows: &[KernelThroughputRow], reps: usize) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(
        out,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    let _ = writeln!(out, "  \"host_os\": \"{}\",", std::env::consts::OS);
    let _ = writeln!(out, "  \"host_arch\": \"{}\",", std::env::consts::ARCH);
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"circuit\": \"{}\", \"segments\": {}, \"cliques\": {}, \
             \"baseline_s\": {:.6}, \"dense_scalar_s\": {:.6}, \"dense_simd_s\": {:.6}, \
             \"sparse_scalar_s\": {:.6}, \"sparse_simd_s\": {:.6}, \"best_speedup\": {:.3}}}",
            row.circuit,
            row.segments,
            row.cliques,
            row.baseline_s,
            row.dense_scalar_s,
            row.dense_simd_s,
            row.sparse_scalar_s,
            row.sparse_simd_s,
            row.best_speedup
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One circuit's cold-vs-incremental sweep measurement: a single-input
/// sweep re-propagated over one compiled estimator, once with incremental
/// reuse disabled and once enabled.
#[derive(Debug, Clone)]
pub struct SweepThroughputRow {
    /// Benchmark name.
    pub circuit: String,
    /// Segments (Bayesian networks) the circuit compiled into.
    pub segments: usize,
    /// The primary input the sweep perturbs (chosen by
    /// [`best_sweep_input`]: the input whose dirty cone touches the
    /// fewest segments).
    pub swept_input: usize,
    /// Scenarios in the sweep.
    pub scenarios: usize,
    /// Propagate-only wall clock with `incremental: false`, seconds.
    pub cold_s: f64,
    /// Propagate-only wall clock with `incremental: true` (caches warmed
    /// by one untimed pass), seconds.
    pub incremental_s: f64,
    /// `cold_s / incremental_s`.
    pub speedup: f64,
    /// Collect messages served from the per-edge cache across the sweep.
    pub messages_reused: u64,
    /// Collect messages recomputed across the sweep.
    pub messages_recomputed: u64,
    /// Whole segments served from the posterior memo across the sweep.
    pub segments_skipped: u64,
    /// `messages_reused / (messages_reused + messages_recomputed)`.
    pub reuse_ratio: f64,
}

/// Sweep specs that perturb only input `input`: every other input stays at
/// p1 = 0.5 while the swept input's p1 moves linearly over [0.05, 0.95] —
/// the paper's sensitivity-sweep workload, and the best case for
/// incremental re-propagation (everything outside the swept input's fanout
/// cone is provably unchanged).
pub fn single_input_sweep_specs(
    circuit: &Circuit,
    input: usize,
    scenarios: usize,
) -> Vec<InputSpec> {
    (0..scenarios)
        .map(|k| {
            let t = if scenarios > 1 {
                k as f64 / (scenarios - 1) as f64
            } else {
                0.5
            };
            let mut p1s = vec![0.5; circuit.num_inputs()];
            p1s[input] = 0.05 + 0.9 * t;
            InputSpec::independent(p1s)
        })
        .collect()
}

/// Picks the sweep input whose perturbation dirties the fewest segments:
/// each input is probed with a two-scenario perturbation against a
/// compiled estimator and the one with the most memo-skipped segments
/// wins (lowest index on ties — including the all-zero single-segment
/// case). Incremental reuse is topology-dependent: an input feeding the
/// root segment dirties every downstream boundary, while one entering a
/// late segment leaves the rest of the circuit provably unchanged, so a
/// sweep benchmark must say which case it measures.
pub fn best_sweep_input(circuit: &Circuit) -> usize {
    let compiled =
        CompiledEstimator::compile(circuit, &Options::default()).expect("benchmark compiles");
    let n = circuit.num_inputs();
    let mut best = (0usize, 0u64);
    for input in 0..n {
        let mut p1s = vec![0.5; n];
        p1s[input] = 0.3;
        compiled
            .estimate(&InputSpec::independent(p1s.clone()))
            .expect("estimates");
        p1s[input] = 0.7;
        let est = compiled
            .estimate(&InputSpec::independent(p1s))
            .expect("estimates");
        let skips = est.reuse_stats().segments_skipped;
        if skips > best.1 {
            best = (input, skips);
        }
    }
    best.0
}

/// Times a single-input sweep over one precompiled estimator, cold
/// (`incremental: false`) vs incremental, and asserts the two modes'
/// posteriors bit-identical per scenario. The swept input is chosen per
/// circuit by [`best_sweep_input`] (smallest dirty cone — the use case
/// incremental re-propagation targets; the chosen index is reported in
/// the row). Compilation is untimed; one untimed warm-up pass precedes
/// each timed loop so the incremental run starts with populated caches
/// (the steady-state sweep regime) and the cold run has a warmed
/// allocator.
///
/// # Panics
///
/// Panics if any name is unknown, a circuit fails to compile, or the two
/// modes disagree on any bit of any posterior.
pub fn sweep_throughput(names: &[&str], scenarios: usize) -> Vec<SweepThroughputRow> {
    names
        .iter()
        .map(|&name| {
            let circuit = catalog::benchmark(name).expect("known benchmark");
            let swept_input = best_sweep_input(&circuit);
            let specs = single_input_sweep_specs(&circuit, swept_input, scenarios);
            let run_mode = |incremental: bool| {
                let options = Options {
                    incremental,
                    ..Options::default()
                };
                let compiled =
                    CompiledEstimator::compile(&circuit, &options).expect("benchmark compiles");
                for spec in &specs {
                    // Untimed pass: warms allocator (both modes) and the
                    // message caches / posterior memos (incremental mode).
                    compiled.estimate(spec).expect("estimates");
                }
                // Small circuits finish a whole sweep in microseconds —
                // far below one-shot timer noise — so the sweep repeats
                // until it accumulates a measurable wall clock and reports
                // the per-sweep mean. The reuse counters come from the
                // first pass only (every pass reuses identically: the
                // caches are steady-state after the warm-up).
                let mut estimates = Vec::new();
                let mut passes = 0u32;
                let start = Instant::now();
                loop {
                    passes += 1;
                    let pass: Vec<_> = specs
                        .iter()
                        .map(|spec| compiled.estimate(spec).expect("estimates"))
                        .collect();
                    if estimates.is_empty() {
                        estimates = pass;
                    }
                    if start.elapsed().as_secs_f64() >= 0.05 || passes >= 50 {
                        break;
                    }
                }
                let elapsed = start.elapsed().as_secs_f64() / f64::from(passes);
                (elapsed, estimates, compiled)
            };
            let (cold_s, cold_estimates, _) = run_mode(false);
            let (incremental_s, warm_estimates, compiled) = run_mode(true);
            let mut messages_reused = 0u64;
            let mut messages_recomputed = 0u64;
            let mut segments_skipped = 0u64;
            for (cold, warm) in cold_estimates.iter().zip(&warm_estimates) {
                for (x, y) in cold.switching_all().iter().zip(warm.switching_all().iter()) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "incremental sweep diverged from cold on {name}"
                    );
                }
                let reuse = warm.reuse_stats();
                messages_reused += reuse.messages_reused;
                messages_recomputed += reuse.messages_recomputed;
                segments_skipped += reuse.segments_skipped;
            }
            let message_total = messages_reused + messages_recomputed;
            SweepThroughputRow {
                circuit: name.to_string(),
                segments: compiled.num_segments(),
                swept_input,
                scenarios,
                cold_s,
                incremental_s,
                speedup: if incremental_s > 0.0 {
                    cold_s / incremental_s
                } else {
                    1.0
                },
                messages_reused,
                messages_recomputed,
                segments_skipped,
                reuse_ratio: if message_total > 0 {
                    messages_reused as f64 / message_total as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Renders sweep rows as a JSON document with host metadata (hand-rolled:
/// the workspace deliberately has no serde dependency).
pub fn sweep_throughput_json(rows: &[SweepThroughputRow]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(
        out,
        "  \"scenarios\": {},",
        rows.first().map_or(0, |r| r.scenarios)
    );
    let _ = writeln!(
        out,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    let _ = writeln!(out, "  \"host_os\": \"{}\",", std::env::consts::OS);
    let _ = writeln!(out, "  \"host_arch\": \"{}\",", std::env::consts::ARCH);
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let per_cold = row.cold_s / row.scenarios.max(1) as f64;
        let per_warm = row.incremental_s / row.scenarios.max(1) as f64;
        let _ = write!(
            out,
            "    {{\"circuit\": \"{}\", \"segments\": {}, \"swept_input\": {}, \
             \"cold_s\": {:.6}, \
             \"incremental_s\": {:.6}, \"cold_per_scenario_s\": {:.8}, \
             \"incremental_per_scenario_s\": {:.8}, \"speedup\": {:.3}, \
             \"messages_reused\": {}, \"messages_recomputed\": {}, \
             \"segments_skipped\": {}, \"reuse_ratio\": {:.4}}}",
            row.circuit,
            row.segments,
            row.swept_input,
            row.cold_s,
            row.incremental_s,
            per_cold,
            per_warm,
            row.speedup,
            row.messages_reused,
            row.messages_recomputed,
            row.segments_skipped,
            row.reuse_ratio
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders throughput rows as a JSON document (hand-rolled: the workspace
/// deliberately has no serde dependency).
pub fn batch_throughput_json(circuit_name: &str, rows: &[BatchThroughputRow]) -> String {
    let mut out = String::from("{\n");
    // Schema 2: rows gained per-stage `propagate_s`/`forward_s` seconds
    // (summed over scenarios) alongside the wall clock.
    let _ = writeln!(out, "  \"schema\": 2,");
    let _ = writeln!(out, "  \"circuit\": \"{circuit_name}\",");
    let _ = writeln!(
        out,
        "  \"scenarios\": {},",
        rows.first().map_or(0, |r| r.scenarios)
    );
    // Speedup is bounded by the host's cores; record them so a 1.0x row on
    // a 1-CPU machine is not misread as an engine defect.
    let _ = writeln!(
        out,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"jobs\": {}, \"wall_s\": {:.6}, \"scenarios_per_sec\": {:.3}, \
             \"speedup\": {:.3}, \"cache_hit\": {}, \"propagate_s\": {:.6}, \
             \"forward_s\": {:.6}}}",
            row.jobs,
            row.wall_s,
            row.scenarios_per_sec,
            row.speedup,
            row.cache_hit,
            row.propagate_s,
            row.forward_s
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_baselines::Independence;

    #[test]
    fn table1_row_on_c17_is_exact() {
        let row = table1_row("c17", 1 << 16, &Options::default());
        assert_eq!(row.segments, 1);
        assert!(row.mean_err < 0.01, "µErr {}", row.mean_err);
        assert!(row.update_s < row.total_s);
    }

    #[test]
    fn table2_row_orders_methods() {
        let row = table2_row("c17", 1 << 16, &Options::default(), &[&Independence]);
        assert_eq!(row.cells.len(), 2);
        assert_eq!(row.cells[0].method, "bayesian-network");
        assert!(row.cells[0].mean_err <= row.cells[1].mean_err + 1e-9);
    }

    #[test]
    fn lookup_benchmark_lists_catalog_on_miss() {
        assert!(lookup_benchmark("c17").is_ok());
        let msg = lookup_benchmark("c9999").unwrap_err();
        assert!(msg.contains("unknown benchmark `c9999`"));
        for info in catalog::BENCHMARKS {
            assert!(
                msg.contains(info.name),
                "catalog entry {} missing",
                info.name
            );
        }
    }

    #[test]
    fn sparse_throughput_rows_and_json() {
        let rows = sparse_throughput(&["c17"], 2);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].nnz > 0);
        assert!(rows[0].zero_fraction > 0.0);
        // c17's single-gate cliques (≤75% zero) sit below the fused-kernel
        // break-even (80% zeros), so Auto keeps them all dense.
        assert_eq!(rows[0].compressed_cliques, 0);
        assert!(rows[0].dense_s > 0.0 && rows[0].sparse_s > 0.0);
        let json = sparse_throughput_json(&rows, 2);
        assert!(json.contains("\"circuit\": \"c17\""));
        assert!(json.contains("\"host_cpus\""));
        assert!(json.contains("\"zero_fraction\""));
    }

    #[test]
    fn kernel_throughput_rows_and_json() {
        // kernel_throughput itself asserts blocked-scalar ≡ two-pass
        // bit-identity and simd agreement to 1e-12 before timing.
        let rows = kernel_throughput(&["c17"], 2);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.segments, 1);
        assert!(row.cliques > 0);
        assert!(row.baseline_s > 0.0);
        assert!(row.best_s() > 0.0);
        assert!(row.best_speedup > 0.0);
        let json = kernel_throughput_json(&rows, 2);
        assert!(json.contains("\"circuit\": \"c17\""));
        assert!(json.contains("\"baseline_s\""));
        assert!(json.contains("\"dense_simd_s\""));
        assert!(json.contains("\"best_speedup\""));
    }

    #[test]
    fn batch_throughput_rows_and_json() {
        let circuit = catalog::benchmark("c17").expect("known benchmark");
        let rows = batch_throughput(&circuit, 4, &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].jobs, 1);
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
        assert!(rows.iter().all(|r| r.cache_hit && r.scenarios == 4));
        assert!(rows.iter().all(|r| r.propagate_s > 0.0));
        let json = batch_throughput_json("c17", &rows);
        assert!(json.contains("\"schema\": 2"));
        assert!(json.contains("\"circuit\": \"c17\""));
        assert!(json.contains("\"jobs\": 2"));
        assert_eq!(json.matches("cache_hit").count(), 2);
        assert_eq!(json.matches("propagate_s").count(), 2);
        assert_eq!(json.matches("forward_s").count(), 2);
    }

    #[test]
    fn sweep_throughput_rows_and_json() {
        let rows = sweep_throughput(&["c17"], 4);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.scenarios, 4);
        assert!(row.segments >= 1);
        assert!(row.cold_s > 0.0 && row.incremental_s > 0.0);
        // c17 sits below the message cache's break-even point (hashing the
        // evidence signature costs more than recomputing its one tiny
        // tree), so the compiled segment must bypass the cache entirely:
        // both counters stay at zero. The sweep's bit-identity assertion
        // inside `sweep_throughput` still guarantees warm ≡ cold.
        assert_eq!(
            row.messages_reused + row.messages_recomputed,
            0,
            "c17 should bypass the message cache: {row:?}"
        );
        let json = sweep_throughput_json(&rows);
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"circuit\": \"c17\""));
        assert!(json.contains("\"cold_per_scenario_s\""));
        assert!(json.contains("\"reuse_ratio\""));
        assert!(json.contains("\"segments_skipped\""));
    }

    #[test]
    fn single_input_sweep_perturbs_one_input() {
        let circuit = catalog::benchmark("c17").expect("known benchmark");
        let specs = single_input_sweep_specs(&circuit, 2, 5);
        assert_eq!(specs.len(), 5);
        for spec in &specs {
            for (i, model) in spec.models().iter().enumerate() {
                if i != 2 {
                    assert_eq!(model.p1(), 0.5);
                }
            }
        }
        assert!((specs[0].models()[2].p1() - 0.05).abs() < 1e-12);
        assert!((specs[4].models()[2].p1() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn formatting_is_complete() {
        let rows = vec![table1_row("c17", 1 << 14, &Options::default())];
        let text = format_table1(&rows);
        assert!(text.contains("c17"));
        assert!(text.contains("average"));
        let rows = vec![table2_row(
            "c17",
            1 << 14,
            &Options::default(),
            &[&Independence],
        )];
        let text = format_table2(&rows);
        assert!(text.contains("independence"));
    }
}
