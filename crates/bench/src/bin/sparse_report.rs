//! Sparse-vs-dense propagation summary: times the precompiled "Update"
//! path under `SparseMode::Off` and `SparseMode::Auto` on a set of
//! benchmarks and writes `BENCH_sparse.json`.
//!
//! ```text
//! cargo run -p swact-bench --release --bin sparse_report [reps]
//! ```

use swact_bench::{sparse_throughput, sparse_throughput_json};

fn main() {
    let mut args = std::env::args().skip(1);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);
    let names = ["c17", "c432", "c880", "alu2"];

    println!("sparse vs dense propagation — {reps} repetitions per circuit");
    println!(
        "{:<8} {:>12} {:>9} {:>14} {:>14} {:>9}",
        "circuit", "nnz", "zero%", "dense (ms)", "sparse (ms)", "speedup"
    );
    let rows = sparse_throughput(&names, reps);
    for row in &rows {
        println!(
            "{:<8} {:>12} {:>8.1}% {:>14.3} {:>14.3} {:>8.2}x",
            row.circuit,
            row.nnz,
            row.zero_fraction * 100.0,
            row.dense_s * 1e3,
            row.sparse_s * 1e3,
            row.speedup
        );
    }

    let json = sparse_throughput_json(&rows, reps);
    let path = "BENCH_sparse.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write `{path}`: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {path}");
}
