//! Anytime sampling-backend report: error against the exact junction-tree
//! estimate and wall-clock as a function of the sample budget (the
//! confidence-interval target), on the mid-size benchmarks. Writes
//! `BENCH_anytime.json`.
//!
//! ```text
//! cargo run -p swact-bench --release --bin anytime_report [seed]
//! ```
//!
//! Each row tightens `ci_half_width`, so the sampler draws more batches:
//! the report shows the anytime contract directly — error and reported
//! half-width shrink as wall-clock grows, and the exact twostate-proxy
//! error column anchors where the degradation ladder's bottom rung sits.

use std::time::Instant;

use swact::wire::number;
use swact::{estimate, Backend, Estimate, InputSpec, Options};
use swact_bench::lookup_benchmark;

struct Row {
    circuit: String,
    ci_target: f64,
    samples: u64,
    converged: bool,
    half_width: f64,
    wall_s: f64,
    mean_abs_err: f64,
    max_abs_err: f64,
    twostate_mean_abs_err: f64,
}

fn switching_errors(a: &Estimate, b: &Estimate) -> (f64, f64) {
    let (xs, ys) = (a.switching_all(), b.switching_all());
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        let err = (x - y).abs();
        sum += err;
        max = max.max(err);
    }
    (sum / xs.len() as f64, max)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let names = ["c432", "alu2", "c880"];
    let ci_targets = [0.02, 0.01, 0.005, 0.002];

    println!("anytime sampling backend — error vs jtree as the CI target tightens (seed {seed})");
    println!(
        "{:<8} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "circuit", "ci", "samples", "conv", "±reported", "wall (ms)", "mean|err|", "max|err|"
    );
    let mut rows = Vec::new();
    for name in names {
        let circuit = lookup_benchmark(name).expect("built-in benchmark");
        let spec = InputSpec::uniform(circuit.num_inputs());
        let exact = estimate(&circuit, &spec, &Options::default()).expect("jtree estimate");
        let twostate = estimate(&circuit, &spec, &Options::with_backend(Backend::TwoState))
            .expect("twostate estimate");
        let (twostate_mean_abs_err, _) = switching_errors(&twostate, &exact);
        for ci_target in ci_targets {
            let options = Options {
                backend: Backend::Sampling,
                seed,
                ci_half_width: ci_target,
                ..Options::default()
            };
            let start = Instant::now();
            let sampled = estimate(&circuit, &spec, &options).expect("sampled estimate");
            let wall_s = start.elapsed().as_secs_f64();
            let accuracy = *sampled
                .accuracy()
                .expect("sampled estimates carry accuracy");
            let (mean_abs_err, max_abs_err) = switching_errors(&sampled, &exact);
            println!(
                "{:<8} {:>9.3} {:>9} {:>10} {:>10.4} {:>10.3} {:>10.5} {:>10.5}",
                name,
                ci_target,
                accuracy.samples,
                if accuracy.converged { "yes" } else { "no" },
                accuracy.half_width,
                wall_s * 1e3,
                mean_abs_err,
                max_abs_err,
            );
            rows.push(Row {
                circuit: name.to_string(),
                ci_target,
                samples: accuracy.samples,
                converged: accuracy.converged,
                half_width: accuracy.half_width,
                wall_s,
                mean_abs_err,
                max_abs_err,
                twostate_mean_abs_err,
            });
        }
    }

    let mut json = String::from("{\"bench\":\"anytime\",\"seed\":");
    json.push_str(&seed.to_string());
    json.push_str(",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"circuit\":\"{}\",\"ci_target\":{},\"samples\":{},\"converged\":{},\
             \"half_width\":{},\"wall_s\":{},\"mean_abs_err\":{},\"max_abs_err\":{},\
             \"twostate_mean_abs_err\":{}}}",
            r.circuit,
            number(r.ci_target),
            r.samples,
            r.converged,
            number(r.half_width),
            number(r.wall_s),
            number(r.mean_abs_err),
            number(r.max_abs_err),
            number(r.twostate_mean_abs_err),
        ));
    }
    json.push_str("]}");

    let path = "BENCH_anytime.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write `{path}`: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {path}");
}
