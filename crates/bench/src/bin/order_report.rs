//! Structure-strategy comparison: compiles each benchmark under the
//! greedy default, the FORCE ordering, and the balanced-cut segmentation
//! search, and writes `BENCH_order.json` with the resulting model sizes.
//!
//! ```text
//! cargo run -p swact-bench --release --bin order_report [budget]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use swact::{CompiledEstimator, Options, StructureStrategy};
use swact_circuit::catalog;

struct Row {
    circuit: &'static str,
    strategy: &'static str,
    segments: usize,
    total_states: f64,
    max_clique_states: f64,
    nnz: usize,
    kernel_cost: usize,
    zero_fraction: f64,
    force_ordered_segments: usize,
    compile_ms: f64,
}

fn measure(
    circuit: &'static str,
    strategy_name: &'static str,
    strategy: StructureStrategy,
    budget: usize,
) -> Row {
    let c = catalog::benchmark(circuit).expect("known benchmark");
    let options = Options {
        segment_budget: budget,
        strategy,
        ..Options::default()
    };
    let start = Instant::now();
    let model = CompiledEstimator::compile(&c, &options).expect("compile");
    let compile_ms = start.elapsed().as_secs_f64() * 1e3;
    Row {
        circuit,
        strategy: strategy_name,
        segments: model.num_segments(),
        total_states: model.total_states(),
        max_clique_states: model.max_clique_states(),
        nnz: model.nnz(),
        kernel_cost: model.kernel_cost(),
        zero_fraction: model.zero_fraction(),
        force_ordered_segments: model.force_ordered_segments(),
        compile_ms,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let budget: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1 << 16);
    let circuits = ["c17", "c432", "alu2", "c880"];
    let strategies = [
        ("greedy", StructureStrategy::GREEDY),
        ("force", StructureStrategy::force()),
        ("seg-search", StructureStrategy::balanced_cut()),
    ];

    println!("structure strategies — segment budget {budget}");
    println!(
        "{:<8} {:<10} {:>4} {:>14} {:>12} {:>10} {:>10} {:>7} {:>6} {:>9}",
        "circuit",
        "strategy",
        "seg",
        "total states",
        "max clique",
        "nnz",
        "kernel",
        "zero%",
        "forced",
        "compile"
    );
    let mut rows = Vec::new();
    for &circuit in &circuits {
        for &(name, strategy) in &strategies {
            let row = measure(circuit, name, strategy, budget);
            println!(
                "{:<8} {:<10} {:>4} {:>14.0} {:>12.0} {:>10} {:>10} {:>6.1}% {:>6} {:>7.1}ms",
                row.circuit,
                row.strategy,
                row.segments,
                row.total_states,
                row.max_clique_states,
                row.nnz,
                row.kernel_cost,
                row.zero_fraction * 100.0,
                row.force_ordered_segments,
                row.compile_ms
            );
            rows.push(row);
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"order_report\",");
    let _ = writeln!(json, "  \"segment_budget\": {budget},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"circuit\": \"{}\", \"strategy\": \"{}\", \"segments\": {}, \
             \"total_states\": {:.1}, \"max_clique_states\": {:.1}, \"nnz\": {}, \
             \"kernel_cost\": {}, \"zero_fraction\": {:.6}, \
             \"force_ordered_segments\": {}, \"compile_ms\": {:.3}}}{comma}",
            row.circuit,
            row.strategy,
            row.segments,
            row.total_states,
            row.max_clique_states,
            row.nnz,
            row.kernel_cost,
            row.zero_fraction,
            row.force_ordered_segments,
            row.compile_ms
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let path = "BENCH_order.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write `{path}`: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {path}");
}
