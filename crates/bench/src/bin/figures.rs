//! Regenerates the paper's **Figures 1–4** for the running five-gate
//! example as Graphviz DOT plus a textual summary:
//!
//! * Figure 1 — the combinational circuit;
//! * Figure 2 — the LIDAG-structured Bayesian network (Eq. 7);
//! * Figure 3 — the triangulated moral graph (moral edge 1–2, fill edge
//!   4–7);
//! * Figure 4 — the junction tree of cliques.
//!
//! ```text
//! cargo run -p swact-bench --release --bin figures [output-dir]
//! ```

use std::fs;
use std::path::PathBuf;

use swact::{InputSpec, Lidag};
use swact_bayesnet::graph::moral_graph;
use swact_bayesnet::triangulate::{triangulate, Heuristic};
use swact_bayesnet::JunctionTree;
use swact_circuit::{catalog, write::to_dot};

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/figures"));
    fs::create_dir_all(&out_dir).expect("create output directory");

    let circuit = catalog::paper_example();
    let lidag = Lidag::build(&circuit, &InputSpec::uniform(4), 4).expect("example builds");
    let net = lidag.net();

    // Figure 1: the circuit.
    let fig1 = to_dot(&circuit);
    fs::write(out_dir.join("fig1_circuit.dot"), &fig1).expect("write fig1");

    // Figure 2: the LIDAG Bayesian network.
    let fig2 = lidag.to_dot();
    fs::write(out_dir.join("fig2_lidag.dot"), &fig2).expect("write fig2");

    // Figure 3: triangulated moral graph.
    let moral = moral_graph(net);
    let tri = triangulate(&moral, &net.cards(), Heuristic::MinFill);
    let mut fig3 = String::from("graph triangulated_moral {\n");
    for v in net.var_ids() {
        fig3.push_str(&format!("  v{} [label=\"X{}\"];\n", v.index(), net.name(v)));
    }
    for a in 0..moral.num_nodes() {
        for &b in tri.filled.neighbors(a) {
            if b > a {
                let style = if moral.has_edge(a, b) {
                    "solid"
                } else {
                    "dashed"
                };
                fig3.push_str(&format!("  v{a} -- v{b} [style={style}];\n"));
            }
        }
    }
    fig3.push_str("}\n");
    fs::write(out_dir.join("fig3_triangulated.dot"), &fig3).expect("write fig3");

    // Figure 4: junction tree.
    let tree = JunctionTree::compile(net).expect("example compiles");
    let fig4 = tree.to_dot(&|v| format!("X{}", net.name(v)));
    fs::write(out_dir.join("fig4_junction_tree.dot"), &fig4).expect("write fig4");

    println!("Figures written to {}:", out_dir.display());
    println!(
        "  fig1_circuit.dot          ({} lines, {} gates)",
        circuit.num_lines(),
        circuit.num_gates()
    );
    println!("  fig2_lidag.dot            ({} variables)", net.num_vars());
    println!(
        "  fig3_triangulated.dot     ({} moral edges + {} fill edges)",
        moral.num_edges(),
        tri.fill_edges
    );
    println!(
        "  fig4_junction_tree.dot    ({} cliques, {} sepsets)",
        tree.num_cliques(),
        tree.num_edges()
    );
    println!();
    println!("Paper landmarks: the moral edge 1–2 (parents of X5 married) and");
    println!("one fill edge completing the triangulation; cliques as in Fig. 4.");
    println!();
    println!("Cliques:");
    for i in 0..tree.num_cliques() {
        let members: Vec<String> = tree
            .clique(i)
            .iter()
            .map(|&v| format!("X{}", net.name(v)))
            .collect();
        println!("  C{i}: {{{}}}", members.join(", "));
    }
}
