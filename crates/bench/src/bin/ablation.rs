//! Design-choice ablations indexed in DESIGN.md:
//!
//! * `segmentation` (E6) — error/time vs segment budget, with and without
//!   boundary-correlation forwarding;
//! * `triangulation` (A1) — min-fill vs min-degree clique cost;
//! * `temporal` (A2) — four-state vs two-state variables under temporally
//!   correlated inputs;
//! * `correlation` (E5) — estimator ranking on reconvergence-heavy logic.
//!
//! ```text
//! cargo run -p swact-bench --release --bin ablation -- <which> [pairs]
//! ```

use swact::twostate::estimate_two_state;
use swact::{ErrorStats, InputModel, InputSpec, Options};
use swact_baselines::{Independence, PairwiseCorrelation, SwitchingEstimator};
use swact_bayesnet::Heuristic;
use swact_bench::{ground_truth, GROUND_TRUTH_SEED};
use swact_circuit::catalog;
use swact_sim::{measure_activity, SignalModel, StreamModel};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let pairs = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 19);
    match which.as_str() {
        "segmentation" => segmentation(pairs),
        "triangulation" => triangulation(),
        "temporal" => temporal(pairs),
        "correlation" => correlation(pairs),
        "all" => {
            segmentation(pairs);
            triangulation();
            temporal(pairs);
            correlation(pairs);
        }
        other => {
            eprintln!("unknown ablation `{other}`; use segmentation | triangulation | temporal | correlation | all");
            std::process::exit(2);
        }
    }
}

/// E6: segment-budget sweep, ± boundary-correlation forwarding.
fn segmentation(pairs: usize) {
    println!("== Ablation E6: segmentation budget (c432, c1908, alu2) ==");
    println!(
        "{:<8} {:>10} {:>5} {:>9} {:>9} {:>9} {:>10}",
        "circuit", "budget", "BNs", "µErr", "σErr", "compile_s", "update_s"
    );
    for name in ["c432", "c1908", "alu2"] {
        let circuit = catalog::benchmark(name).expect("known");
        let truth = ground_truth(&circuit, pairs);
        for budget in [1usize << 12, 1 << 14, 1 << 17, 1 << 20] {
            for boundary_correlation in [true, false] {
                let options = Options {
                    segment_budget: budget,
                    boundary_correlation,
                    ..Options::default()
                };
                let spec = InputSpec::uniform(circuit.num_inputs());
                let est = swact::estimate(&circuit, &spec, &options).expect("compiles");
                let stats = est.compare(&truth);
                println!(
                    "{:<8} {:>10} {:>5} {:>9.4} {:>9.4} {:>9.3} {:>10.4}  {}",
                    name,
                    budget,
                    est.num_segments(),
                    stats.mean_abs_error,
                    stats.std_error,
                    est.compile_time().as_secs_f64(),
                    est.propagate_time().as_secs_f64(),
                    if boundary_correlation {
                        "boundary-pairs"
                    } else {
                        "plain marginals (paper)"
                    },
                );
            }
        }
    }
    println!();
}

/// A1: triangulation heuristic quality on the benchmark moral graphs.
fn triangulation() {
    println!("== Ablation A1: triangulation heuristic (junction-tree states) ==");
    println!(
        "{:<10} {:>14} {:>14} {:>9}",
        "circuit", "min-fill", "min-degree", "ratio"
    );
    for name in ["c17", "c432", "c880", "count", "pcler8"] {
        let circuit = catalog::benchmark(name).expect("known");
        let spec = InputSpec::uniform(circuit.num_inputs());
        let lidag = swact::Lidag::build(&circuit, &spec, 4).expect("builds");
        let moral = swact_bayesnet::graph::moral_graph(lidag.net());
        let cards = lidag.net().cards();
        let fill = swact_bayesnet::triangulate::estimate_cost(&moral, &cards, Heuristic::MinFill);
        let degree =
            swact_bayesnet::triangulate::estimate_cost(&moral, &cards, Heuristic::MinDegree);
        println!(
            "{:<10} {:>14.3e} {:>14.3e} {:>9.3}",
            name,
            fill,
            degree,
            degree / fill
        );
    }
    println!();
}

/// A2: four-state vs two-state modeling under temporal correlation.
fn temporal(pairs: usize) {
    println!("== Ablation A2: temporal modeling (c432, correlated inputs) ==");
    println!(
        "{:<22} {:>9} {:>9} {:>9}",
        "input activity", "4-state µ", "2-state µ", "ratio"
    );
    let circuit = catalog::benchmark("c432").expect("known");
    for activity in [0.5, 0.3, 0.1, 0.05] {
        let spec = InputSpec::from_models(vec![
            InputModel::new(0.5, activity).expect("feasible");
            circuit.num_inputs()
        ]);
        let model = StreamModel {
            signals: vec![SignalModel::new(0.5, activity); circuit.num_inputs()],
            groups: Vec::new(),
        };
        let truth = measure_activity(&circuit, &model, pairs, GROUND_TRUTH_SEED).switching;
        let four = swact::estimate(&circuit, &spec, &Options::default()).expect("compiles");
        let four_stats = four.compare(&truth);
        let two = estimate_two_state(&circuit, &spec, &Options::default()).expect("compiles");
        let two_stats = ErrorStats::between(&two.switching, &truth);
        println!(
            "{:<22} {:>9.4} {:>9.4} {:>9.2}",
            format!("P(sw)={activity}"),
            four_stats.mean_abs_error,
            two_stats.mean_abs_error,
            two_stats.mean_abs_error / four_stats.mean_abs_error.max(1e-9)
        );
    }
    println!("(4-state models temporal correlation; 2-state assumes 2p(1-p))");
    println!();
}

/// E5: ranking on reconvergence-heavy logic.
fn correlation(pairs: usize) {
    println!("== Ablation E5: reconvergent fan-out stress ==");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "branches", "BN µErr", "pairwise µ", "indep µ"
    );
    for branches in [1usize, 2, 4] {
        let circuit = swact_circuit::benchgen::reconvergent("stress", 8, branches, 77);
        let spec = InputSpec::uniform(8);
        let truth = ground_truth(&circuit, pairs);
        let bn = swact::estimate(&circuit, &spec, &Options::default()).expect("compiles");
        let bn_stats = bn.compare(&truth);
        let pw = PairwiseCorrelation::default()
            .estimate(&circuit, &spec)
            .expect("estimates");
        let pw_stats = ErrorStats::between(&pw, &truth);
        let ind = Independence.estimate(&circuit, &spec).expect("estimates");
        let ind_stats = ErrorStats::between(&ind, &truth);
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>12.4}",
            branches, bn_stats.mean_abs_error, pw_stats.mean_abs_error, ind_stats.mean_abs_error
        );
    }
    println!("(all branches share all inputs; higher-order correlation grows with branches)");
    println!();
}
