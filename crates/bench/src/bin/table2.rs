//! Regenerates the paper's **Table 2**: accuracy/time comparison of the
//! Bayesian-network estimator against prior-art techniques on the ISCAS-85
//! circuits. The pairwise-correlation estimator stands in for Marculescu
//! '94/'98, independence for the Parker–McCluskey class, and transition
//! density for Najm '93 (see DESIGN.md §2).
//!
//! ```text
//! cargo run -p swact-bench --release --bin table2 [pairs]
//! ```

use swact::Options;
use swact_baselines::{Independence, PairwiseCorrelation, SwitchingEstimator, TransitionDensity};
use swact_bench::{format_table2, table2_row, DEFAULT_PAIRS};
use swact_circuit::catalog;

fn main() {
    let pairs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_PAIRS);
    println!("Table 2 — estimator comparison on ISCAS-85 (uniform random inputs)");
    println!("({pairs} simulated vector pairs per circuit)\n");
    let pairwise = PairwiseCorrelation::default();
    let independence = Independence;
    let density = TransitionDensity;
    let baselines: Vec<&dyn SwitchingEstimator> = vec![&pairwise, &independence, &density];
    let rows: Vec<_> = catalog::table2_benchmarks()
        .iter()
        .map(|info| table2_row(info.name, pairs, &Options::default(), &baselines))
        .collect();
    print!("{}", format_table2(&rows));
    println!();
    println!("Paper reference: BN beats the approximate estimators on most");
    println!("circuits, with up to ~10× accuracy gain over pairwise methods.");
}
