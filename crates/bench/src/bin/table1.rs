//! Regenerates the paper's **Table 1**: switching-activity estimation
//! accuracy and timing of the LIDAG Bayesian-network estimator over the 19
//! ISCAS-85 / MCNC-89 benchmarks (synthetic stand-ins; see DESIGN.md §4),
//! against bit-parallel logic simulation under random input streams.
//!
//! ```text
//! cargo run -p swact-bench --release --bin table1 [pairs]
//! ```

use swact::Options;
use swact_bench::{format_table1, table1, DEFAULT_PAIRS};

fn main() {
    let pairs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_PAIRS);
    println!("Table 1 — Bayesian-network switching estimation vs logic simulation");
    println!("({pairs} simulated vector pairs per circuit, uniform random inputs)\n");
    let rows = table1(pairs, &Options::default());
    print!("{}", format_table1(&rows));
    println!();
    println!("Paper reference points (real ISCAS/MCNC netlists, 450 MHz PC):");
    println!("  average mean error 0.002; average total time 3.93 s;");
    println!("  update ~1 ms; 17 of 19 circuits below 1% error, max ~2% (c432).");
}
