//! Cold-vs-incremental sweep summary: times a single-input sweep over one
//! precompiled estimator with incremental reuse off and on, verifies the
//! two modes bit-identical, and writes `BENCH_sweep.json`.
//!
//! ```text
//! cargo run -p swact-bench --release --bin sweep_report [scenarios]
//! ```

use swact_bench::{sweep_throughput, sweep_throughput_json};

fn main() {
    let mut args = std::env::args().skip(1);
    let scenarios: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let names = ["c17", "c432", "c880", "alu2"];

    println!("cold vs incremental single-input sweep — {scenarios} scenarios per circuit");
    println!(
        "{:<8} {:>5} {:>6} {:>12} {:>12} {:>9} {:>8} {:>10}",
        "circuit", "BNs", "input", "cold (ms)", "incr (ms)", "speedup", "reuse%", "memo-skips"
    );
    let rows = sweep_throughput(&names, scenarios);
    for row in &rows {
        println!(
            "{:<8} {:>5} {:>6} {:>12.3} {:>12.3} {:>8.2}x {:>7.1}% {:>10}",
            row.circuit,
            row.segments,
            row.swept_input,
            row.cold_s * 1e3,
            row.incremental_s * 1e3,
            row.speedup,
            row.reuse_ratio * 100.0,
            row.segments_skipped
        );
    }

    let json = sweep_throughput_json(&rows);
    let path = "BENCH_sweep.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write `{path}`: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {path}");
}
