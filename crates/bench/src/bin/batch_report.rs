//! Batch-throughput summary: measures `swact-engine` scenarios/sec at
//! 1/2/4/8 workers on a segmented benchmark and writes `BENCH_batch.json`.
//!
//! JSON schema 2 (the file carries a `"schema"` field): rows gained
//! `propagate_s` and `forward_s` — per-stage seconds summed over the
//! batch's scenarios, breaking the update path into junction-tree
//! propagation vs boundary forwarding.
//!
//! ```text
//! cargo run -p swact-bench --release --bin batch_report [circuit] [scenarios]
//! ```

use swact_bench::{batch_throughput, batch_throughput_json, lookup_benchmark};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "c880".to_string());
    let scenarios: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let circuit = lookup_benchmark(&name).unwrap_or_else(|message| {
        eprintln!("{message}");
        std::process::exit(2);
    });

    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "batch throughput — {name}: {} inputs, {} gates, {scenarios} scenarios, {cpus} host CPU(s)",
        circuit.num_inputs(),
        circuit.num_gates()
    );
    if cpus == 1 {
        println!("note: single-CPU host — multi-worker rows cannot speed up here");
    }
    let rows = batch_throughput(&circuit, scenarios, &[1, 2, 4, 8]);
    println!(
        "{:>5} {:>10} {:>16} {:>9} {:>7} {:>12} {:>11}",
        "jobs", "wall (s)", "scenarios/sec", "speedup", "cache", "propagate(s)", "forward(s)"
    );
    for row in &rows {
        println!(
            "{:>5} {:>10.4} {:>16.1} {:>8.2}x {:>7} {:>12.4} {:>11.4}",
            row.jobs,
            row.wall_s,
            row.scenarios_per_sec,
            row.speedup,
            if row.cache_hit { "hit" } else { "miss" },
            row.propagate_s,
            row.forward_s
        );
    }

    let json = batch_throughput_json(&name, &rows);
    let path = "BENCH_batch.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write `{path}`: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {path}");
}
