//! Kernel-grid propagation summary: times calibration of each circuit's
//! segment junction trees under the blocked fused kernels
//! ({dense, sparse} × {scalar, simd}) against the per-entry two-pass
//! baseline, and writes `BENCH_kernels.json`.
//!
//! ```text
//! cargo run -p swact-bench --release --bin kernel_report [reps]
//! ```

use swact_bench::{kernel_throughput, kernel_throughput_json};

fn main() {
    let mut args = std::env::args().skip(1);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);
    let names = ["c17", "c432", "c880", "alu2"];

    println!("fused kernel grid vs two-pass baseline — {reps} calibrations per cell");
    println!(
        "{:<8} {:>4} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "circuit", "seg", "base (ms)", "dense (ms)", "d+simd", "sparse", "s+simd", "best"
    );
    let rows = kernel_throughput(&names, reps);
    for row in &rows {
        println!(
            "{:<8} {:>4} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>7.2}x",
            row.circuit,
            row.segments,
            row.baseline_s * 1e3,
            row.dense_scalar_s * 1e3,
            row.dense_simd_s * 1e3,
            row.sparse_scalar_s * 1e3,
            row.sparse_simd_s * 1e3,
            row.best_speedup
        );
    }

    let json = kernel_throughput_json(&rows, reps);
    let path = "BENCH_kernels.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write `{path}`: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {path}");
}
