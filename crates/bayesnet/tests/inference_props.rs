//! Property tests for exact inference: junction-tree propagation against
//! the brute-force joint on random networks.

use proptest::prelude::*;
use swact_bayesnet::{BayesNet, Cpt, Heuristic, JunctionTree, Propagator, VarId};

/// A random discrete Bayesian network with ≤ 7 variables of cardinality
/// 2–3, random parent sets among earlier variables, and random CPTs.
fn arb_net() -> impl Strategy<Value = BayesNet> {
    (3usize..7, any::<u64>()).prop_map(|(n, seed)| {
        // Simple deterministic PRNG so shrinking stays meaningful.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut net = BayesNet::new();
        for i in 0..n {
            let card = 2 + (next() % 2) as usize;
            // Up to two random parents among earlier variables.
            let mut parents: Vec<VarId> = Vec::new();
            if i > 0 {
                for _ in 0..(next() % 3) {
                    let p = VarId::from_index((next() % i as u64) as usize);
                    if !parents.contains(&p) {
                        parents.push(p);
                    }
                }
            }
            let rows: usize = parents.iter().map(|&p| net.card(p)).product();
            let cpt: Vec<Vec<f64>> = (0..rows)
                .map(|_| {
                    let raw: Vec<f64> = (0..card).map(|_| 1.0 + (next() % 1000) as f64).collect();
                    let total: f64 = raw.iter().sum();
                    raw.into_iter().map(|x| x / total).collect()
                })
                .collect();
            net.add_var(format!("v{i}"), card, &parents, Cpt::rows(cpt))
                .expect("generated net is valid");
        }
        net
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Prior marginals from the junction tree equal brute force, for both
    /// triangulation heuristics.
    #[test]
    fn jt_marginals_match_brute_force(net in arb_net()) {
        for heuristic in [Heuristic::MinFill, Heuristic::MinDegree] {
            let tree = JunctionTree::compile_with(&net, heuristic).expect("compiles");
            prop_assert!(tree.satisfies_running_intersection());
            let mut prop = Propagator::new(&tree, &net).expect("nonempty");
            prop.calibrate();
            for var in net.var_ids() {
                let jt = prop.marginal(var);
                let bf = net.brute_force_marginal(var, &[]);
                for (a, b) in jt.iter().zip(&bf) {
                    prop_assert!((a - b).abs() < 1e-9, "{var} {heuristic:?}");
                }
            }
        }
    }

    /// Posterior marginals with random evidence match brute force.
    #[test]
    fn jt_posteriors_match_brute_force(net in arb_net(), pick in any::<u64>()) {
        let observed = VarId::from_index((pick % net.num_vars() as u64) as usize);
        let state = (pick / 7) as usize % net.card(observed);
        // Skip impossible evidence (brute force normalizes to NaN there).
        let prior = net.brute_force_marginal(observed, &[]);
        prop_assume!(prior[state] > 1e-6);
        let tree = JunctionTree::compile(&net).expect("compiles");
        let mut prop = Propagator::new(&tree, &net).expect("nonempty");
        prop.set_evidence(observed, state).expect("in range");
        prop.calibrate();
        for var in net.var_ids() {
            if var == observed { continue; }
            let jt = prop.marginal(var);
            let bf = net.brute_force_marginal(var, &[(observed, state)]);
            for (a, b) in jt.iter().zip(&bf) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
        // And the evidence probability equals the prior mass of the state.
        prop_assert!((prop.evidence_probability() - prior[state]).abs() < 1e-9);
    }

    /// The pairwise marginal across cliques equals the brute-force joint.
    #[test]
    fn pairwise_marginal_matches_brute_force(net in arb_net(), pick in any::<u64>()) {
        let n = net.num_vars() as u64;
        let a = VarId::from_index((pick % n) as usize);
        let b = VarId::from_index(((pick / n) % n) as usize);
        prop_assume!(a != b);
        let tree = JunctionTree::compile(&net).expect("compiles");
        let mut prop = Propagator::new(&tree, &net).expect("nonempty");
        prop.calibrate();
        if let Some(joint) = prop.pairwise_marginal(a, b) {
            let reference = net.joint().marginalize_keep(&[a.min(b), a.max(b)]);
            for (x, y) in joint.values().iter().zip(reference.values()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }

    /// Max-product MPE decoding matches brute-force argmax of the joint.
    #[test]
    fn mpe_matches_brute_force(net in arb_net(), pick in any::<u64>()) {
        let tree = JunctionTree::compile(&net).expect("compiles");
        let mut prop = Propagator::new(&tree, &net).expect("nonempty");
        // Optionally add evidence on one variable.
        let observed = VarId::from_index((pick % net.num_vars() as u64) as usize);
        let state = (pick / 11) as usize % net.card(observed);
        let with_evidence = pick % 2 == 0;
        let mut joint = net.joint();
        if with_evidence {
            let prior = net.brute_force_marginal(observed, &[]);
            prop_assume!(prior[state] > 1e-9);
            prop.set_evidence(observed, state).expect("in range");
            joint.reduce(observed, state);
        }
        prop.max_calibrate();
        let (assignment, p) = prop.most_probable_assignment();
        let (best_idx, best_p) = joint.argmax();
        // Probabilities must match exactly; the assignment may differ only
        // on exact ties.
        prop_assert!((p - best_p).abs() < 1e-9, "p {} vs brute {}", p, best_p);
        let decoded_p = joint.values()[joint.index_of(&assignment)];
        prop_assert!((decoded_p - best_p).abs() < 1e-9);
        let _ = best_idx;
    }

    /// The joint of the whole network sums to one (CPT validation holds
    /// together with the chain rule).
    #[test]
    fn joint_is_normalized(net in arb_net()) {
        prop_assert!((net.joint().total() - 1.0).abs() < 1e-9);
    }
}
