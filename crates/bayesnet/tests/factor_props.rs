//! Property tests for the factor algebra — the foundation every inference
//! result rests on.

use proptest::prelude::*;
use swact_bayesnet::{Factor, VarId};

/// Strategy: a random factor over a subset of 4 variables with mixed
/// cardinalities and non-negative values.
fn arb_factor(var_pool: &'static [(usize, usize)]) -> impl Strategy<Value = Factor> {
    proptest::sample::subsequence(var_pool.to_vec(), 1..=var_pool.len()).prop_flat_map(|vars| {
        let scope: Vec<(VarId, usize)> = vars
            .iter()
            .map(|&(v, c)| (VarId::from_index(v), c))
            .collect();
        let size: usize = scope.iter().map(|&(_, c)| c).product();
        proptest::collection::vec(0.0f64..4.0, size)
            .prop_map(move |values| Factor::new(scope.clone(), values))
    })
}

const POOL: &[(usize, usize)] = &[(0, 2), (1, 3), (2, 2), (3, 4)];

fn factors_close(a: &Factor, b: &Factor, tol: f64) -> bool {
    a.vars() == b.vars()
        && a.values()
            .iter()
            .zip(b.values())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Multiplication commutes.
    #[test]
    fn product_commutes(a in arb_factor(POOL), b in arb_factor(POOL)) {
        prop_assert!(factors_close(&a.product(&b), &b.product(&a), 1e-12));
    }

    /// Multiplication associates.
    #[test]
    fn product_associates(
        a in arb_factor(POOL),
        b in arb_factor(POOL),
        c in arb_factor(POOL),
    ) {
        let left = a.product(&b).product(&c);
        let right = a.product(&b.product(&c));
        prop_assert!(factors_close(&left, &right, 1e-10));
    }

    /// The all-ones factor is a multiplicative identity on any subscope.
    #[test]
    fn ones_is_identity(a in arb_factor(POOL)) {
        let ones = Factor::ones(
            a.vars().iter().zip(a.cards()).map(|(&v, &c)| (v, c)).collect(),
        );
        prop_assert!(factors_close(&a.product(&ones), &a, 1e-12));
    }

    /// Total mass is preserved by marginalization.
    #[test]
    fn marginalization_preserves_total(a in arb_factor(POOL)) {
        for keep_mask in 0..(1usize << a.vars().len()) {
            let keep: Vec<VarId> = a
                .vars()
                .iter()
                .enumerate()
                .filter(|(i, _)| keep_mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            let m = a.marginalize_keep(&keep);
            prop_assert!((m.total() - a.total()).abs() < 1e-9);
        }
    }

    /// Summing out variables one at a time equals summing them out at once.
    #[test]
    fn sum_out_order_is_irrelevant(a in arb_factor(POOL)) {
        if a.vars().len() >= 2 {
            let (x, y) = (a.vars()[0], a.vars()[1]);
            let keep: Vec<VarId> = a.vars()[2..].to_vec();
            let stepwise = a.sum_out(x).sum_out(y);
            let stepwise_rev = a.sum_out(y).sum_out(x);
            let at_once = a.marginalize_keep(&keep);
            prop_assert!(factors_close(&stepwise, &at_once, 1e-10));
            prop_assert!(factors_close(&stepwise_rev, &at_once, 1e-10));
        }
    }

    /// Distributivity of marginalization over products with disjoint extra
    /// scope: Σ_x (f·g) = (Σ_x f)·g when g does not mention x.
    #[test]
    fn marginalize_commutes_with_independent_product(
        f in arb_factor(&[(0, 2), (1, 3)]),
        g in arb_factor(&[(2, 2), (3, 4)]),
    ) {
        let x = f.vars()[0];
        let left = f.product(&g).sum_out(x);
        let right = f.sum_out(x).product(&g);
        prop_assert!(factors_close(&left, &right, 1e-10));
    }

    /// `mul_assign_sub` matches `product` whenever scopes are nested.
    #[test]
    fn in_place_multiply_matches_product(a in arb_factor(POOL)) {
        // Build a sub-scope factor from a's first variable.
        let v = a.vars()[0];
        let c = a.cards()[0];
        let sub = Factor::new(vec![(v, c)], (0..c).map(|i| 0.5 + i as f64).collect());
        let mut in_place = a.clone();
        in_place.mul_assign_sub(&sub);
        prop_assert!(factors_close(&in_place, &a.product(&sub), 1e-12));
    }

    /// The fused product-marginalize kernel matches the two-step pipeline
    /// on every keep subset.
    #[test]
    fn product_marginalize_matches_two_step(
        a in arb_factor(POOL),
        b in arb_factor(POOL),
        keep_mask in 0usize..16,
    ) {
        let all_vars: Vec<VarId> = (0..4).map(VarId::from_index).collect();
        let keep: Vec<VarId> = all_vars
            .iter()
            .enumerate()
            .filter(|(i, _)| keep_mask >> i & 1 == 1)
            .map(|(_, &v)| v)
            .collect();
        let fused = a.product_marginalize(&b, &keep);
        let two_step = a.product(&b).marginalize_keep(&keep);
        prop_assert!(factors_close(&fused, &two_step, 1e-10));
    }

    /// Division undoes multiplication where the divisor is nonzero.
    #[test]
    fn division_inverts_multiplication(a in arb_factor(POOL)) {
        let b = Factor::new(
            a.vars().iter().zip(a.cards()).map(|(&v, &c)| (v, c)).collect(),
            (0..a.len()).map(|i| 1.0 + (i % 5) as f64).collect(),
        );
        let back = a.product(&b).divide_same_domain(&b);
        prop_assert!(factors_close(&back, &a, 1e-10));
    }

    /// Normalization yields a distribution (when mass is positive) and is
    /// idempotent.
    #[test]
    fn normalize_idempotent(mut a in arb_factor(POOL)) {
        let total = a.normalize();
        if total > 0.0 {
            prop_assert!((a.total() - 1.0).abs() < 1e-9);
            let mut again = a.clone();
            let second = again.normalize();
            prop_assert!((second - 1.0).abs() < 1e-9);
            prop_assert!(factors_close(&a, &again, 1e-12));
        }
    }

    /// Reducing and then summing out equals slicing the assignment.
    #[test]
    fn reduce_then_sum_out_is_slice(a in arb_factor(POOL), state_raw in 0usize..4) {
        let v = a.vars()[0];
        let c = a.cards()[0];
        let state = state_raw % c;
        let mut reduced = a.clone();
        reduced.reduce(v, state);
        let sliced = reduced.sum_out(v);
        // Check against manual slicing.
        for idx in 0..sliced.len() {
            let sub = sliced.assignment_of(idx);
            let mut full = Vec::with_capacity(a.vars().len());
            full.push(state);
            full.extend_from_slice(&sub);
            let expect = a.values()[a.index_of(&full)];
            prop_assert!((sliced.values()[idx] - expect).abs() < 1e-12);
        }
    }
}
