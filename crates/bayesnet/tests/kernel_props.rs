//! Property tests for the blocked (stride-aware) fused kernels: the
//! default scalar kernels must be *bit-identical* (`f64::to_bits`) to the
//! per-entry two-pass reference path on arbitrary factors and networks,
//! and the opt-in reassociating simd kernels must agree to `1e-12`.
//!
//! The two-pass reference is `CompiledTree::calibrate_two_pass` — the
//! previous kernel generation, kept reachable exactly so these tests (and
//! the kernel microbenchmarks) always compare against real code rather
//! than a frozen snapshot.

use proptest::prelude::*;
use swact_bayesnet::{
    initial_potentials, BayesNet, CompiledTree, Cpt, Factor, JunctionTree, KernelMode, SparseMode,
    VarId,
};

/// A random factor over a subset of `vars` (cardinalities in `cards`),
/// with `zero_pct` percent of entries zeroed — blocked kernels must hold
/// on the mostly-zero potentials deterministic CPTs produce.
fn random_factor(vars: &[(VarId, usize)], seed: &mut u64, zero_pct: u64) -> Factor {
    let next = move |state: &mut u64| {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    };
    let scope: Vec<(VarId, usize)> = vars
        .iter()
        .filter(|_| next(seed) % 2 == 0)
        .copied()
        .collect();
    let scope = if scope.is_empty() {
        vec![vars[0]]
    } else {
        scope
    };
    let size: usize = scope.iter().map(|&(_, c)| c).product();
    let values: Vec<f64> = (0..size)
        .map(|_| {
            if next(seed) % 100 < zero_pct {
                0.0
            } else {
                (1 + next(seed) % 997) as f64 / 997.0
            }
        })
        .collect();
    Factor::new(scope, values)
}

/// A random discrete Bayesian network mixing deterministic (one-hot) and
/// strictly-positive CPTs over cardinalities 2–4, shaped like the LIDAG
/// families the estimator compiles.
fn arb_net(det_pct: u64) -> impl Strategy<Value = BayesNet> {
    (3usize..8, any::<u64>()).prop_map(move |(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut net = BayesNet::new();
        for i in 0..n {
            let card = 2 + (next() % 3) as usize;
            let mut parents: Vec<VarId> = Vec::new();
            if i > 0 {
                for _ in 0..(next() % 3) {
                    let p = VarId::from_index((next() % i as u64) as usize);
                    if !parents.contains(&p) {
                        parents.push(p);
                    }
                }
            }
            let rows: usize = parents.iter().map(|&p| net.card(p)).product();
            let deterministic = !parents.is_empty() && next() % 100 < det_pct;
            let cpt: Vec<Vec<f64>> = (0..rows)
                .map(|_| {
                    if deterministic {
                        let hot = (next() % card as u64) as usize;
                        (0..card)
                            .map(|s| if s == hot { 1.0 } else { 0.0 })
                            .collect()
                    } else {
                        let raw: Vec<f64> =
                            (0..card).map(|_| 1.0 + (next() % 1000) as f64).collect();
                        let total: f64 = raw.iter().sum();
                        raw.into_iter().map(|x| x / total).collect()
                    }
                })
                .collect();
            net.add_var(format!("v{i}"), card, &parents, Cpt::rows(cpt))
                .expect("generated net is valid");
        }
        net
    })
}

/// Compiles `net` dense and sparse and checks the blocked scalar kernels
/// calibrate bit-identically to the two-pass reference, prior and
/// posterior.
fn assert_scalar_matches_two_pass(net: &BayesNet, pick: u64) {
    let tree = JunctionTree::compile(net).expect("compiles");
    let pots = initial_potentials(&tree, net);
    for sparse in [SparseMode::Off, SparseMode::Auto] {
        let compiled = CompiledTree::from_parts_with_kernel(
            tree.clone(),
            pots.clone(),
            sparse,
            KernelMode::Scalar,
        );
        let mut blocked = compiled.new_state();
        let mut reference = compiled.new_state();
        compiled.calibrate(&mut blocked);
        compiled.calibrate_two_pass(&mut reference);
        for i in 0..tree.num_cliques() {
            let a = blocked.clique_potential(i).values();
            let b = reference.clique_potential(i).values();
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "clique {} prior", i);
            }
        }
        // Posterior with hard evidence, when possible.
        let observed = VarId::from_index((pick % net.num_vars() as u64) as usize);
        let state = (pick / 7) as usize % net.card(observed);
        if compiled.marginal(&blocked, observed)[state] > 0.0 {
            blocked.clear_evidence();
            reference.clear_evidence();
            compiled
                .set_evidence(&mut blocked, observed, state)
                .expect("in range");
            compiled
                .set_evidence(&mut reference, observed, state)
                .expect("in range");
            compiled.calibrate(&mut blocked);
            compiled.calibrate_two_pass(&mut reference);
            prop_assert_eq!(
                blocked.evidence_probability().to_bits(),
                reference.evidence_probability().to_bits()
            );
            for var in net.var_ids() {
                let a = compiled.marginal(&blocked, var);
                let b = compiled.marginal(&reference, var);
                for (x, y) in a.iter().zip(&b) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "posterior of {:?}", var);
                }
            }
        }
    }
}

/// The simd kernels reassociate sum reductions (4-lane accumulators), so
/// they are *not* bit-identical — but on probability-scaled values they
/// must agree with scalar to 1e-12 absolutely.
fn assert_simd_close_to_scalar(net: &BayesNet) {
    let tree = JunctionTree::compile(net).expect("compiles");
    let pots = initial_potentials(&tree, net);
    for sparse in [SparseMode::Off, SparseMode::Auto] {
        let scalar = CompiledTree::from_parts_with_kernel(
            tree.clone(),
            pots.clone(),
            sparse,
            KernelMode::Scalar,
        );
        let simd = CompiledTree::from_parts_with_kernel(
            tree.clone(),
            pots.clone(),
            sparse,
            KernelMode::Simd,
        );
        let mut ss = scalar.new_state();
        let mut sv = simd.new_state();
        scalar.calibrate(&mut ss);
        simd.calibrate(&mut sv);
        for var in net.var_ids() {
            let a = scalar.marginal(&ss, var);
            let b = simd.marginal(&sv, var);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!(
                    (x - y).abs() <= 1e-12,
                    "simd marginal of {:?} drifted: {} vs {}",
                    var,
                    x,
                    y
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `product_marginalize_into` and `marginalize_keep_into` must write
    /// bit-identical values to their allocating counterparts into an
    /// arbitrarily dirty output buffer — the scratch-reuse path of
    /// collect/distribute depends on it.
    #[test]
    fn into_kernels_match_allocating_kernels(seed in any::<u64>(), zero_pct in 0u64..80) {
        let mut state = seed | 1;
        let vars: Vec<(VarId, usize)> = (0..5)
            .map(|i| (VarId::from_index(i), 2 + (i % 3)))
            .collect();
        let a = random_factor(&vars, &mut state, zero_pct);
        let b = random_factor(&vars, &mut state, zero_pct);
        // Keep an arbitrary subset of the merged scope (possibly empty).
        let keep: Vec<VarId> = vars
            .iter()
            .enumerate()
            .filter(|(i, _)| (seed >> i) & 1 == 1)
            .map(|(_, &(v, _))| v)
            .collect();
        // Seed the out-buffers with junk scope and values.
        let junk = || Factor::new(vec![(VarId::from_index(9), 3)], vec![7.0, 8.0, 9.0]);

        let expect = a.product_marginalize(&b, &keep);
        let mut got = junk();
        a.product_marginalize_into(&b, &keep, &mut got);
        prop_assert_eq!(expect.vars(), got.vars());
        prop_assert_eq!(expect.cards(), got.cards());
        for (x, y) in expect.values().iter().zip(got.values()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        let keep_in_a: Vec<VarId> = keep
            .iter()
            .copied()
            .filter(|v| a.vars().contains(v))
            .collect();
        let expect = a.marginalize_keep(&keep_in_a);
        let mut got = junk();
        a.marginalize_keep_into(&keep_in_a, &mut got);
        prop_assert_eq!(expect.vars(), got.vars());
        prop_assert_eq!(expect.cards(), got.cards());
        for (x, y) in expect.values().iter().zip(got.values()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Random strictly-positive CPTs: the blocked scalar kernels are
    /// bit-identical to the two-pass reference.
    #[test]
    fn scalar_matches_two_pass_on_random_nets(net in arb_net(0), pick in any::<u64>()) {
        assert_scalar_matches_two_pass(&net, pick);
    }

    /// LIDAG-shaped nets: deterministic truth tables leave large zero
    /// blocks; blocked and two-pass paths still agree bit-for-bit under
    /// both storage modes.
    #[test]
    fn scalar_matches_two_pass_on_deterministic_nets(net in arb_net(90), pick in any::<u64>()) {
        assert_scalar_matches_two_pass(&net, pick);
    }

    /// The reassociated simd reductions stay within 1e-12 of scalar.
    #[test]
    fn simd_stays_within_tolerance(net in arb_net(50)) {
        assert_simd_close_to_scalar(&net);
    }
}
