//! Property tests for the zero-compressed propagation kernels: every
//! [`SparseMode`] must produce *bit-identical* results to the dense path
//! on random networks — including LIDAG-shaped ones whose deterministic
//! (truth-table) CPTs make the clique potentials mostly zeros.

use proptest::prelude::*;
use swact_bayesnet::{
    initial_potentials, BayesNet, CompiledTree, Cpt, JunctionTree, SparseMode, VarId,
};

/// A random discrete Bayesian network with ≤ 7 binary/ternary variables.
/// `det_pct` percent of the non-root variables get a deterministic one-hot
/// CPT (as gate truth tables do), the rest get random strictly-positive
/// rows.
fn arb_net(det_pct: u64) -> impl Strategy<Value = BayesNet> {
    (3usize..7, any::<u64>()).prop_map(move |(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut net = BayesNet::new();
        for i in 0..n {
            let card = 2 + (next() % 2) as usize;
            let mut parents: Vec<VarId> = Vec::new();
            if i > 0 {
                for _ in 0..(next() % 3) {
                    let p = VarId::from_index((next() % i as u64) as usize);
                    if !parents.contains(&p) {
                        parents.push(p);
                    }
                }
            }
            let rows: usize = parents.iter().map(|&p| net.card(p)).product();
            let deterministic = !parents.is_empty() && next() % 100 < det_pct;
            let cpt: Vec<Vec<f64>> = (0..rows)
                .map(|_| {
                    if deterministic {
                        let hot = (next() % card as u64) as usize;
                        (0..card)
                            .map(|s| if s == hot { 1.0 } else { 0.0 })
                            .collect()
                    } else {
                        let raw: Vec<f64> =
                            (0..card).map(|_| 1.0 + (next() % 1000) as f64).collect();
                        let total: f64 = raw.iter().sum();
                        raw.into_iter().map(|x| x / total).collect()
                    }
                })
                .collect();
            net.add_var(format!("v{i}"), card, &parents, Cpt::rows(cpt))
                .expect("generated net is valid");
        }
        net
    })
}

/// Compiles `net` under every sparse mode and checks sum- and
/// max-propagation agree bit-for-bit, with and without evidence.
fn assert_modes_identical(net: &BayesNet, pick: u64) {
    let tree = JunctionTree::compile(net).expect("compiles");
    let pots = initial_potentials(&tree, net);
    let dense = CompiledTree::from_parts_with(tree.clone(), pots.clone(), SparseMode::Off);
    let observed = VarId::from_index((pick % net.num_vars() as u64) as usize);
    let state = (pick / 7) as usize % net.card(observed);
    for mode in [SparseMode::Auto, SparseMode::On] {
        let sparse = CompiledTree::from_parts_with(tree.clone(), pots.clone(), mode);
        prop_assert_eq!(sparse.nnz(), dense.nnz());

        let mut sd = dense.new_state();
        let mut ss = sparse.new_state();
        // Prior sum-propagation.
        dense.calibrate(&mut sd);
        sparse.calibrate(&mut ss);
        for var in net.var_ids() {
            let a = dense.marginal(&sd, var);
            let b = sparse.marginal(&ss, var);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "prior marginal of {:?}", var);
            }
        }

        // Posterior with hard evidence, when the evidence is possible.
        let prior = dense.marginal(&sd, observed);
        if prior[state] > 0.0 {
            sd.clear_evidence();
            ss.clear_evidence();
            dense
                .set_evidence(&mut sd, observed, state)
                .expect("in range");
            sparse
                .set_evidence(&mut ss, observed, state)
                .expect("in range");
            dense.calibrate(&mut sd);
            sparse.calibrate(&mut ss);
            prop_assert_eq!(
                sd.evidence_probability().to_bits(),
                ss.evidence_probability().to_bits()
            );
            for var in net.var_ids() {
                let a = dense.marginal(&sd, var);
                let b = sparse.marginal(&ss, var);
                for (x, y) in a.iter().zip(&b) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "posterior marginal of {:?}", var);
                }
            }
        }

        // Max-propagation (MPE).
        sd.clear_evidence();
        ss.clear_evidence();
        dense.max_calibrate(&mut sd);
        sparse.max_calibrate(&mut ss);
        let (ad, pd) = dense.most_probable_assignment(&sd);
        let (asp, ps) = sparse.most_probable_assignment(&ss);
        prop_assert_eq!(ad, asp);
        prop_assert_eq!(pd.to_bits(), ps.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random strictly-positive CPTs: sparse modes leave everything dense
    /// (or compress nothing harmful) and stay bit-identical.
    #[test]
    fn sparse_matches_dense_on_random_nets(net in arb_net(0), pick in any::<u64>()) {
        assert_modes_identical(&net, pick);
    }

    /// LIDAG-shaped nets: most CPTs are deterministic truth tables, so the
    /// clique potentials carry large zero blocks that `Auto` compresses.
    #[test]
    fn sparse_matches_dense_on_deterministic_nets(net in arb_net(90), pick in any::<u64>()) {
        assert_modes_identical(&net, pick);
    }
}

#[test]
fn deterministic_chain_stays_dense_under_auto() {
    // A 6-gate XOR/AND chain: every non-root CPT is a truth table, which
    // zeros out exactly half of each clique's state space. Half-zero is
    // *below* the sparse kernels' break-even point (three indexed loads
    // per surviving entry vs one sequential load per dense entry), so the
    // per-clique cost model keeps every clique dense — compressing them is
    // the c880 `auto` regression this rule fixed. `On` still compresses.
    let mut net = BayesNet::new();
    let xor = Cpt::rows(vec![
        vec![1.0, 0.0],
        vec![0.0, 1.0],
        vec![0.0, 1.0],
        vec![1.0, 0.0],
    ]);
    let and = Cpt::rows(vec![
        vec![1.0, 0.0],
        vec![1.0, 0.0],
        vec![1.0, 0.0],
        vec![0.0, 1.0],
    ]);
    let a = net
        .add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))
        .unwrap();
    let b = net
        .add_var("b", 2, &[], Cpt::prior(vec![0.4, 0.6]))
        .unwrap();
    let c = net.add_var("c", 2, &[a, b], xor.clone()).unwrap();
    let d = net.add_var("d", 2, &[b, c], and.clone()).unwrap();
    let e = net.add_var("e", 2, &[c, d], xor).unwrap();
    let _ = net.add_var("f", 2, &[d, e], and).unwrap();
    let tree = JunctionTree::compile(&net).unwrap();
    let compiled = CompiledTree::new(tree, &net).unwrap();
    assert!(
        compiled.zero_fraction() >= 0.5,
        "{}",
        compiled.zero_fraction()
    );
    assert_eq!(
        compiled.compressed_cliques(),
        0,
        "half-zero cliques must stay on the dense path under Auto"
    );
    let forced = CompiledTree::from_parts_with(
        JunctionTree::compile(&net).unwrap(),
        initial_potentials(&JunctionTree::compile(&net).unwrap(), &net),
        SparseMode::On,
    );
    assert!(forced.compressed_cliques() > 0);
    assert!(
        compiled.kernel_cost() <= forced.kernel_cost(),
        "auto ({}) must not cost more than forced-sparse ({}) here",
        compiled.kernel_cost(),
        forced.kernel_cost()
    );
}
