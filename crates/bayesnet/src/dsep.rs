//! d-separation and Markov blankets — the graphical-independence side of
//! the paper's Section 3 (Definitions 2–6).
//!
//! A DAG is an *I-map* of a distribution when every d-separation it
//! displays corresponds to a true conditional independence. The LIDAG
//! theorem (paper Theorem 3) rests on exactly this machinery; the tests in
//! the `swact` core crate verify the I-map property numerically for
//! circuit-induced networks using [`d_separated`].

use crate::{BayesNet, VarId};

/// Whether node sets `X` and `Y` are d-separated by `Z` in the network DAG
/// (paper Definition 2): every path between them is blocked, where a
/// head-to-head node blocks unless it (or a descendant) is in `Z`, and
/// every other node blocks when it is in `Z`.
///
/// Implemented with the linear-time reachability ("Bayes ball") algorithm.
/// Nodes in `X ∩ Z` or `Y ∩ Z` are treated as observed.
///
/// # Example
///
/// ```
/// use swact_bayesnet::{dsep::d_separated, BayesNet, Cpt};
///
/// # fn main() -> Result<(), swact_bayesnet::BayesError> {
/// // Collider: a → c ← b.
/// let mut net = BayesNet::new();
/// let a = net.add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))?;
/// let b = net.add_var("b", 2, &[], Cpt::prior(vec![0.5, 0.5]))?;
/// let c = net.add_var("c", 2, &[a, b], Cpt::rows(vec![vec![1.0, 0.0]; 4]))?;
///
/// assert!(d_separated(&net, &[a], &[b], &[]));      // marginally independent
/// assert!(!d_separated(&net, &[a], &[b], &[c]));    // conditioning opens the path
/// # Ok(())
/// # }
/// ```
pub fn d_separated(net: &BayesNet, x: &[VarId], y: &[VarId], z: &[VarId]) -> bool {
    let n = net.num_vars();
    let mut in_z = vec![false; n];
    for &v in z {
        in_z[v.index()] = true;
    }
    let mut in_y = vec![false; n];
    for &v in y {
        in_y[v.index()] = true;
    }

    // Phase 1: ancestors of Z (nodes with a descendant in Z), including Z.
    let mut in_ancestors_of_z = vec![false; n];
    let mut stack: Vec<VarId> = z.to_vec();
    while let Some(v) = stack.pop() {
        if std::mem::replace(&mut in_ancestors_of_z[v.index()], true) {
            continue;
        }
        stack.extend(net.parents(v).iter().copied());
    }

    // Phase 2: traverse active trails from X.
    // Direction: `Up` = arriving at the node from a child (moving towards
    // parents); `Down` = arriving from a parent.
    #[derive(Clone, Copy, PartialEq)]
    enum Dir {
        Up,
        Down,
    }
    let mut visited_up = vec![false; n];
    let mut visited_down = vec![false; n];
    let mut queue: Vec<(VarId, Dir)> = x.iter().map(|&v| (v, Dir::Up)).collect();
    while let Some((node, dir)) = queue.pop() {
        let idx = node.index();
        let seen = match dir {
            Dir::Up => &mut visited_up[idx],
            Dir::Down => &mut visited_down[idx],
        };
        if std::mem::replace(seen, true) {
            continue;
        }
        if !in_z[idx] && in_y[idx] {
            return false; // reached Y along an active trail
        }
        match dir {
            Dir::Up => {
                if !in_z[idx] {
                    for &p in net.parents(node) {
                        queue.push((p, Dir::Up));
                    }
                    for c in net.children(node) {
                        queue.push((c, Dir::Down));
                    }
                }
            }
            Dir::Down => {
                if !in_z[idx] {
                    for c in net.children(node) {
                        queue.push((c, Dir::Down));
                    }
                }
                if in_ancestors_of_z[idx] {
                    for &p in net.parents(node) {
                        queue.push((p, Dir::Up));
                    }
                }
            }
        }
    }
    true
}

/// The Markov blanket of `var`: parents ∪ children ∪ parents-of-children
/// (paper Definition 6 — for a DAG this set is a Markov blanket of the
/// induced distribution). Sorted, excludes `var`.
pub fn markov_blanket(net: &BayesNet, var: VarId) -> Vec<VarId> {
    let mut blanket: Vec<VarId> = net.parents(var).to_vec();
    for child in net.children(var) {
        blanket.push(child);
        blanket.extend(net.parents(child).iter().copied());
    }
    blanket.sort_unstable();
    blanket.dedup();
    blanket.retain(|&v| v != var);
    blanket
}

/// Numerically tests conditional independence `I(X, Z, Y)` in the
/// network's joint distribution (paper Definition 1):
/// `P(x | y, z) = P(x | z)` whenever `P(y, z) > 0`, i.e.
/// `P(x,y,z)·P(z) = P(x,z)·P(y,z)` for all assignments.
///
/// **Exponential** in the total variable count — reference tool for
/// verifying the I-map property on small networks.
pub fn independent_in_joint(
    net: &BayesNet,
    x: &[VarId],
    y: &[VarId],
    z: &[VarId],
    tolerance: f64,
) -> bool {
    let joint = net.joint();
    let mut xz: Vec<VarId> = x.to_vec();
    xz.extend_from_slice(z);
    xz.sort_unstable();
    xz.dedup();
    let mut yz: Vec<VarId> = y.to_vec();
    yz.extend_from_slice(z);
    yz.sort_unstable();
    yz.dedup();
    let mut xyz: Vec<VarId> = xz.clone();
    xyz.extend_from_slice(&yz);
    xyz.sort_unstable();
    xyz.dedup();

    let p_xyz = joint.marginalize_keep(&xyz);
    let p_xz = joint.marginalize_keep(&xz);
    let p_yz = joint.marginalize_keep(&yz);
    let p_z = joint.marginalize_keep(z);

    // Check P(x,y,z)·P(z) == P(x,z)·P(y,z) pointwise over xyz assignments.
    for idx in 0..p_xyz.len() {
        let assignment = p_xyz.assignment_of(idx);
        let project = |target: &crate::Factor| -> f64 {
            let sub: Vec<usize> = target
                .vars()
                .iter()
                .map(|v| {
                    let pos = p_xyz
                        .vars()
                        .iter()
                        .position(|w| w == v)
                        .expect("projection var present");
                    assignment[pos]
                })
                .collect();
            target.values()[target.index_of(&sub)]
        };
        let lhs = p_xyz.values()[idx] * project(&p_z);
        let rhs = project(&p_xz) * project(&p_yz);
        if (lhs - rhs).abs() > tolerance {
            return false;
        }
    }
    true
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::Cpt;

    fn chain3() -> (BayesNet, VarId, VarId, VarId) {
        // a → b → c
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.3, 0.7]))
            .unwrap();
        let b = net
            .add_var(
                "b",
                2,
                &[a],
                Cpt::rows(vec![vec![0.9, 0.1], vec![0.2, 0.8]]),
            )
            .unwrap();
        let c = net
            .add_var(
                "c",
                2,
                &[b],
                Cpt::rows(vec![vec![0.6, 0.4], vec![0.3, 0.7]]),
            )
            .unwrap();
        (net, a, b, c)
    }

    #[test]
    fn chain_blocking() {
        let (net, a, b, c) = chain3();
        assert!(!d_separated(&net, &[a], &[c], &[]));
        assert!(d_separated(&net, &[a], &[c], &[b]));
    }

    #[test]
    fn fork_blocking() {
        // b ← a → c
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let b = net
            .add_var(
                "b",
                2,
                &[a],
                Cpt::rows(vec![vec![0.9, 0.1], vec![0.2, 0.8]]),
            )
            .unwrap();
        let c = net
            .add_var(
                "c",
                2,
                &[a],
                Cpt::rows(vec![vec![0.6, 0.4], vec![0.3, 0.7]]),
            )
            .unwrap();
        assert!(!d_separated(&net, &[b], &[c], &[]));
        assert!(d_separated(&net, &[b], &[c], &[a]));
    }

    #[test]
    fn collider_and_descendant() {
        // a → c ← b, c → d.
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let b = net
            .add_var("b", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let c = net
            .add_var("c", 2, &[a, b], Cpt::rows(vec![vec![1.0, 0.0]; 4]))
            .unwrap();
        let d = net
            .add_var(
                "d",
                2,
                &[c],
                Cpt::rows(vec![vec![0.8, 0.2], vec![0.2, 0.8]]),
            )
            .unwrap();
        assert!(d_separated(&net, &[a], &[b], &[]));
        assert!(!d_separated(&net, &[a], &[b], &[c]));
        // Conditioning on a *descendant* of the collider also opens it.
        assert!(!d_separated(&net, &[a], &[b], &[d]));
    }

    #[test]
    fn dsep_is_symmetric() {
        let (net, a, b, c) = chain3();
        for (x, y, z) in [
            (vec![a], vec![c], vec![]),
            (vec![a], vec![c], vec![b]),
            (vec![a], vec![b], vec![c]),
        ] {
            assert_eq!(d_separated(&net, &x, &y, &z), d_separated(&net, &y, &x, &z));
        }
    }

    #[test]
    fn dsep_agrees_with_numeric_independence_on_chain() {
        let (net, a, b, c) = chain3();
        // d-separation ⇒ independence (I-map direction).
        assert!(independent_in_joint(&net, &[a], &[c], &[b], 1e-10));
        // Dependence where the trail is active.
        assert!(!independent_in_joint(&net, &[a], &[c], &[], 1e-10));
    }

    #[test]
    fn markov_blanket_of_middle_node() {
        // a → c ← b, c → d, e → d.
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let b = net
            .add_var("b", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let c = net
            .add_var("c", 2, &[a, b], Cpt::rows(vec![vec![1.0, 0.0]; 4]))
            .unwrap();
        let e = net
            .add_var("e", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let d = net
            .add_var("d", 2, &[c, e], Cpt::rows(vec![vec![1.0, 0.0]; 4]))
            .unwrap();
        let blanket = markov_blanket(&net, c);
        assert_eq!(blanket, vec![a, b, e, d].into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn blanket_shields_node_numerically() {
        // In a chain, the blanket of b is {a, c}; conditioned on it, b is
        // independent of nothing else (chain has no other nodes) — extend
        // with one more node d to check shielding.
        let (mut net, a, b, c) = chain3();
        let d = net
            .add_var(
                "d",
                2,
                &[c],
                Cpt::rows(vec![vec![0.7, 0.3], vec![0.4, 0.6]]),
            )
            .unwrap();
        let blanket = markov_blanket(&net, b);
        assert_eq!(blanket, vec![a, c]);
        assert!(d_separated(&net, &[b], &[d], &blanket));
        assert!(independent_in_joint(&net, &[b], &[d], &blanket, 1e-10));
    }
}
