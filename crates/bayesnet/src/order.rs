//! FORCE-style hypergraph ordering (Aloul, Markov & Sakallah).
//!
//! FORCE computes a linear layout of a hypergraph's nodes by iterating a
//! center-of-gravity relaxation: every hyperedge's *center of gravity* is
//! the mean position of its members, every node's tentative position is the
//! mean COG of the hyperedges containing it, and re-sorting nodes by
//! tentative position yields the next layout. The loop converges (or is cut
//! off) when the total edge *span* — the sum over hyperedges of the
//! distance between their extreme members — stops improving. Small total
//! span keeps interacting variables adjacent, which is exactly what makes a
//! good BDD variable order and a good elimination order: eliminating nodes
//! along a low-span layout keeps induced cliques local.
//!
//! Unlike the classic formulation (which starts from a random layout), this
//! implementation is fully deterministic: it starts from the identity
//! layout, breaks sorting ties by node index, and returns the best layout
//! seen across a bounded number of iterations — the same input always
//! produces the same order, which the estimator's caching and persistence
//! layers require.

/// Upper bound on relaxation iterations; FORCE almost always converges in
/// O(log n) rounds, so this is a safety net, not a tuning knob.
const MAX_ITERATIONS: usize = 64;

/// Computes a deterministic FORCE layout of `num_nodes` nodes connected by
/// `hyperedges` (each a list of member node indices; duplicates are
/// ignored). Returns the layout as a node order — `order[i]` is the node at
/// position `i` — minimizing (greedily) the total hyperedge span.
///
/// Nodes in no hyperedge keep drifting with their current position, so
/// isolated nodes stay put relative to each other.
///
/// # Panics
///
/// Panics if any hyperedge member is `>= num_nodes`.
pub fn force_order(num_nodes: usize, hyperedges: &[Vec<usize>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..num_nodes).collect();
    if num_nodes <= 1 || hyperedges.is_empty() {
        return order;
    }
    // Deduplicated edges plus a node → incident-edge index.
    let edges: Vec<Vec<usize>> = hyperedges
        .iter()
        .map(|e| {
            let mut members = e.clone();
            members.sort_unstable();
            members.dedup();
            members
        })
        .filter(|e| e.len() > 1)
        .collect();
    if edges.is_empty() {
        return order;
    }
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    for (idx, edge) in edges.iter().enumerate() {
        for &v in edge {
            assert!(v < num_nodes, "hyperedge member {v} out of range");
            incident[v].push(idx);
        }
    }

    let mut pos = vec![0usize; num_nodes];
    let span_of = |order: &[usize], pos: &mut [usize]| -> u64 {
        for (p, &v) in order.iter().enumerate() {
            pos[v] = p;
        }
        edges
            .iter()
            .map(|edge| {
                let (mut lo, mut hi) = (usize::MAX, 0usize);
                for &v in edge {
                    lo = lo.min(pos[v]);
                    hi = hi.max(pos[v]);
                }
                (hi - lo) as u64
            })
            .sum()
    };

    let mut best = order.clone();
    let mut best_span = span_of(&order, &mut pos);
    let mut prev_span = best_span;
    for _ in 0..MAX_ITERATIONS {
        // pos currently reflects `order` (span_of always refreshes it).
        let cogs: Vec<f64> = edges
            .iter()
            .map(|edge| edge.iter().map(|&v| pos[v] as f64).sum::<f64>() / edge.len() as f64)
            .collect();
        let tentative: Vec<f64> = (0..num_nodes)
            .map(|v| {
                if incident[v].is_empty() {
                    pos[v] as f64
                } else {
                    incident[v].iter().map(|&e| cogs[e]).sum::<f64>() / incident[v].len() as f64
                }
            })
            .collect();
        // Stable sort with an explicit index tie-break: equal tentative
        // positions resolve by node id, never by allocator or input order.
        order.sort_by(|&a, &b| {
            tentative[a]
                .total_cmp(&tentative[b])
                .then_with(|| a.cmp(&b))
        });
        let span = span_of(&order, &mut pos);
        if span < best_span {
            best_span = span;
            best.copy_from_slice(&order);
        }
        if span == prev_span {
            break;
        }
        prev_span = span;
    }
    best
}

/// Total hyperedge span of a layout — the quantity [`force_order`]
/// minimizes, exposed for diagnostics and tests.
pub fn layout_span(order: &[usize], hyperedges: &[Vec<usize>]) -> u64 {
    let mut pos = vec![0usize; order.len()];
    for (p, &v) in order.iter().enumerate() {
        pos[v] = p;
    }
    hyperedges
        .iter()
        .filter(|e| e.len() > 1)
        .map(|edge| {
            let (mut lo, mut hi) = (usize::MAX, 0usize);
            for &v in edge {
                lo = lo.min(pos[v]);
                hi = hi.max(pos[v]);
            }
            hi.saturating_sub(lo) as u64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_graphs() {
        assert_eq!(force_order(0, &[]), Vec::<usize>::new());
        assert_eq!(force_order(1, &[]), vec![0]);
        assert_eq!(force_order(3, &[]), vec![0, 1, 2]);
        // Self-loops and singleton edges are ignored.
        assert_eq!(force_order(3, &[vec![1], vec![2, 2]]), vec![0, 1, 2]);
    }

    #[test]
    fn is_a_permutation() {
        let edges = vec![
            vec![0, 5],
            vec![5, 2],
            vec![2, 7],
            vec![7, 1],
            vec![3, 4, 6],
        ];
        let order = force_order(8, &edges);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic() {
        let edges = vec![
            vec![0, 9],
            vec![9, 3],
            vec![3, 6],
            vec![6, 1],
            vec![1, 8],
            vec![4, 5, 7],
        ];
        assert_eq!(force_order(10, &edges), force_order(10, &edges));
    }

    #[test]
    fn never_worse_than_identity() {
        // force_order keeps the best layout seen, and the identity layout
        // is the starting point — so the result can never have larger span.
        let edges = vec![
            vec![0, 7],
            vec![7, 1],
            vec![1, 6],
            vec![6, 2],
            vec![2, 5],
            vec![5, 3],
            vec![3, 4],
        ];
        let identity: Vec<usize> = (0..8).collect();
        let ordered = force_order(8, &edges);
        assert!(layout_span(&ordered, &edges) <= layout_span(&identity, &edges));
    }

    #[test]
    fn untangles_a_scrambled_path() {
        // A path graph whose labels are scrambled: 0-4-1-5-2-6-3. The
        // identity layout has span > n-1; an optimal layout has span n-1.
        let edges = vec![
            vec![0, 4],
            vec![4, 1],
            vec![1, 5],
            vec![5, 2],
            vec![2, 6],
            vec![6, 3],
        ];
        let identity: Vec<usize> = (0..7).collect();
        let ordered = force_order(7, &edges);
        assert!(
            layout_span(&ordered, &edges) < layout_span(&identity, &edges),
            "FORCE should shrink the span of a scrambled path: {} vs {}",
            layout_span(&ordered, &edges),
            layout_span(&identity, &edges)
        );
    }

    #[test]
    fn span_helper_matches_definition() {
        let edges = vec![vec![0, 2], vec![1, 2, 3]];
        // Layout 0,1,2,3: spans 2 and 2.
        assert_eq!(layout_span(&[0, 1, 2, 3], &edges), 4);
        // Layout 2,0,1,3: pos = {2:0, 0:1, 1:2, 3:3}; spans 1 and 3.
        assert_eq!(layout_span(&[2, 0, 1, 3], &edges), 4);
    }
}
