//! Discrete Bayesian networks with exact junction-tree inference.
//!
//! This crate is a from-scratch implementation of the probabilistic
//! machinery behind Bhanja & Ranganathan's switching-activity estimator
//! (DAC 2001) — the same compile-then-propagate pipeline the paper ran
//! through the commercial HUGIN tool:
//!
//! 1. build a [`BayesNet`] — a DAG of discrete variables quantified by
//!    conditional probability tables ([`Cpt`]);
//! 2. [`compile`](JunctionTree::compile) it: **moralize** (marry parents,
//!    drop directions), **triangulate** (eliminate with the
//!    min-fill/min-degree heuristics in [`triangulate`]), harvest maximal
//!    cliques, and connect them into a **junction tree** with maximal
//!    sepset weight (which guarantees the running-intersection property);
//! 3. run the **HUGIN two-phase propagation** ([`Propagator`]): collect
//!    evidence towards a root, distribute back, read calibrated marginals
//!    off any clique.
//!
//! The crate also provides the theory-side tools used by the paper's
//! Section 3: [`dsep`] implements **d-separation** (Definition 2) and
//! Markov blankets/boundaries (Definition 6), and [`elim`] is an
//! independent variable-elimination engine used to cross-check the junction
//! tree. [`Factor`] is the shared dense table algebra underneath all of it.
//!
//! # Example
//!
//! A two-node network `A → B` with binary variables:
//!
//! ```
//! use swact_bayesnet::{BayesNet, Cpt, JunctionTree, Propagator};
//!
//! # fn main() -> Result<(), swact_bayesnet::BayesError> {
//! let mut net = BayesNet::new();
//! let a = net.add_var("a", 2, &[], Cpt::prior(vec![0.3, 0.7]))?;
//! let b = net.add_var(
//!     "b",
//!     2,
//!     &[a],
//!     Cpt::rows(vec![vec![0.9, 0.1], vec![0.2, 0.8]]),
//! )?;
//!
//! let tree = JunctionTree::compile(&net)?;
//! let mut prop = Propagator::new(&tree, &net)?;
//! prop.calibrate();
//! let pb = prop.marginal(b);
//! assert!((pb[1] - (0.3 * 0.1 + 0.7 * 0.8)).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

// The propagate/junction hot path runs on untrusted netlist-derived
// structures; every residual panic site must be an `expect` documenting a
// real invariant, never a bare `unwrap`.
#![deny(clippy::unwrap_used)]

pub mod codec;
pub mod dsep;
pub mod elim;
mod error;
mod factor;
pub mod graph;
mod junction;
mod network;
pub mod order;
mod propagate;
mod sparse;
pub mod triangulate;

pub use error::BayesError;
pub use factor::{Factor, VarId};
pub use junction::JunctionTree;
pub use network::{BayesNet, Cpt};
pub use order::{force_order, layout_span};
pub use propagate::{
    initial_potentials, CompiledTree, MessageCache, PropagationMode, PropagationState, Propagator,
};
pub use sparse::{KernelMode, SparseMode, SPARSE_COST_PER_ENTRY};
pub use triangulate::Heuristic;
