use std::sync::{Mutex, PoisonError};

use crate::junction::JunctionTree;
use crate::sparse::{self, PropagationKernels, SideProj};
use crate::{BayesError, BayesNet, Factor, KernelMode, SparseMode, VarId};

/// The immutable half of HUGIN propagation: clique structure, initial
/// potentials, and the collect/distribute message schedule.
///
/// Compiling a network is expensive (triangulation, CPT multiplication,
/// schedule construction); propagating evidence through the compiled
/// result is cheap. `CompiledTree` captures everything the expensive phase
/// produces in one immutable, `Send + Sync` artifact so that *many*
/// propagations — sequential or concurrent — can share it:
///
/// ```text
/// CompiledTree (shared, read-only)     PropagationState (one per request)
/// ├─ junction tree structure           ├─ working clique potentials
/// ├─ initial clique potentials         ├─ sepset potentials
/// └─ message schedule                  └─ evidence + calibration flags
/// ```
///
/// Each propagation borrows the compiled tree immutably and mutates only
/// its own [`PropagationState`] (created by
/// [`new_state`](CompiledTree::new_state), reusable across requests). The
/// single-threaded [`Propagator`] wraps one of each behind the classic
/// API.
#[derive(Debug, Clone)]
pub struct CompiledTree {
    tree: JunctionTree,
    /// Initial potentials (CPT products), the reset point of every request.
    init_clique_pot: Vec<Factor>,
    /// Collect schedule: edges as (from_clique, edge_idx, to_clique), leaves
    /// towards roots. Distribution replays it reversed and flipped.
    schedule: Vec<(usize, usize, usize)>,
    /// Precomputed absorb kernels: per-edge projection tables plus
    /// per-clique zero-compression supports (see the `sparse` module).
    kernels: PropagationKernels,
    /// The zero-compression policy the kernels were built with.
    mode: SparseMode,
    /// The summation policy of the blocked kernels ([`KernelMode`]):
    /// `Scalar` is bit-identical to every reference path, `Simd`
    /// reassociates sum reductions and therefore never shares a model key
    /// or persisted artifact with a scalar compile.
    kernel: KernelMode,
    /// Dependency mask: for each clique, the evidence variables whose
    /// observations are entered *at* that clique (its home variables).
    /// Evidence anywhere else reaches the clique only through messages, so
    /// hashing these per clique and folding the hashes along the collect
    /// schedule yields, per edge, a bit-exact key over every prior the
    /// message can depend on.
    home_vars: Vec<Vec<VarId>>,
}

// The whole point of the split: compiled trees are shareable across
// threads. Factors and the tree are plain owned data, so this holds by
// construction; the assertion turns any future regression (e.g. an Rc or
// RefCell sneaking into a field) into a compile error.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledTree>();
    assert_send_sync::<PropagationState>();
    assert_send_sync::<MessageCache>();
};

impl CompiledTree {
    /// Compiles the propagation artifact for `net` over its junction tree:
    /// multiplies every CPT into its assigned clique and builds the
    /// message schedule.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::Empty`] if the network is empty. The network
    /// must be the one the tree was compiled from (same variables and
    /// cardinalities); mismatches panic.
    pub fn new(tree: JunctionTree, net: &BayesNet) -> Result<CompiledTree, BayesError> {
        if net.num_vars() == 0 {
            return Err(BayesError::Empty);
        }
        let potentials = initial_potentials(&tree, net);
        Ok(CompiledTree::from_parts(tree, potentials))
    }

    /// Builds the artifact from precomputed initial clique potentials (as
    /// produced by [`initial_potentials`]) — the fast path when the caller
    /// has already assembled potentials itself. Zero compression follows
    /// [`SparseMode::Auto`]; use
    /// [`from_parts_with`](CompiledTree::from_parts_with) to choose.
    ///
    /// # Panics
    ///
    /// Panics if the potential count or any potential's scope disagrees
    /// with the tree.
    pub fn from_parts(tree: JunctionTree, potentials: Vec<Factor>) -> CompiledTree {
        CompiledTree::from_parts_with(tree, potentials, SparseMode::default())
    }

    /// [`from_parts`](CompiledTree::from_parts) with an explicit
    /// zero-compression policy. All modes produce bit-identical
    /// propagation results (see [`SparseMode`]); the mode only selects
    /// which kernels run.
    ///
    /// # Panics
    ///
    /// Panics if the potential count or any potential's scope disagrees
    /// with the tree.
    pub fn from_parts_with(
        tree: JunctionTree,
        potentials: Vec<Factor>,
        mode: SparseMode,
    ) -> CompiledTree {
        CompiledTree::from_parts_with_kernel(tree, potentials, mode, KernelMode::default())
    }

    /// [`from_parts_with`](CompiledTree::from_parts_with) with an explicit
    /// blocked-kernel summation policy. [`KernelMode::Scalar`] (the
    /// default) is bit-identical to every reference path;
    /// [`KernelMode::Simd`] reassociates sum reductions (see
    /// [`KernelMode`]).
    ///
    /// # Panics
    ///
    /// Panics if the potential count or any potential's scope disagrees
    /// with the tree.
    pub fn from_parts_with_kernel(
        tree: JunctionTree,
        potentials: Vec<Factor>,
        mode: SparseMode,
        kernel: KernelMode,
    ) -> CompiledTree {
        validate_potentials(&tree, &potentials);
        let schedule = build_schedule(&tree);
        let kernels = PropagationKernels::build(&tree, &potentials, mode);
        let mut home_vars: Vec<Vec<VarId>> = vec![Vec::new(); tree.num_cliques()];
        for raw in 0..tree.num_vars() {
            let var = VarId::from_index(raw);
            home_vars[tree.home_clique(var)].push(var);
        }
        CompiledTree {
            tree,
            init_clique_pot: potentials,
            schedule,
            kernels,
            mode,
            kernel,
            home_vars,
        }
    }

    /// The compiled junction tree structure.
    pub fn tree(&self) -> &JunctionTree {
        &self.tree
    }

    /// The initial clique potentials every propagation starts from.
    pub fn initial_potentials(&self) -> &[Factor] {
        &self.init_clique_pot
    }

    /// The collect schedule: `(from_clique, edge, to_clique)` triples,
    /// leaves towards roots. Distribution replays it reversed and flipped.
    pub fn message_schedule(&self) -> &[(usize, usize, usize)] {
        &self.schedule
    }

    /// Total entries across all clique potentials — the per-request memory
    /// and per-propagation work, used by caches to cost-rank compiled
    /// models.
    pub fn state_space(&self) -> usize {
        self.init_clique_pot.iter().map(Factor::len).sum()
    }

    /// Nonzero entries across all initial clique potentials — the actual
    /// propagation work under zero compression, and the better cache cost
    /// proxy for LIDAG models whose deterministic CPTs zero out most of
    /// the state space.
    pub fn nnz(&self) -> usize {
        self.kernels.nnz
    }

    /// Fraction of the state space that is structural zeros, in `[0, 1]`.
    pub fn zero_fraction(&self) -> f64 {
        let total = self.state_space();
        if total == 0 {
            0.0
        } else {
            1.0 - self.nnz() as f64 / total as f64
        }
    }

    /// The zero-compression policy this tree was compiled with.
    pub fn sparse_mode(&self) -> SparseMode {
        self.mode
    }

    /// The blocked-kernel summation policy this tree was compiled with.
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// How many cliques actually got a zero-compressed support list.
    pub fn compressed_cliques(&self) -> usize {
        self.kernels.compressed_cliques()
    }

    /// Cost-model estimate of one propagation sweep's kernel work, in
    /// weighted table loads: a zero-compressed clique pays
    /// [`sparse::SPARSE_COST_PER_ENTRY`] indexed loads per surviving entry
    /// where a dense clique pays one (prefetched, sequential) load per
    /// table entry. [`SparseMode::Auto`] minimizes exactly this quantity
    /// per clique, so `Auto`'s cost is never above `Off`'s — pinned by the
    /// c880 regression test that caught `Auto` losing to dense.
    pub fn kernel_cost(&self) -> usize {
        self.kernels
            .support
            .iter()
            .zip(&self.init_clique_pot)
            .map(|(support, pot)| match support {
                Some(s) => sparse::SPARSE_COST_PER_ENTRY * s.len(),
                None => pot.len(),
            })
            .sum()
    }

    /// Every field of the artifact, for the [`crate::codec`] encoder.
    #[allow(clippy::type_complexity)]
    pub(crate) fn codec_parts(
        &self,
    ) -> (
        &JunctionTree,
        &[Factor],
        &[(usize, usize, usize)],
        &PropagationKernels,
        SparseMode,
        KernelMode,
        &[Vec<VarId>],
    ) {
        (
            &self.tree,
            &self.init_clique_pot,
            &self.schedule,
            &self.kernels,
            self.mode,
            self.kernel,
            &self.home_vars,
        )
    }

    /// Rebuilds the artifact from decoded fields — schedule, kernels, and
    /// home-variable masks included — without re-running
    /// [`from_parts_with`](CompiledTree::from_parts_with), so a loaded
    /// artifact is field-for-field (and therefore bit-for-bit) the struct
    /// the original compile produced. Only the [`crate::codec`] decoder
    /// calls this, after checksum verification.
    pub(crate) fn from_codec_parts(
        tree: JunctionTree,
        init_clique_pot: Vec<Factor>,
        schedule: Vec<(usize, usize, usize)>,
        kernels: PropagationKernels,
        mode: SparseMode,
        kernel: KernelMode,
        home_vars: Vec<Vec<VarId>>,
    ) -> CompiledTree {
        CompiledTree {
            tree,
            init_clique_pot,
            schedule,
            kernels,
            mode,
            kernel,
            home_vars,
        }
    }

    /// The dependency mask of clique `i`: the variables whose evidence is
    /// entered at that clique. Evidence on any other variable influences
    /// the clique only through sepset messages.
    pub fn clique_dependencies(&self, i: usize) -> &[VarId] {
        &self.home_vars[i]
    }

    /// A message cache sized for this tree, for use with
    /// [`calibrate_with_cache`](CompiledTree::calibrate_with_cache). One
    /// slot per edge (its memory is bounded by the tree's sepset totals),
    /// shareable across threads and across [`PropagationState`]s.
    pub fn new_message_cache(&self) -> MessageCache {
        MessageCache {
            slots: (0..self.tree.num_edges())
                .map(|_| Mutex::new(None))
                .collect(),
        }
    }

    /// A fresh mutable state for this tree. States are reusable: a second
    /// `calibrate` on the same state reuses its buffers instead of
    /// reallocating, which is what per-request pooling exploits.
    pub fn new_state(&self) -> PropagationState {
        PropagationState {
            clique_pot: self.init_clique_pot.clone(),
            sep_pot: ones_sepsets(&self.tree),
            evidence: vec![None; self.tree.num_vars()],
            likelihood: vec![None; self.tree.num_vars()],
            soft_factors: Vec::new(),
            scratch: Vec::with_capacity(self.tree.max_sepset_states()),
            path_msg: Factor::scalar(1.0),
            path_next: Factor::scalar(1.0),
            path_keep: Vec::new(),
            calibrated: false,
            max_mode: false,
            evidence_probability: 1.0,
            mode: PropagationMode::default(),
        }
    }

    /// Records hard evidence `var = state` in `state`. See
    /// [`Propagator::set_evidence`].
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::EvidenceOutOfRange`] if `value` exceeds the
    /// variable's cardinality.
    pub fn set_evidence(
        &self,
        state: &mut PropagationState,
        var: VarId,
        value: usize,
    ) -> Result<(), BayesError> {
        set_evidence_impl(&self.tree, state, var, value)
    }

    /// Records soft (likelihood) evidence in `state`. See
    /// [`Propagator::set_likelihood`].
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::EvidenceOutOfRange`] if the weight vector
    /// length differs from the variable's cardinality.
    pub fn set_likelihood(
        &self,
        state: &mut PropagationState,
        var: VarId,
        weights: Vec<f64>,
    ) -> Result<(), BayesError> {
        set_likelihood_impl(&self.tree, state, var, weights)
    }

    /// Records multi-variable soft evidence in `state`. See
    /// [`Propagator::insert_factor`].
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::FactorOutsideClique`] when no clique contains
    /// the factor's scope.
    pub fn insert_factor(
        &self,
        state: &mut PropagationState,
        factor: Factor,
    ) -> Result<(), BayesError> {
        insert_factor_impl(&self.tree, state, factor)
    }

    /// Runs collect + distribute on `state`. Afterwards every clique
    /// potential in `state` is proportional to `P(clique vars, evidence)`.
    pub fn calibrate(&self, state: &mut PropagationState) {
        calibrate_impl(
            &self.tree,
            &self.kernels,
            &self.init_clique_pot,
            &self.schedule,
            state,
            false,
            KernelDispatch::Blocked(self.kernel),
        );
    }

    /// [`calibrate`](CompiledTree::calibrate) through the per-entry
    /// projection tables instead of the blocked kernels — the previous
    /// kernel generation, kept as the measured baseline of the kernel
    /// microbenchmarks and the bit-identity reference of the equivalence
    /// tests. Not part of the supported API.
    #[doc(hidden)]
    pub fn calibrate_two_pass(&self, state: &mut PropagationState) {
        calibrate_impl(
            &self.tree,
            &self.kernels,
            &self.init_clique_pot,
            &self.schedule,
            state,
            false,
            KernelDispatch::Legacy,
        );
    }

    /// [`calibrate`](CompiledTree::calibrate) with a per-edge collect
    /// message cache: each collect message is keyed by a bit-exact
    /// (`f64::to_bits`) hash of all evidence reachable from the sender's
    /// subtree, and on a key match ([`PropagationMode::Warm`] states only)
    /// the cached message is copied in verbatim instead of re-marginalizing
    /// the sender — bit-identical by construction, because the key covers
    /// every input the skipped marginalization could read. The sepset
    /// update and receiver multiply always run, so every clique potential
    /// evolves exactly as in a cold calibration.
    ///
    /// [`PropagationMode::Cold`] states never *read* the cache but still
    /// refresh it, so a cold run warms the cache for subsequent sweeps.
    /// Sum-product only; [`max_calibrate`](CompiledTree::max_calibrate)
    /// never consults a cache (max-product messages differ).
    ///
    /// Returns `(reused, recomputed)` collect-message counts.
    pub fn calibrate_with_cache(
        &self,
        state: &mut PropagationState,
        cache: &MessageCache,
    ) -> (u64, u64) {
        assert_eq!(
            cache.slots.len(),
            self.tree.num_edges(),
            "message cache belongs to a different compiled tree"
        );
        calibrate_cached_impl(
            &self.tree,
            &self.kernels,
            &self.init_clique_pot,
            &self.schedule,
            &self.home_vars,
            state,
            cache,
            KernelDispatch::Blocked(self.kernel),
        )
    }

    /// Whether keying the message cache pays for itself on this tree.
    ///
    /// [`calibrate_with_cache`](CompiledTree::calibrate_with_cache) spends
    /// a fixed overhead per sweep before it can match a single message:
    /// one FNV-128 pass over every evidence word that could be entered
    /// plus two 128-bit folds per edge. What a hit *saves* is the
    /// sender-side marginalize of one collect message. On tiny trees the
    /// hashing exceeds the marginalizing it could ever skip (the c17
    /// sweep regression: reuse ratio 1.0 yet 0.88x throughput), so
    /// callers that own the warm/cold policy should fall back to the
    /// plain [`calibrate`](CompiledTree::calibrate) when this returns
    /// `false` — results are bit-identical either way, only the
    /// bookkeeping differs.
    ///
    /// The estimate is deterministic in the compiled fields alone
    /// (schedule, kernels, cardinalities), so a codec-loaded artifact
    /// decides exactly like the fresh compile it was written from.
    pub fn message_cache_worthwhile(&self) -> bool {
        // Worst-case words hashed per sweep: likelihood evidence on every
        // variable (tag + var + one word per state), plus two 128-bit
        // key folds (4 u64 words) per edge.
        let evidence_words: usize = (0..self.tree.num_vars())
            .map(|raw| 2 + self.tree.card(VarId::from_index(raw)))
            .sum();
        let hash_words = evidence_words + 4 * self.tree.num_edges();
        // Byte-at-a-time FNV over a u64 word costs eight 128-bit
        // multiplies — roughly 16 dense table entries' worth of streaming
        // adds, measured on the kernel microbenchmarks.
        let hash_cost = hash_words * 16;
        // A full-reuse sweep skips every collect-side marginalize.
        let collect_savings: usize = self
            .schedule
            .iter()
            .map(|&(from, _, _)| match &self.kernels.support[from] {
                Some(s) => sparse::SPARSE_COST_PER_ENTRY * s.len(),
                None => self.init_clique_pot[from].len(),
            })
            .sum();
        collect_savings > hash_cost
    }

    /// Max-product calibration of `state`; see
    /// [`Propagator::max_calibrate`].
    pub fn max_calibrate(&self, state: &mut PropagationState) {
        calibrate_impl(
            &self.tree,
            &self.kernels,
            &self.init_clique_pot,
            &self.schedule,
            state,
            true,
            KernelDispatch::Blocked(self.kernel),
        );
    }

    /// The posterior marginal `P(var | evidence)` from a calibrated state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is not sum-calibrated.
    pub fn marginal(&self, state: &PropagationState, var: VarId) -> Vec<f64> {
        marginal_impl(&self.tree, state, var)
    }

    /// The joint posterior over a variable set contained in some clique;
    /// see [`Propagator::joint_marginal`].
    ///
    /// # Panics
    ///
    /// Panics if `state` is not sum-calibrated.
    pub fn joint_marginal(&self, state: &PropagationState, vars: &[VarId]) -> Option<Factor> {
        joint_marginal_impl(&self.tree, state, vars)
    }

    /// The exact pairwise posterior for any two variables in one
    /// component; see [`Propagator::pairwise_marginal`].
    ///
    /// # Panics
    ///
    /// Panics if `state` is not sum-calibrated or `a == b`.
    pub fn pairwise_marginal(
        &self,
        state: &PropagationState,
        a: VarId,
        b: VarId,
    ) -> Option<Factor> {
        pairwise_marginal_impl(&self.tree, state, a, b)
    }

    /// [`pairwise_marginal`](CompiledTree::pairwise_marginal) routed
    /// through the state's path scratch factors: the per-step messages of
    /// the clique-path walk are fused (product + marginalize in one pass)
    /// into two ping-ponged buffers owned by `state`, so repeated pairwise
    /// reads allocate no intermediate factor tables once the buffers have
    /// grown to the path's largest message. Results are bit-identical to
    /// the borrowing form — same kernels, same order, reused storage.
    ///
    /// # Panics
    ///
    /// Panics if `state` is not sum-calibrated or `a == b`.
    pub fn pairwise_marginal_scratch(
        &self,
        state: &mut PropagationState,
        a: VarId,
        b: VarId,
    ) -> Option<Factor> {
        pairwise_marginal_scratch_impl(&self.tree, state, a, b)
    }

    /// Decodes the most probable explanation from a max-calibrated state;
    /// see [`Propagator::most_probable_assignment`].
    ///
    /// # Panics
    ///
    /// Panics if `state` is not max-calibrated.
    pub fn most_probable_assignment(&self, state: &PropagationState) -> (Vec<usize>, f64) {
        most_probable_assignment_impl(&self.tree, &self.schedule, state)
    }
}

/// The mutable half of HUGIN propagation: working potentials, evidence,
/// and calibration flags for **one** request.
///
/// Created by [`CompiledTree::new_state`] and only meaningful together
/// with the tree that created it (using it with a different tree panics).
/// States are designed for reuse — `calibrate` resets buffers in place —
/// so pools can hand them out across requests without reallocating.
#[derive(Debug, Clone)]
pub struct PropagationState {
    clique_pot: Vec<Factor>,
    sep_pot: Vec<Factor>,
    /// Hard evidence per variable.
    evidence: Vec<Option<usize>>,
    /// Soft evidence: per variable an optional likelihood vector.
    likelihood: Vec<Option<Vec<f64>>>,
    /// Multi-variable soft evidence as `(host_clique, factor)`, multiplied
    /// into the host at calibration time. The host is resolved once at
    /// insertion (first containing clique) so the same scope always lands
    /// in the same clique — message-cache keys depend on it.
    soft_factors: Vec<(usize, Factor)>,
    /// Sepset-sized message buffer reused by every absorb, so calibration
    /// allocates nothing in steady state.
    scratch: Vec<f64>,
    /// Ping-pong factor buffers for the pairwise clique-path walk
    /// ([`CompiledTree::pairwise_marginal_scratch`]), so repeated boundary
    /// reads allocate no intermediate tables in steady state.
    path_msg: Factor,
    path_next: Factor,
    /// Reused scope buffer for the same walk (sepset plus one variable).
    path_keep: Vec<VarId>,
    calibrated: bool,
    /// Whether the last calibration was sum-product or max-product.
    max_mode: bool,
    /// Probability of the inserted evidence, valid after calibration.
    evidence_probability: f64,
    /// Whether [`CompiledTree::calibrate_with_cache`] may *read* cached
    /// messages ([`Warm`](PropagationMode::Warm)) or only refresh them
    /// ([`Cold`](PropagationMode::Cold), the default).
    mode: PropagationMode,
}

/// Cache policy of a [`PropagationState`] under
/// [`CompiledTree::calibrate_with_cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PropagationMode {
    /// Never read cached messages; recompute everything (and refresh the
    /// cache with the results). The verification baseline.
    #[default]
    Cold,
    /// Reuse cached collect messages whose dependency key matches
    /// bit-exactly; recompute the rest.
    Warm,
}

/// Per-edge collect-message cache for
/// [`CompiledTree::calibrate_with_cache`]: one slot per junction-tree
/// edge, holding the latest message and its dependency key. Slots are
/// individually locked, so concurrent propagations over one shared
/// compiled tree stay safe (and correct, since any hit is bit-identical
/// to recomputation by construction).
///
/// Memory is bounded by the tree's sepset totals; the cache lives and dies
/// with the compiled artifact that owns it, so model-cache eviction (e.g.
/// the engine's LRU) reclaims it automatically.
#[derive(Debug, Default)]
pub struct MessageCache {
    slots: Vec<Mutex<Option<CachedMessage>>>,
}

#[derive(Debug)]
struct CachedMessage {
    key: u128,
    values: Vec<f64>,
}

impl PropagationState {
    /// The cache policy [`CompiledTree::calibrate_with_cache`] applies to
    /// this state.
    pub fn mode(&self) -> PropagationMode {
        self.mode
    }

    /// Sets the cache policy. Does not invalidate the calibration: the
    /// mode changes *how* messages are obtained, never their values.
    pub fn set_mode(&mut self, mode: PropagationMode) {
        self.mode = mode;
    }

    /// Removes all evidence (hard and soft) and invalidates the
    /// calibration, making the state ready for the next request.
    pub fn clear_evidence(&mut self) {
        self.evidence.fill(None);
        self.likelihood.fill(None);
        self.soft_factors.clear();
        self.calibrated = false;
    }

    /// Whether a calibration has run since the last modification.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// The probability of the inserted evidence (1 when there is none).
    ///
    /// # Panics
    ///
    /// Panics if the state is not calibrated.
    pub fn evidence_probability(&self) -> f64 {
        assert!(self.calibrated, "call calibrate() first");
        self.evidence_probability
    }

    /// The calibrated (unnormalized) potential of clique `i`.
    pub fn clique_potential(&self, i: usize) -> &Factor {
        &self.clique_pot[i]
    }
}

/// HUGIN-style two-phase evidence propagation over a compiled
/// [`JunctionTree`].
///
/// A `Propagator` owns the clique and sepset potentials. Its lifecycle:
///
/// 1. [`new`](Propagator::new) multiplies every CPT into its assigned
///    clique (initialization);
/// 2. [`set_evidence`](Propagator::set_evidence) /
///    [`set_likelihood`](Propagator::set_likelihood) record observations;
/// 3. [`calibrate`](Propagator::calibrate) runs *collect* (leaves → root)
///    then *distribute* (root → leaves); afterwards every clique potential
///    is proportional to the joint marginal over its variables;
/// 4. [`marginal`](Propagator::marginal) and friends read results; the
///    pre-normalization mass is the probability of the evidence.
///
/// Re-quantified networks (e.g. new input statistics in the paper's §6)
/// are absorbed with [`reinitialize`](Propagator::reinitialize) — no
/// recompilation needed.
///
/// Internally this is a thin single-threaded wrapper pairing the shared
/// immutable compile artifact with one mutable [`PropagationState`]; for
/// concurrent or pooled propagation over one compile, use
/// [`CompiledTree`] directly.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Propagator<'t> {
    tree: &'t JunctionTree,
    /// Initial potentials (CPT products), kept for cheap resets.
    init_clique_pot: Vec<Factor>,
    /// Collect schedule shared with [`CompiledTree`]; see there.
    schedule: Vec<(usize, usize, usize)>,
    /// Precomputed absorb kernels (rebuilt on
    /// [`reinitialize`](Propagator::reinitialize) — the zero pattern
    /// belongs to the potentials, not the tree).
    kernels: PropagationKernels,
    state: PropagationState,
}

impl<'t> Propagator<'t> {
    /// Creates a propagator and initializes clique potentials from the
    /// network's CPTs.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::Empty`] if the network is empty. The network
    /// must be the one the tree was compiled from (same variables and
    /// cardinalities); mismatches panic.
    pub fn new(tree: &'t JunctionTree, net: &BayesNet) -> Result<Propagator<'t>, BayesError> {
        if net.num_vars() == 0 {
            return Err(BayesError::Empty);
        }
        Ok(Propagator::from_initial(
            tree,
            initial_potentials(tree, net),
        ))
    }

    /// Creates a propagator from precomputed initial clique potentials
    /// (as produced by [`initial_potentials`]) — skipping the CPT
    /// multiplication entirely. This is the fast path for workloads that
    /// compile once and re-propagate many times.
    ///
    /// # Panics
    ///
    /// Panics if the potential count or any potential's scope disagrees
    /// with the tree.
    pub fn from_initial(tree: &'t JunctionTree, potentials: Vec<Factor>) -> Propagator<'t> {
        validate_potentials(tree, &potentials);
        let schedule = build_schedule(tree);
        let kernels = PropagationKernels::build(tree, &potentials, SparseMode::default());
        let state = PropagationState {
            clique_pot: potentials.clone(),
            sep_pot: ones_sepsets(tree),
            evidence: vec![None; tree.num_vars()],
            likelihood: vec![None; tree.num_vars()],
            soft_factors: Vec::new(),
            scratch: Vec::with_capacity(tree.max_sepset_states()),
            path_msg: Factor::scalar(1.0),
            path_next: Factor::scalar(1.0),
            path_keep: Vec::new(),
            calibrated: false,
            max_mode: false,
            evidence_probability: 1.0,
            mode: PropagationMode::default(),
        };
        Propagator {
            tree,
            init_clique_pot: potentials,
            schedule,
            kernels,
            state,
        }
    }

    /// Rebuilds the initial potentials from (possibly re-quantified) CPTs,
    /// keeping the compiled structure and any evidence. Invalidates the
    /// calibration.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not match the compiled tree (different variable
    /// count or cardinalities).
    pub fn reinitialize(&mut self, net: &BayesNet) {
        let pots = initial_potentials(self.tree, net);
        self.kernels = PropagationKernels::build(self.tree, &pots, SparseMode::default());
        self.state.clique_pot = pots.clone();
        self.init_clique_pot = pots;
        self.state.sep_pot = ones_sepsets(self.tree);
        self.state.calibrated = false;
    }

    /// Records hard evidence `var = state`. Overwrites previous evidence on
    /// the same variable and invalidates the calibration.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::EvidenceOutOfRange`] if `state` exceeds the
    /// variable's cardinality.
    pub fn set_evidence(&mut self, var: VarId, state: usize) -> Result<(), BayesError> {
        set_evidence_impl(self.tree, &mut self.state, var, state)
    }

    /// Records soft (likelihood) evidence: state `s` of `var` is weighted
    /// by `weights[s]`. Invalidates the calibration.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::EvidenceOutOfRange`] if the weight vector
    /// length differs from the variable's cardinality.
    pub fn set_likelihood(&mut self, var: VarId, weights: Vec<f64>) -> Result<(), BayesError> {
        set_likelihood_impl(self.tree, &mut self.state, var, weights)
    }

    /// Records multi-variable soft evidence: `factor` is multiplied into a
    /// clique containing its whole scope at calibration time. This is the
    /// general form of [`set_likelihood`](Propagator::set_likelihood) and
    /// is how correlated priors over variable *groups* are injected (e.g.
    /// the boundary-correlation factors of the `swact` estimator).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::FactorOutsideClique`] when no clique contains
    /// the factor's scope.
    pub fn insert_factor(&mut self, factor: Factor) -> Result<(), BayesError> {
        insert_factor_impl(self.tree, &mut self.state, factor)
    }

    /// Removes all evidence (hard and soft) and invalidates the calibration.
    pub fn clear_evidence(&mut self) {
        self.state.clear_evidence();
    }

    /// Runs collect + distribute. Afterwards every clique potential is
    /// proportional to `P(clique vars, evidence)`; reads are O(clique).
    pub fn calibrate(&mut self) {
        calibrate_impl(
            self.tree,
            &self.kernels,
            &self.init_clique_pot,
            &self.schedule,
            &mut self.state,
            false,
            KernelDispatch::default(),
        );
    }

    /// Max-product calibration: afterwards every clique potential holds
    /// *max*-marginals, and
    /// [`most_probable_assignment`](Propagator::most_probable_assignment)
    /// decodes the globally most probable joint state (MPE) consistent
    /// with the evidence. Sum-based reads ([`marginal`](Propagator::marginal)
    /// etc.) panic until [`calibrate`](Propagator::calibrate) runs again.
    pub fn max_calibrate(&mut self) {
        calibrate_impl(
            self.tree,
            &self.kernels,
            &self.init_clique_pot,
            &self.schedule,
            &mut self.state,
            true,
            KernelDispatch::default(),
        );
    }

    /// Whether [`calibrate`](Propagator::calibrate) has run since the last
    /// modification.
    pub fn is_calibrated(&self) -> bool {
        self.state.calibrated
    }

    /// The probability of the inserted evidence (1 when there is none).
    ///
    /// # Panics
    ///
    /// Panics if the propagator is not calibrated.
    pub fn evidence_probability(&self) -> f64 {
        self.state.evidence_probability()
    }

    /// The posterior marginal `P(var | evidence)` as a probability vector.
    ///
    /// # Panics
    ///
    /// Panics if the propagator is not calibrated.
    pub fn marginal(&self, var: VarId) -> Vec<f64> {
        marginal_impl(self.tree, &self.state, var)
    }

    /// The joint posterior over a variable set, provided some clique
    /// contains all of them (returns `None` otherwise). Normalized.
    ///
    /// # Panics
    ///
    /// Panics if the propagator is not calibrated.
    pub fn joint_marginal(&self, vars: &[VarId]) -> Option<Factor> {
        joint_marginal_impl(self.tree, &self.state, vars)
    }

    /// The exact posterior joint `P(a, b | evidence)` for *any* two
    /// variables in the same junction-tree component — even when no single
    /// clique contains both — by marginalizing along the clique path
    /// between their home cliques. Returns `None` across components.
    /// Normalized, scope sorted.
    ///
    /// Runs in O(path length × clique size); this powers the
    /// boundary-correlation forwarding of the `swact` estimator.
    ///
    /// # Panics
    ///
    /// Panics if the propagator is not calibrated or `a == b`.
    pub fn pairwise_marginal(&self, a: VarId, b: VarId) -> Option<Factor> {
        pairwise_marginal_impl(self.tree, &self.state, a, b)
    }

    /// Decodes the most probable explanation (MPE): the jointly most
    /// probable assignment of *all* variables given the evidence, plus its
    /// (unnormalized) probability `P(assignment, evidence)`. Requires a
    /// prior [`max_calibrate`](Propagator::max_calibrate).
    ///
    /// Decoding fixes the root clique's argmax and walks outward, pinning
    /// each sepset before maximizing the next clique — max-calibration
    /// guarantees this greedy trace is globally optimal.
    ///
    /// # Panics
    ///
    /// Panics if the propagator is not max-calibrated.
    pub fn most_probable_assignment(&self) -> (Vec<usize>, f64) {
        most_probable_assignment_impl(self.tree, &self.schedule, &self.state)
    }

    /// The calibrated (unnormalized) potential of clique `i`.
    pub fn clique_potential(&self, i: usize) -> &Factor {
        self.state.clique_potential(i)
    }
}

fn validate_potentials(tree: &JunctionTree, potentials: &[Factor]) {
    assert_eq!(
        potentials.len(),
        tree.num_cliques(),
        "one potential per clique"
    );
    for (i, pot) in potentials.iter().enumerate() {
        assert_eq!(pot.vars(), tree.clique(i), "potential scope mismatch");
    }
}

fn scope_of(tree: &JunctionTree, vars: &[VarId]) -> Vec<(VarId, usize)> {
    vars.iter().map(|&v| (v, tree.card(v))).collect()
}

fn ones_sepsets(tree: &JunctionTree) -> Vec<Factor> {
    (0..tree.num_edges())
        .map(|e| Factor::ones(scope_of(tree, &tree.edge(e).sepset)))
        .collect()
}

fn set_evidence_impl(
    tree: &JunctionTree,
    state: &mut PropagationState,
    var: VarId,
    value: usize,
) -> Result<(), BayesError> {
    let card = tree.card(var);
    if value >= card {
        return Err(BayesError::EvidenceOutOfRange {
            var: var.0,
            state: value,
            card,
        });
    }
    state.evidence[var.index()] = Some(value);
    state.calibrated = false;
    Ok(())
}

fn set_likelihood_impl(
    tree: &JunctionTree,
    state: &mut PropagationState,
    var: VarId,
    weights: Vec<f64>,
) -> Result<(), BayesError> {
    let card = tree.card(var);
    if weights.len() != card {
        return Err(BayesError::EvidenceOutOfRange {
            var: var.0,
            state: weights.len(),
            card,
        });
    }
    state.likelihood[var.index()] = Some(weights);
    state.calibrated = false;
    Ok(())
}

fn insert_factor_impl(
    tree: &JunctionTree,
    state: &mut PropagationState,
    factor: Factor,
) -> Result<(), BayesError> {
    let host = (0..tree.num_cliques()).find(|&c| {
        factor
            .vars()
            .iter()
            .all(|v| tree.clique(c).binary_search(v).is_ok())
    });
    let Some(host) = host else {
        return Err(BayesError::FactorOutsideClique {
            vars: factor.vars().iter().map(|v| v.index() as u32).collect(),
        });
    };
    state.soft_factors.push((host, factor));
    state.calibrated = false;
    Ok(())
}

/// Shared calibration prologue: reset working potentials to the initials
/// and enter all recorded evidence, in a deterministic order.
fn enter_evidence(tree: &JunctionTree, init_clique_pot: &[Factor], state: &mut PropagationState) {
    assert_eq!(
        state.evidence.len(),
        tree.num_vars(),
        "state belongs to a different compiled tree"
    );
    // Reset working potentials to the initials, reusing the state's
    // buffers when it has propagated on this tree before (the common case
    // for pooled states): scopes are fixed per clique/sepset, so a value
    // copy suffices and no factor is reallocated.
    if state.clique_pot.len() == init_clique_pot.len() {
        for (dst, src) in state.clique_pot.iter_mut().zip(init_clique_pot) {
            debug_assert_eq!(dst.vars(), src.vars());
            dst.values_mut().copy_from_slice(src.values());
        }
    } else {
        state.clique_pot = init_clique_pot.to_vec();
    }
    if state.sep_pot.len() == tree.num_edges() {
        for sep in &mut state.sep_pot {
            sep.values_mut().fill(1.0);
        }
    } else {
        state.sep_pot = ones_sepsets(tree);
    }
    for (raw, obs) in state.evidence.iter().enumerate() {
        if let Some(value) = obs {
            let var = VarId::from_index(raw);
            let clique = tree.home_clique(var);
            state.clique_pot[clique].reduce(var, *value);
        }
    }
    for (raw, weights) in state.likelihood.iter().enumerate() {
        if let Some(weights) = weights {
            let var = VarId::from_index(raw);
            let clique = tree.home_clique(var);
            for (value, &w) in weights.iter().enumerate() {
                state.clique_pot[clique].scale_state(var, value, w);
            }
        }
    }
    for (host, factor) in &state.soft_factors {
        state.clique_pot[*host].mul_assign_sub(factor);
    }
}

/// Shared calibration epilogue: evidence probability and flags.
fn finish_calibration(tree: &JunctionTree, state: &mut PropagationState, max_mode: bool) {
    // Probability of evidence: product over components of clique mass.
    let mut p = 1.0;
    for &root in tree.roots() {
        p *= state.clique_pot[root].total();
    }
    state.evidence_probability = p;
    state.calibrated = true;
    state.max_mode = max_mode;
}

/// Which kernel generation an absorption runs through.
///
/// `Blocked` is the production path: stride-aware blocked kernels for
/// dense cliques (with the given [`KernelMode`] summation policy), the
/// support-list kernels for zero-compressed ones. `Legacy` forces the
/// per-entry projection tables everywhere — the previous generation, kept
/// as the measured microbenchmark baseline and the equivalence-test
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelDispatch {
    Legacy,
    Blocked(KernelMode),
}

impl Default for KernelDispatch {
    fn default() -> KernelDispatch {
        KernelDispatch::Blocked(KernelMode::default())
    }
}

/// Sender-side marginalize through the projection the dispatch selects.
fn marginalize_side(
    values: &[f64],
    support: Option<&[u32]>,
    side: &SideProj,
    target: &mut [f64],
    max_mode: bool,
    dispatch: KernelDispatch,
) {
    match (support, dispatch, &side.blocked) {
        (None, KernelDispatch::Blocked(mode), Some(blocked)) => {
            sparse::marginalize_blocked(values, blocked, target, max_mode, mode);
        }
        _ => sparse::marginalize_into(values, support, &side.entries, target, max_mode),
    }
}

/// Receiver-side multiply through the projection the dispatch selects.
fn multiply_side(
    values: &mut [f64],
    support: Option<&[u32]>,
    side: &SideProj,
    update: &[f64],
    dispatch: KernelDispatch,
) {
    match (support, dispatch, &side.blocked) {
        (None, KernelDispatch::Blocked(_), Some(blocked)) => {
            sparse::multiply_blocked(values, blocked, update);
        }
        _ => sparse::multiply_from(values, support, &side.entries, update),
    }
}

fn calibrate_impl(
    tree: &JunctionTree,
    kernels: &PropagationKernels,
    init_clique_pot: &[Factor],
    schedule: &[(usize, usize, usize)],
    state: &mut PropagationState,
    max_mode: bool,
    dispatch: KernelDispatch,
) {
    enter_evidence(tree, init_clique_pot, state);
    // Collect: leaves towards roots.
    for &(from, edge, to) in schedule {
        absorb(tree, kernels, state, from, edge, to, max_mode, dispatch);
    }
    // Distribute: roots towards leaves.
    for &(from, edge, to) in schedule.iter().rev() {
        absorb(tree, kernels, state, to, edge, from, max_mode, dispatch);
    }
    finish_calibration(tree, state, max_mode);
}

/// 128-bit FNV-1a over little-endian bytes — the dependency-key hash.
/// 128 bits keep accidental collisions (which would silently reuse a
/// stale message) out of reach for any realistic sweep length.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

fn fnv_u64(mut h: u128, word: u64) -> u128 {
    for byte in word.to_le_bytes() {
        h ^= u128::from(byte);
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

fn fnv_u128(h: u128, word: u128) -> u128 {
    fnv_u64(fnv_u64(h, word as u64), (word >> 64) as u64)
}

/// Per-clique hash of the evidence entered *at* each clique: hard
/// evidence and likelihoods of the clique's home variables plus soft
/// factors hosted there, all keyed by `f64::to_bits` so equality means
/// bit-identical inputs.
fn clique_evidence_hashes(home_vars: &[Vec<VarId>], state: &PropagationState) -> Vec<u128> {
    let mut hashes: Vec<u128> = home_vars
        .iter()
        .map(|vars| {
            let mut h = FNV128_OFFSET;
            for &var in vars {
                if let Some(value) = state.evidence[var.index()] {
                    h = fnv_u64(h, 1);
                    h = fnv_u64(h, var.index() as u64);
                    h = fnv_u64(h, value as u64);
                }
                if let Some(weights) = &state.likelihood[var.index()] {
                    h = fnv_u64(h, 2);
                    h = fnv_u64(h, var.index() as u64);
                    for &w in weights {
                        h = fnv_u64(h, w.to_bits());
                    }
                }
            }
            h
        })
        .collect();
    for (host, factor) in &state.soft_factors {
        let mut h = hashes[*host];
        h = fnv_u64(h, 3);
        for v in factor.vars() {
            h = fnv_u64(h, v.index() as u64);
        }
        for &x in factor.values() {
            h = fnv_u64(h, x.to_bits());
        }
        hashes[*host] = h;
    }
    hashes
}

#[allow(clippy::too_many_arguments)]
fn calibrate_cached_impl(
    tree: &JunctionTree,
    kernels: &PropagationKernels,
    init_clique_pot: &[Factor],
    schedule: &[(usize, usize, usize)],
    home_vars: &[Vec<VarId>],
    state: &mut PropagationState,
    cache: &MessageCache,
    dispatch: KernelDispatch,
) -> (u64, u64) {
    enter_evidence(tree, init_clique_pot, state);
    // Dependency keys, folded along the collect schedule: when edge
    // (from → to) is processed, every child of `from` has already folded
    // its subtree key into `acc[from]` (children precede parents), so
    // `acc[from]` covers exactly the evidence the message depends on.
    let mut acc = clique_evidence_hashes(home_vars, state);
    let mut edge_key = vec![0u128; tree.num_edges()];
    for &(from, edge, to) in schedule {
        edge_key[edge] = acc[from];
        acc[to] = fnv_u128(acc[to], edge_key[edge]);
    }
    // Collect, reusing cached messages where the key matches.
    let mut reused = 0u64;
    let mut recomputed = 0u64;
    for &(from, edge, to) in schedule {
        if absorb_cached(
            tree,
            kernels,
            state,
            (from, edge, to),
            edge_key[edge],
            cache,
            dispatch,
        ) {
            reused += 1;
        } else {
            recomputed += 1;
        }
    }
    // Distribute: a parent-to-child message depends on evidence in the
    // *whole* tree minus the child's subtree — in a sweep that always
    // includes the perturbed prior, so caching it could never hit.
    // Whole-tree reuse is the segment memoization layer's job.
    for &(from, edge, to) in schedule.iter().rev() {
        absorb(tree, kernels, state, to, edge, from, false, dispatch);
    }
    finish_calibration(tree, state, false);
    (reused, recomputed)
}

/// One HUGIN absorption: `to` absorbs from `from` across `edge`, entirely
/// through the compile-time projection tables — no scope merges, no
/// odometer walks, no allocation (the message lives in `state.scratch`).
#[allow(clippy::too_many_arguments)]
fn absorb(
    tree: &JunctionTree,
    kernels: &PropagationKernels,
    state: &mut PropagationState,
    from: usize,
    edge: usize,
    to: usize,
    max_mode: bool,
    dispatch: KernelDispatch,
) {
    let e = tree.edge(edge);
    let proj = &kernels.edge_proj[edge];
    let (proj_from, proj_to) = if from == e.a {
        (&proj.a, &proj.b)
    } else {
        (&proj.b, &proj.a)
    };
    let sep_len = state.sep_pot[edge].len();
    state.scratch.resize(sep_len, 0.0);
    // (1) New sepset potential: marginalize the sender into scratch.
    marginalize_side(
        state.clique_pot[from].values(),
        kernels.support[from].as_deref(),
        proj_from,
        &mut state.scratch[..sep_len],
        max_mode,
        dispatch,
    );
    commit_message(kernels, state, edge, to, proj_to, dispatch);
}

/// [`absorb`] with a per-edge message cache (sum-product only): on a
/// dependency-key match ([`PropagationMode::Warm`] states) the cached
/// message is copied into scratch instead of re-marginalizing the sender;
/// otherwise the message is computed and the slot refreshed. The sepset
/// store and receiver multiply run either way, keeping the state's
/// evolution bit-identical to [`absorb`]. Returns whether the message was
/// reused.
fn absorb_cached(
    tree: &JunctionTree,
    kernels: &PropagationKernels,
    state: &mut PropagationState,
    (from, edge, to): (usize, usize, usize),
    key: u128,
    cache: &MessageCache,
    dispatch: KernelDispatch,
) -> bool {
    let e = tree.edge(edge);
    let proj = &kernels.edge_proj[edge];
    let (proj_from, proj_to) = if from == e.a {
        (&proj.a, &proj.b)
    } else {
        (&proj.b, &proj.a)
    };
    let sep_len = state.sep_pot[edge].len();
    state.scratch.resize(sep_len, 0.0);
    // Cached-message lock poison recovery: slots hold plain owned data
    // that is consistent after any panic (key and values are written
    // together under the lock), so the entry stays usable.
    let mut reused = false;
    if state.mode == PropagationMode::Warm {
        let slot = cache.slots[edge]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(cached) = slot.as_ref().filter(|c| c.key == key) {
            state.scratch[..sep_len].copy_from_slice(&cached.values);
            reused = true;
        }
    }
    if !reused {
        marginalize_side(
            state.clique_pot[from].values(),
            kernels.support[from].as_deref(),
            proj_from,
            &mut state.scratch[..sep_len],
            false,
            dispatch,
        );
        let mut slot = cache.slots[edge]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match &mut *slot {
            Some(cached) => {
                cached.key = key;
                cached.values.clear();
                cached.values.extend_from_slice(&state.scratch[..sep_len]);
            }
            None => {
                *slot = Some(CachedMessage {
                    key,
                    values: state.scratch[..sep_len].to_vec(),
                });
            }
        }
    }
    commit_message(kernels, state, edge, to, proj_to, dispatch);
    reused
}

/// Steps (2) and (3) of an absorption, shared by the cold and cached
/// paths: store the new sepset potential (turning scratch into the
/// update ratio) and multiply the update into the receiver.
fn commit_message(
    kernels: &PropagationKernels,
    state: &mut PropagationState,
    edge: usize,
    to: usize,
    proj_to: &SideProj,
    dispatch: KernelDispatch,
) {
    let sep_len = state.sep_pot[edge].len();
    // (2) Store the message, turning scratch into the update ratio new/old
    // with the HUGIN convention 0/0 = 0 (nonzero/0 would mean the sender
    // gained mass the old sepset never saw — a propagation-order bug).
    for (slot, msg) in state.sep_pot[edge]
        .values_mut()
        .iter_mut()
        .zip(state.scratch[..sep_len].iter_mut())
    {
        let old = *slot;
        let new = *msg;
        *slot = new;
        *msg = if old == 0.0 {
            assert!(new == 0.0, "division of nonzero {new} by zero sepset entry");
            0.0
        } else {
            new / old
        };
    }
    // (3) Multiply the update into the receiver.
    multiply_side(
        state.clique_pot[to].values_mut(),
        kernels.support[to].as_deref(),
        proj_to,
        &state.scratch[..sep_len],
        dispatch,
    );
}

fn marginal_impl(tree: &JunctionTree, state: &PropagationState, var: VarId) -> Vec<f64> {
    assert!(state.calibrated, "call calibrate() first");
    assert!(
        !state.max_mode,
        "sum-calibration required; call calibrate()"
    );
    let clique = tree.home_clique(var);
    let mut m = state.clique_pot[clique].marginalize_keep(&[var]);
    m.normalize();
    m.values().to_vec()
}

fn joint_marginal_impl(
    tree: &JunctionTree,
    state: &PropagationState,
    vars: &[VarId],
) -> Option<Factor> {
    assert!(state.calibrated, "call calibrate() first");
    assert!(
        !state.max_mode,
        "sum-calibration required; call calibrate()"
    );
    let clique = (0..tree.num_cliques())
        .find(|&c| vars.iter().all(|v| tree.clique(c).binary_search(v).is_ok()))?;
    let mut m = state.clique_pot[clique].marginalize_keep(vars);
    m.normalize();
    Some(m)
}

fn pairwise_marginal_impl(
    tree: &JunctionTree,
    state: &PropagationState,
    a: VarId,
    b: VarId,
) -> Option<Factor> {
    assert!(state.calibrated, "call calibrate() first");
    assert!(
        !state.max_mode,
        "sum-calibration required; call calibrate()"
    );
    assert_ne!(a, b, "pairwise marginal needs two distinct variables");
    if let Some(joint) = joint_marginal_impl(tree, state, &[a.min(b), a.max(b)]) {
        return Some(joint);
    }
    let ca = tree.home_clique(a);
    let cb = tree.home_clique(b);
    let path = tree.clique_path(ca, cb)?;
    // Walk the path keeping a factor over {a} ∪ current sepset: the
    // calibrated joint factorizes as Π φ_C / Π φ_S along the path.
    // Marginalizing *before* multiplying into the next clique keeps
    // every intermediate at sepset-plus-one-variable size.
    // An empty path means ca == cb, which joint_marginal_impl above would
    // have handled; bail out rather than panic if that invariant slips.
    let (first_edge, _) = *path.first()?;
    let mut keep: Vec<VarId> = tree.edge(first_edge).sepset.clone();
    keep.push(a);
    let mut message = state.clique_pot[ca].marginalize_keep(&keep);
    message.div_assign_sub(&state.sep_pot[first_edge]);
    for window in path.windows(2) {
        let (_, clique) = window[0];
        let (next_edge, _) = window[1];
        let mut keep: Vec<VarId> = tree.edge(next_edge).sepset.clone();
        keep.push(a);
        let mut next_message = state.clique_pot[clique].product_marginalize(&message, &keep);
        next_message.div_assign_sub(&state.sep_pot[next_edge]);
        message = next_message;
    }
    let (_, last_clique) = *path.last()?;
    let mut joint =
        state.clique_pot[last_clique].product_marginalize(&message, &[a.min(b), a.max(b)]);
    joint.normalize();
    Some(joint)
}

/// [`pairwise_marginal_impl`] with the per-step messages fused into the
/// state's ping-pong path buffers: the same walk, the same kernels in the
/// same order (so bit-identical results), but each intermediate lands in
/// reused storage instead of a fresh factor. Only the returned joint —
/// which the caller keeps — is allocated.
fn pairwise_marginal_scratch_impl(
    tree: &JunctionTree,
    state: &mut PropagationState,
    a: VarId,
    b: VarId,
) -> Option<Factor> {
    assert!(state.calibrated, "call calibrate() first");
    assert!(
        !state.max_mode,
        "sum-calibration required; call calibrate()"
    );
    assert_ne!(a, b, "pairwise marginal needs two distinct variables");
    if let Some(joint) = joint_marginal_impl(tree, state, &[a.min(b), a.max(b)]) {
        return Some(joint);
    }
    let ca = tree.home_clique(a);
    let cb = tree.home_clique(b);
    let path = tree.clique_path(ca, cb)?;
    let (first_edge, _) = *path.first()?;
    state.path_keep.clear();
    state
        .path_keep
        .extend_from_slice(&tree.edge(first_edge).sepset);
    state.path_keep.push(a);
    state.clique_pot[ca].marginalize_keep_into(&state.path_keep, &mut state.path_msg);
    state.path_msg.div_assign_sub(&state.sep_pot[first_edge]);
    for window in path.windows(2) {
        let (_, clique) = window[0];
        let (next_edge, _) = window[1];
        state.path_keep.clear();
        state
            .path_keep
            .extend_from_slice(&tree.edge(next_edge).sepset);
        state.path_keep.push(a);
        state.clique_pot[clique].product_marginalize_into(
            &state.path_msg,
            &state.path_keep,
            &mut state.path_next,
        );
        state.path_next.div_assign_sub(&state.sep_pot[next_edge]);
        std::mem::swap(&mut state.path_msg, &mut state.path_next);
    }
    let (_, last_clique) = *path.last()?;
    let mut joint =
        state.clique_pot[last_clique].product_marginalize(&state.path_msg, &[a.min(b), a.max(b)]);
    joint.normalize();
    Some(joint)
}

fn most_probable_assignment_impl(
    tree: &JunctionTree,
    schedule: &[(usize, usize, usize)],
    state: &PropagationState,
) -> (Vec<usize>, f64) {
    assert!(
        state.calibrated && state.max_mode,
        "call max_calibrate() first"
    );
    let num_vars = tree.num_vars();
    let mut assignment = vec![usize::MAX; num_vars];
    let mut probability = 1.0f64;
    // Visit cliques root-first per component: component roots, then
    // children in root-to-leaf order (the reversed collect schedule).
    let mut visited = vec![false; tree.num_cliques()];
    let mut order: Vec<usize> = Vec::with_capacity(tree.num_cliques());
    for &root in tree.roots() {
        order.push(root);
        visited[root] = true;
    }
    for &(child, _, _) in schedule.iter().rev() {
        if !visited[child] {
            visited[child] = true;
            order.push(child);
        }
    }
    let roots: std::collections::HashSet<usize> = tree.roots().iter().copied().collect();
    for &clique_idx in &order {
        let clique = tree.clique(clique_idx);
        let mut pot = state.clique_pot[clique_idx].clone();
        // Pin already-decided variables.
        for &v in clique {
            if assignment[v.index()] != usize::MAX {
                pot.reduce(v, assignment[v.index()]);
            }
        }
        let (idx, value) = pot.argmax();
        let states = pot.assignment_of(idx);
        for (pos, &v) in clique.iter().enumerate() {
            if assignment[v.index()] == usize::MAX {
                assignment[v.index()] = states[pos];
            }
        }
        // Component roots contribute the component's max probability;
        // later cliques only refine the assignment.
        if roots.contains(&clique_idx) {
            probability *= value;
        }
    }
    debug_assert!(assignment.iter().all(|&s| s != usize::MAX));
    (assignment, probability)
}

/// Computes the initial clique potentials of a network over a compiled
/// tree: every CPT multiplied into its assigned clique, all other entries
/// one. [`Propagator::new`] calls this; callers that re-propagate many
/// times can cache the result and feed it to
/// [`Propagator::from_initial`].
///
/// # Panics
///
/// Panics if the network does not match the tree (variable count or
/// cardinalities).
pub fn initial_potentials(tree: &JunctionTree, net: &BayesNet) -> Vec<Factor> {
    assert_eq!(net.num_vars(), tree.num_vars(), "network/tree mismatch");
    let mut pots: Vec<Factor> = (0..tree.num_cliques())
        .map(|i| Factor::ones(scope_of(tree, tree.clique(i))))
        .collect();
    for var in net.var_ids() {
        assert_eq!(
            net.card(var),
            tree.card(var),
            "network/tree cardinality mismatch for {var}"
        );
        pots[tree.cpt_clique(var)].mul_assign_sub(net.cpt_factor(var));
    }
    pots
}

/// Builds the collect schedule: for every component root, DFS outward; each
/// tree edge appears once as `(child_clique, edge, parent_clique)` in an
/// order where children precede parents.
fn build_schedule(tree: &JunctionTree) -> Vec<(usize, usize, usize)> {
    let mut schedule = Vec::with_capacity(tree.num_edges());
    let mut visited = vec![false; tree.num_cliques()];
    for &root in tree.roots() {
        // Iterative post-order.
        let mut stack = vec![(root, usize::MAX)];
        let mut post = Vec::new();
        visited[root] = true;
        while let Some((clique, via_edge)) = stack.pop() {
            post.push((clique, via_edge));
            for &e in tree.incident_edges(clique) {
                let edge = tree.edge(e);
                let other = if edge.a == clique { edge.b } else { edge.a };
                if !visited[other] {
                    visited[other] = true;
                    stack.push((other, e));
                }
            }
        }
        // Children appear after parents in `post`; reverse gives leaves-first.
        for &(clique, via_edge) in post.iter().rev() {
            if via_edge != usize::MAX {
                let edge = tree.edge(via_edge);
                let parent = if edge.a == clique { edge.b } else { edge.a };
                schedule.push((clique, via_edge, parent));
            }
        }
    }
    schedule
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{Cpt, JunctionTree};

    fn sprinkler() -> (BayesNet, [VarId; 4]) {
        let mut net = BayesNet::new();
        let cloudy = net
            .add_var("cloudy", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let sprinkler = net
            .add_var(
                "sprinkler",
                2,
                &[cloudy],
                Cpt::rows(vec![vec![0.5, 0.5], vec![0.9, 0.1]]),
            )
            .unwrap();
        let rain = net
            .add_var(
                "rain",
                2,
                &[cloudy],
                Cpt::rows(vec![vec![0.8, 0.2], vec![0.2, 0.8]]),
            )
            .unwrap();
        let wet = net
            .add_var(
                "wet",
                2,
                &[sprinkler, rain],
                Cpt::rows(vec![
                    vec![1.0, 0.0],
                    vec![0.1, 0.9],
                    vec![0.1, 0.9],
                    vec![0.01, 0.99],
                ]),
            )
            .unwrap();
        (net, [cloudy, sprinkler, rain, wet])
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn prior_marginals_match_brute_force() {
        let (net, vars) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.calibrate();
        for var in vars {
            assert_close(
                &prop.marginal(var),
                &net.brute_force_marginal(var, &[]),
                1e-12,
            );
        }
        assert!((prop.evidence_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn posterior_marginals_match_brute_force() {
        let (net, [_, sprinkler_v, rain, wet]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.set_evidence(wet, 1).unwrap();
        prop.calibrate();
        assert_close(
            &prop.marginal(rain),
            &net.brute_force_marginal(rain, &[(wet, 1)]),
            1e-12,
        );
        // Explaining away: add sprinkler evidence.
        prop.set_evidence(sprinkler_v, 1).unwrap();
        prop.calibrate();
        assert_close(
            &prop.marginal(rain),
            &net.brute_force_marginal(rain, &[(wet, 1), (sprinkler_v, 1)]),
            1e-12,
        );
    }

    #[test]
    fn evidence_probability_matches_joint() {
        let (net, [.., wet]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.set_evidence(wet, 1).unwrap();
        prop.calibrate();
        let mut joint = net.joint();
        joint.reduce(wet, 1);
        assert!((prop.evidence_probability() - joint.total()).abs() < 1e-12);
    }

    #[test]
    fn clear_evidence_restores_prior() {
        let (net, [cloudy, .., wet]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.calibrate();
        let prior = prop.marginal(cloudy);
        prop.set_evidence(wet, 0).unwrap();
        prop.calibrate();
        assert!(prop.marginal(cloudy) != prior);
        prop.clear_evidence();
        prop.calibrate();
        assert_close(&prop.marginal(cloudy), &prior, 1e-12);
    }

    #[test]
    fn soft_evidence_scales_posterior() {
        let (net, [cloudy, _, rain, _]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        // Likelihood [0, 1] on rain behaves like hard evidence rain=1.
        prop.set_likelihood(rain, vec![0.0, 1.0]).unwrap();
        prop.calibrate();
        let soft = prop.marginal(cloudy);
        assert_close(
            &soft,
            &net.brute_force_marginal(cloudy, &[(rain, 1)]),
            1e-12,
        );
    }

    #[test]
    fn insert_factor_equals_joint_reweighting() {
        // Multiplying a two-variable factor must match brute force over
        // the reweighted joint.
        let (net, [cloudy, sprinkler_v, rain, _]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        let weights = Factor::new(
            vec![(sprinkler_v.min(rain), 2), (sprinkler_v.max(rain), 2)],
            vec![1.0, 0.2, 0.4, 2.0],
        );
        prop.insert_factor(weights.clone()).unwrap();
        prop.calibrate();
        let mut joint = net.joint();
        joint = joint.product(&weights);
        let mut want = joint.marginalize_keep(&[cloudy]);
        want.normalize();
        assert_close(&prop.marginal(cloudy), want.values(), 1e-12);
        // Clearing evidence removes the factor.
        prop.clear_evidence();
        prop.calibrate();
        assert_close(
            &prop.marginal(cloudy),
            &net.brute_force_marginal(cloudy, &[]),
            1e-12,
        );
    }

    #[test]
    fn insert_factor_outside_clique_rejected() {
        // cloudy and wet never share a clique in this network.
        let (net, [cloudy, _, _, wet]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        let f = Factor::ones(vec![(cloudy.min(wet), 2), (cloudy.max(wet), 2)]);
        let in_clique = (0..tree.num_cliques())
            .any(|c| tree.clique(c).contains(&cloudy) && tree.clique(c).contains(&wet));
        if !in_clique {
            assert!(matches!(
                prop.insert_factor(f),
                Err(BayesError::FactorOutsideClique { .. })
            ));
        }
    }

    #[test]
    fn joint_marginal_within_clique() {
        let (net, [_, sprinkler_v, rain, wet]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.calibrate();
        let joint = prop
            .joint_marginal(&[sprinkler_v, rain, wet])
            .expect("family of wet shares a clique");
        assert!((joint.total() - 1.0).abs() < 1e-12);
        // Consistency: its marginal equals the single-variable read.
        let wet_marg = joint.marginalize_keep(&[wet]);
        assert_close(wet_marg.values(), &prop.marginal(wet), 1e-12);
    }

    #[test]
    fn pairwise_marginal_matches_brute_force_across_cliques() {
        // Build a chain long enough that the endpoints share no clique.
        let mut net = BayesNet::new();
        let mut prev = net
            .add_var("x0", 2, &[], Cpt::prior(vec![0.3, 0.7]))
            .unwrap();
        let first = prev;
        for i in 1..6 {
            prev = net
                .add_var(
                    format!("x{i}"),
                    2,
                    &[prev],
                    Cpt::rows(vec![vec![0.8, 0.2], vec![0.3, 0.7]]),
                )
                .unwrap();
        }
        let last = prev;
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.calibrate();
        let joint = prop.pairwise_marginal(first, last).expect("same component");
        // Brute force joint.
        let reference = net.joint().marginalize_keep(&[first, last]);
        for (a, b) in joint.values().iter().zip(reference.values()) {
            assert!(
                (a - b).abs() < 1e-12,
                "{:?} vs {:?}",
                joint.values(),
                reference.values()
            );
        }
        // With evidence in the middle the endpoints decouple.
        let mid = net.find_var("x3").unwrap();
        prop.set_evidence(mid, 1).unwrap();
        prop.calibrate();
        let joint = prop.pairwise_marginal(first, last).unwrap();
        let pa = prop.marginal(first);
        let pb = prop.marginal(last);
        for s in 0..4 {
            let want = pa[s / 2] * pb[s % 2];
            assert!((joint.values()[s] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn pairwise_marginal_across_components_is_none() {
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let b = net
            .add_var("b", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.calibrate();
        assert!(prop.pairwise_marginal(a, b).is_none());
    }

    #[test]
    fn reinitialize_absorbs_new_priors_without_recompilation() {
        let (mut net, [cloudy, .., wet]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.calibrate();
        let before = prop.marginal(wet);
        net.set_cpt(cloudy, Cpt::prior(vec![0.95, 0.05])).unwrap();
        prop.reinitialize(&net);
        prop.calibrate();
        let after = prop.marginal(wet);
        assert!(after != before);
        assert_close(&after, &net.brute_force_marginal(wet, &[]), 1e-12);
    }

    #[test]
    fn evidence_errors() {
        let (net, [cloudy, ..]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        assert!(matches!(
            prop.set_evidence(cloudy, 5),
            Err(BayesError::EvidenceOutOfRange { state: 5, .. })
        ));
        assert!(prop.set_likelihood(cloudy, vec![1.0; 3]).is_err());
    }

    #[test]
    #[should_panic(expected = "calibrate")]
    fn reading_uncalibrated_panics() {
        let (net, [cloudy, ..]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let prop = Propagator::new(&tree, &net).unwrap();
        let _ = prop.marginal(cloudy);
    }

    #[test]
    fn mpe_matches_brute_force_on_sprinkler() {
        let (net, _vars) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.max_calibrate();
        let (assignment, p) = prop.most_probable_assignment();
        // Brute force over the joint.
        let joint = net.joint();
        let (best_idx, best_p) = joint.argmax();
        let best = joint.assignment_of(best_idx);
        assert_eq!(assignment, best);
        assert!((p - best_p).abs() < 1e-12);
    }

    #[test]
    fn mpe_respects_evidence() {
        let (net, [cloudy, sprinkler_v, rain, wet]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.set_evidence(wet, 1).unwrap();
        prop.max_calibrate();
        let (assignment, p) = prop.most_probable_assignment();
        assert_eq!(assignment[wet.index()], 1, "evidence honoured");
        // Brute force restricted to wet = 1.
        let mut joint = net.joint();
        joint.reduce(wet, 1);
        let (best_idx, best_p) = joint.argmax();
        let best = joint.assignment_of(best_idx);
        assert_eq!(assignment, best);
        assert!((p - best_p).abs() < 1e-12);
        let _ = (cloudy, sprinkler_v, rain);
    }

    #[test]
    fn mpe_over_disconnected_components() {
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.3, 0.7]))
            .unwrap();
        let b = net
            .add_var("b", 3, &[], Cpt::prior(vec![0.2, 0.5, 0.3]))
            .unwrap();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.max_calibrate();
        let (assignment, p) = prop.most_probable_assignment();
        assert_eq!(assignment[a.index()], 1);
        assert_eq!(assignment[b.index()], 1);
        assert!((p - 0.7 * 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "max_calibrate")]
    fn mpe_requires_max_calibration() {
        let (net, _) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.calibrate();
        let _ = prop.most_probable_assignment();
    }

    #[test]
    #[should_panic(expected = "sum-calibration")]
    fn sum_reads_rejected_after_max_calibration() {
        let (net, [cloudy, ..]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.max_calibrate();
        let _ = prop.marginal(cloudy);
    }

    #[test]
    fn recalibration_switches_modes_cleanly() {
        let (net, [cloudy, ..]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.calibrate();
        let before = prop.marginal(cloudy);
        prop.max_calibrate();
        let _ = prop.most_probable_assignment();
        prop.calibrate();
        let after = prop.marginal(cloudy);
        assert_close(&before, &after, 1e-12);
    }

    #[test]
    fn disconnected_components_calibrate_independently() {
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.3, 0.7]))
            .unwrap();
        let b = net
            .add_var("b", 2, &[], Cpt::prior(vec![0.9, 0.1]))
            .unwrap();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.set_evidence(a, 1).unwrap();
        prop.calibrate();
        assert_close(&prop.marginal(b), &[0.9, 0.1], 1e-12);
        assert!((prop.evidence_probability() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn impossible_evidence_reports_zero_probability() {
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![1.0, 0.0]))
            .unwrap();
        let b = net
            .add_var(
                "b",
                2,
                &[a],
                Cpt::rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]),
            )
            .unwrap();
        let tree = JunctionTree::compile(&net).unwrap();
        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.set_evidence(b, 1).unwrap();
        prop.calibrate();
        assert_eq!(prop.evidence_probability(), 0.0);
    }

    #[test]
    fn compiled_tree_matches_propagator() {
        let (net, [cloudy, _, rain, wet]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let compiled = CompiledTree::new(tree.clone(), &net).unwrap();
        let mut state = compiled.new_state();
        compiled.set_evidence(&mut state, wet, 1).unwrap();
        compiled.calibrate(&mut state);

        let mut prop = Propagator::new(&tree, &net).unwrap();
        prop.set_evidence(wet, 1).unwrap();
        prop.calibrate();

        assert_eq!(compiled.marginal(&state, rain), prop.marginal(rain));
        assert_eq!(compiled.marginal(&state, cloudy), prop.marginal(cloudy));
        assert_eq!(state.evidence_probability(), prop.evidence_probability());
    }

    #[test]
    fn reused_state_is_bit_identical_to_fresh_state() {
        let (net, [cloudy, _, rain, wet]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let compiled = CompiledTree::new(tree, &net).unwrap();
        // First request leaves the state dirty (calibrated, with evidence).
        let mut reused = compiled.new_state();
        compiled.set_evidence(&mut reused, wet, 0).unwrap();
        compiled.calibrate(&mut reused);
        let _ = compiled.marginal(&reused, cloudy);
        // Second request on the same state vs a brand-new state.
        reused.clear_evidence();
        compiled
            .set_likelihood(&mut reused, rain, vec![0.3, 0.7])
            .unwrap();
        compiled.calibrate(&mut reused);
        let mut fresh = compiled.new_state();
        compiled
            .set_likelihood(&mut fresh, rain, vec![0.3, 0.7])
            .unwrap();
        compiled.calibrate(&mut fresh);
        assert_eq!(
            compiled.marginal(&reused, cloudy),
            compiled.marginal(&fresh, cloudy)
        );
        assert_eq!(
            compiled.marginal(&reused, wet),
            compiled.marginal(&fresh, wet)
        );
        assert_eq!(reused.evidence_probability(), fresh.evidence_probability());
    }

    #[test]
    fn compiled_tree_propagates_concurrently() {
        // One compile shared by threads, each with its own state and its
        // own evidence; results must match sequential propagation.
        let (net, [_, _, rain, wet]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let compiled = CompiledTree::new(tree, &net).unwrap();
        let sequential: Vec<Vec<f64>> = (0..2)
            .map(|obs| {
                let mut state = compiled.new_state();
                compiled.set_evidence(&mut state, wet, obs).unwrap();
                compiled.calibrate(&mut state);
                compiled.marginal(&state, rain)
            })
            .collect();
        let concurrent: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|obs| {
                    let compiled = &compiled;
                    scope.spawn(move || {
                        let mut state = compiled.new_state();
                        compiled.set_evidence(&mut state, wet, obs).unwrap();
                        compiled.calibrate(&mut state);
                        compiled.marginal(&state, rain)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(sequential, concurrent);
    }

    #[test]
    fn state_space_counts_clique_entries() {
        let (net, _) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let compiled = CompiledTree::new(tree, &net).unwrap();
        let expected: usize = compiled.initial_potentials().iter().map(Factor::len).sum();
        assert_eq!(compiled.state_space(), expected);
        assert!(compiled.state_space() > 0);
    }

    /// A net dominated by deterministic CPTs, LIDAG-style: two priors and
    /// a chain of AND/XOR truth-table nodes.
    fn deterministic_net() -> (BayesNet, [VarId; 4]) {
        let and_rows = Cpt::rows(vec![
            vec![1.0, 0.0],
            vec![1.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        ]);
        let xor_rows = Cpt::rows(vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ]);
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.6, 0.4]))
            .unwrap();
        let b = net
            .add_var("b", 2, &[], Cpt::prior(vec![0.3, 0.7]))
            .unwrap();
        let c = net.add_var("c", 2, &[a, b], and_rows).unwrap();
        let d = net.add_var("d", 2, &[a, c], xor_rows).unwrap();
        (net, [a, b, c, d])
    }

    #[test]
    fn sparse_modes_are_bit_identical() {
        for (net, vars) in [sprinkler(), deterministic_net()] {
            let tree = JunctionTree::compile(&net).unwrap();
            let pots = initial_potentials(&tree, &net);
            let compile = |mode| CompiledTree::from_parts_with(tree.clone(), pots.clone(), mode);
            let off = compile(SparseMode::Off);
            assert_eq!(off.compressed_cliques(), 0);
            for mode in [SparseMode::Auto, SparseMode::On] {
                let on = compile(mode);
                assert_eq!(on.nnz(), off.nnz(), "nnz is a property of the potentials");
                // Sum propagation with soft evidence.
                let mut s_off = off.new_state();
                let mut s_on = on.new_state();
                for s in [&mut s_off, &mut s_on] {
                    s.clear_evidence();
                }
                off.set_evidence(&mut s_off, vars[3], 1).unwrap();
                on.set_evidence(&mut s_on, vars[3], 1).unwrap();
                off.set_likelihood(&mut s_off, vars[1], vec![0.2, 0.8])
                    .unwrap();
                on.set_likelihood(&mut s_on, vars[1], vec![0.2, 0.8])
                    .unwrap();
                off.calibrate(&mut s_off);
                on.calibrate(&mut s_on);
                for &var in &vars {
                    assert_eq!(off.marginal(&s_off, var), on.marginal(&s_on, var));
                }
                assert_eq!(s_off.evidence_probability(), s_on.evidence_probability());
                // Max propagation.
                s_off.clear_evidence();
                s_on.clear_evidence();
                off.max_calibrate(&mut s_off);
                on.max_calibrate(&mut s_on);
                assert_eq!(
                    off.most_probable_assignment(&s_off),
                    on.most_probable_assignment(&s_on)
                );
            }
        }
    }

    #[test]
    fn cached_calibration_is_bit_identical_and_reuses_clean_messages() {
        let (net, [cloudy, _, rain, wet]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let compiled = CompiledTree::new(tree, &net).unwrap();
        let cache = compiled.new_message_cache();

        // Cold pass populates the cache without reading it.
        let mut warm = compiled.new_state();
        assert_eq!(warm.mode(), PropagationMode::Cold);
        compiled
            .set_likelihood(&mut warm, rain, vec![0.3, 0.7])
            .unwrap();
        let (reused, recomputed) = compiled.calibrate_with_cache(&mut warm, &cache);
        assert_eq!(reused, 0);
        assert_eq!(recomputed, compiled.message_schedule().len() as u64);

        // Identical evidence, warm mode: every collect message reused, and
        // every read is bit-identical to an uncached calibration.
        warm.set_mode(PropagationMode::Warm);
        warm.clear_evidence();
        compiled
            .set_likelihood(&mut warm, rain, vec![0.3, 0.7])
            .unwrap();
        let (reused, recomputed) = compiled.calibrate_with_cache(&mut warm, &cache);
        assert_eq!(reused, compiled.message_schedule().len() as u64);
        assert_eq!(recomputed, 0);
        let mut cold = compiled.new_state();
        compiled
            .set_likelihood(&mut cold, rain, vec![0.3, 0.7])
            .unwrap();
        compiled.calibrate(&mut cold);
        for var in [cloudy, rain, wet] {
            let a = compiled.marginal(&warm, var);
            let b = compiled.marginal(&cold, var);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(
            warm.evidence_probability().to_bits(),
            cold.evidence_probability().to_bits()
        );

        // Perturbed evidence in *both* cliques (cloudy and wet never share
        // one): whichever clique is the collect child is now dirty, so at
        // least one message recomputes; results stay bit-identical to cold.
        warm.clear_evidence();
        compiled
            .set_likelihood(&mut warm, cloudy, vec![0.4, 0.6])
            .unwrap();
        compiled
            .set_likelihood(&mut warm, wet, vec![0.9, 0.1])
            .unwrap();
        let (_, recomputed) = compiled.calibrate_with_cache(&mut warm, &cache);
        assert!(recomputed > 0, "dirty subtree must recompute");
        let mut cold2 = compiled.new_state();
        compiled
            .set_likelihood(&mut cold2, cloudy, vec![0.4, 0.6])
            .unwrap();
        compiled
            .set_likelihood(&mut cold2, wet, vec![0.9, 0.1])
            .unwrap();
        compiled.calibrate(&mut cold2);
        for var in [cloudy, rain, wet] {
            assert_eq!(
                compiled.marginal(&warm, var),
                compiled.marginal(&cold2, var)
            );
        }
    }

    #[test]
    fn cached_calibration_distinguishes_evidence_kinds() {
        // Hard evidence wet=1 and likelihood [0,1] on wet give the same
        // posterior but must not share cache keys with *different*
        // evidence; and a state carrying no evidence must not reuse
        // messages computed under evidence.
        let (net, [cloudy, .., wet]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let compiled = CompiledTree::new(tree, &net).unwrap();
        let cache = compiled.new_message_cache();

        let mut state = compiled.new_state();
        state.set_mode(PropagationMode::Warm);
        compiled.set_evidence(&mut state, wet, 1).unwrap();
        compiled.calibrate_with_cache(&mut state, &cache);
        let with_evidence = compiled.marginal(&state, cloudy);

        state.clear_evidence();
        let (reused, _) = compiled.calibrate_with_cache(&mut state, &cache);
        assert_eq!(reused, 0, "no-evidence run must miss evidence-keyed slots");
        let without = compiled.marginal(&state, cloudy);
        assert_ne!(with_evidence, without);

        let mut cold = compiled.new_state();
        compiled.calibrate(&mut cold);
        assert_eq!(without, compiled.marginal(&cold, cloudy));
    }

    #[test]
    fn dependency_mask_covers_every_variable_once() {
        let (net, _) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let compiled = CompiledTree::new(tree, &net).unwrap();
        let mut seen = vec![0usize; compiled.tree().num_vars()];
        for c in 0..compiled.tree().num_cliques() {
            for &var in compiled.clique_dependencies(c) {
                assert_eq!(compiled.tree().home_clique(var), c);
                seen[var.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "each var has one home");
    }

    #[test]
    fn message_cache_is_safe_under_concurrent_mixed_scenarios() {
        // Two threads sweep different likelihoods through one shared
        // cache; every result must equal its cold reference bit-for-bit
        // even while the slots churn.
        let (net, [_, _, rain, wet]) = sprinkler();
        let tree = JunctionTree::compile(&net).unwrap();
        let compiled = CompiledTree::new(tree, &net).unwrap();
        let cache = compiled.new_message_cache();
        std::thread::scope(|scope| {
            for t in 0..2 {
                let compiled = &compiled;
                let cache = &cache;
                scope.spawn(move || {
                    let mut state = compiled.new_state();
                    state.set_mode(PropagationMode::Warm);
                    for k in 0..8 {
                        let p = 0.1 + 0.1 * (t as f64) + 0.05 * (k as f64);
                        state.clear_evidence();
                        compiled
                            .set_likelihood(&mut state, rain, vec![p, 1.0 - p])
                            .unwrap();
                        compiled.calibrate_with_cache(&mut state, cache);
                        let got = compiled.marginal(&state, wet);
                        let mut cold = compiled.new_state();
                        compiled
                            .set_likelihood(&mut cold, rain, vec![p, 1.0 - p])
                            .unwrap();
                        compiled.calibrate(&mut cold);
                        assert_eq!(got, compiled.marginal(&cold, wet));
                    }
                });
            }
        });
    }

    #[test]
    fn auto_mode_uses_the_per_clique_cost_model() {
        // Binary truth tables zero out exactly half of a clique's states.
        // That is *not* enough for the sparse kernels — three indexed loads
        // per surviving entry — to beat the dense sequential sweep, so auto
        // must keep these cliques dense. (This is the c880 regression: the
        // old global ≥50% rule compressed half-zero cliques and lost.)
        let (net, _) = deterministic_net();
        let tree = JunctionTree::compile(&net).unwrap();
        let compiled = CompiledTree::new(tree, &net).unwrap();
        assert_eq!(compiled.sparse_mode(), SparseMode::Auto);
        assert!(
            compiled.zero_fraction() >= 0.5,
            "truth-table CPTs must zero out most of the state space, got {}",
            compiled.zero_fraction()
        );
        assert_eq!(
            compiled.compressed_cliques(),
            0,
            "half-zero cliques lose on the sparse path and must stay dense"
        );
        assert!(compiled.nnz() < compiled.state_space());
        // Auto's kernel cost never exceeds the all-dense cost by
        // construction: it only compresses cliques where sparse wins.
        let dense = CompiledTree::from_parts_with(
            JunctionTree::compile(&net).unwrap(),
            initial_potentials(&JunctionTree::compile(&net).unwrap(), &net),
            SparseMode::Off,
        );
        assert!(compiled.kernel_cost() <= dense.kernel_cost());
    }

    #[test]
    fn auto_mode_compresses_past_the_break_even_point() {
        // A one-hot CPT for an 8-valued child of two binary inputs leaves
        // 4 of 32 clique states alive (zero fraction 0.875 > 4/5), so the
        // per-clique cost model picks the sparse path for it.
        let one_hot = |i: usize| {
            let mut row = vec![0.0; 8];
            row[i] = 1.0;
            row
        };
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.6, 0.4]))
            .unwrap();
        let b = net
            .add_var("b", 2, &[], Cpt::prior(vec![0.3, 0.7]))
            .unwrap();
        net.add_var(
            "pair",
            8,
            &[a, b],
            Cpt::rows(vec![one_hot(0), one_hot(1), one_hot(2), one_hot(3)]),
        )
        .unwrap();
        let tree = JunctionTree::compile(&net).unwrap();
        let compiled = CompiledTree::new(tree, &net).unwrap();
        assert_eq!(compiled.sparse_mode(), SparseMode::Auto);
        assert!(
            compiled.compressed_cliques() > 0,
            "an 87.5%-zero clique clears the 5·nnz < len break-even point"
        );
        let dense = CompiledTree::from_parts_with(
            JunctionTree::compile(&net).unwrap(),
            initial_potentials(&JunctionTree::compile(&net).unwrap(), &net),
            SparseMode::Off,
        );
        assert!(compiled.kernel_cost() < dense.kernel_cost());
    }
}
