use crate::graph::moral_graph;
use crate::triangulate::{
    triangulate, triangulate_ordered, triangulate_with_preference, Heuristic, Triangulation,
};
use crate::{BayesError, BayesNet, VarId};

/// A compiled junction tree (actually a forest when the moral graph is
/// disconnected): maximal cliques of the triangulated moral graph connected
/// by maximal-weight sepsets, plus the CPT-to-clique assignment.
///
/// Compilation is the expensive, one-off half of inference; evidence
/// propagation over the compiled structure (see
/// [`Propagator`](crate::Propagator)) is cheap and repeatable — the property
/// the paper exploits to re-estimate under new input statistics without
/// recompiling (§6).
///
/// # Example
///
/// ```
/// use swact_bayesnet::{BayesNet, Cpt, JunctionTree};
///
/// # fn main() -> Result<(), swact_bayesnet::BayesError> {
/// let mut net = BayesNet::new();
/// let a = net.add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))?;
/// let b = net.add_var("b", 2, &[a], Cpt::rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]))?;
/// let _c = net.add_var("c", 2, &[b], Cpt::rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]))?;
/// let tree = JunctionTree::compile(&net)?;
/// // A chain moralizes/triangulates to two cliques: {a,b} and {b,c}.
/// assert_eq!(tree.num_cliques(), 2);
/// assert!(tree.satisfies_running_intersection());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct JunctionTree {
    /// Maximal cliques, each a sorted list of variables.
    cliques: Vec<Vec<VarId>>,
    /// Tree edges between cliques, with their sepset (sorted intersection).
    edges: Vec<TreeEdge>,
    /// Per clique: incident edge indices.
    incident: Vec<Vec<usize>>,
    /// One root clique per connected component.
    roots: Vec<usize>,
    /// Per variable: the smallest clique containing it (marginal queries).
    home_clique: Vec<usize>,
    /// Per variable of the source net: the clique its CPT is assigned to.
    cpt_clique: Vec<usize>,
    /// Cardinality per variable.
    cards: Vec<usize>,
    /// Statistics from triangulation.
    fill_edges: usize,
    total_states: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct TreeEdge {
    pub(crate) a: usize,
    pub(crate) b: usize,
    pub(crate) sepset: Vec<VarId>,
}

impl JunctionTree {
    /// Compiles a network with the default ([`Heuristic::MinFill`])
    /// triangulation.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::Empty`] for an empty network.
    pub fn compile(net: &BayesNet) -> Result<JunctionTree, BayesError> {
        JunctionTree::compile_with(net, Heuristic::MinFill)
    }

    /// Compiles a network with an explicit triangulation heuristic.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::Empty`] for an empty network.
    pub fn compile_with(net: &BayesNet, heuristic: Heuristic) -> Result<JunctionTree, BayesError> {
        if net.num_vars() == 0 {
            return Err(BayesError::Empty);
        }
        let cards = net.cards();
        let moral = moral_graph(net);
        let tri: Triangulation = triangulate(&moral, &cards, heuristic);
        JunctionTree::from_triangulation(net, cards, tri)
    }

    /// Compiles a network by eliminating moral-graph nodes in the *given*
    /// order instead of a greedy heuristic — the entry point for
    /// search-based orderings such as [`force_order`](crate::force_order).
    /// The resulting tree is exact regardless of the order; only its size
    /// (clique state space) varies.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::Empty`] for an empty network.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the variable indices.
    pub fn compile_ordered(net: &BayesNet, order: &[usize]) -> Result<JunctionTree, BayesError> {
        if net.num_vars() == 0 {
            return Err(BayesError::Empty);
        }
        let cards = net.cards();
        let moral = moral_graph(net);
        let tri = triangulate_ordered(&moral, &cards, order);
        JunctionTree::from_triangulation(net, cards, tri)
    }

    /// Compiles a network with the greedy `heuristic`, breaking its
    /// selection ties by smaller `preference[var]` — the entry point for
    /// layout-guided orderings (pass FORCE positions from
    /// [`force_order`](crate::force_order) to steer tied eliminations
    /// toward layout-local cliques).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::Empty`] for an empty network.
    ///
    /// # Panics
    ///
    /// Panics if `preference.len() != net.num_vars()`.
    pub fn compile_with_preference(
        net: &BayesNet,
        heuristic: Heuristic,
        preference: &[usize],
    ) -> Result<JunctionTree, BayesError> {
        if net.num_vars() == 0 {
            return Err(BayesError::Empty);
        }
        let cards = net.cards();
        let moral = moral_graph(net);
        let tri = triangulate_with_preference(&moral, &cards, heuristic, preference);
        JunctionTree::from_triangulation(net, cards, tri)
    }

    /// Builds the clique tree from a finished triangulation — the shared
    /// tail of [`compile_with`](JunctionTree::compile_with) and
    /// [`compile_ordered`](JunctionTree::compile_ordered).
    fn from_triangulation(
        net: &BayesNet,
        cards: Vec<usize>,
        tri: Triangulation,
    ) -> Result<JunctionTree, BayesError> {
        let cliques: Vec<Vec<VarId>> = tri
            .cliques
            .iter()
            .map(|c| c.iter().map(|&i| VarId::from_index(i)).collect())
            .collect();

        // Candidate edges between cliques with nonempty intersection; pick a
        // maximal-weight spanning forest (weight = |sepset|, tiebreak towards
        // smaller sepset state space — both standard for junction trees).
        let mut candidates: Vec<(usize, f64, usize, usize, Vec<VarId>)> = Vec::new();
        for i in 0..cliques.len() {
            for j in i + 1..cliques.len() {
                let sepset = sorted_intersection(&cliques[i], &cliques[j]);
                if !sepset.is_empty() {
                    let states: f64 = sepset.iter().map(|v| cards[v.index()] as f64).product();
                    candidates.push((sepset.len(), states, i, j, sepset));
                }
            }
        }
        candidates.sort_by(|x, y| {
            // total_cmp: state counts are products of positive cardinalities
            // and so never NaN, but a total order costs nothing and removes
            // the panic path entirely.
            y.0.cmp(&x.0)
                .then(x.1.total_cmp(&y.1))
                .then(x.2.cmp(&y.2))
                .then(x.3.cmp(&y.3))
        });
        let mut parent_of: Vec<usize> = (0..cliques.len()).collect();
        fn find(parent_of: &mut [usize], mut x: usize) -> usize {
            while parent_of[x] != x {
                parent_of[x] = parent_of[parent_of[x]];
                x = parent_of[x];
            }
            x
        }
        let mut edges = Vec::new();
        let mut incident = vec![Vec::new(); cliques.len()];
        for (_, _, i, j, sepset) in candidates {
            let (ri, rj) = (find(&mut parent_of, i), find(&mut parent_of, j));
            if ri != rj {
                parent_of[ri] = rj;
                let edge_idx = edges.len();
                incident[i].push(edge_idx);
                incident[j].push(edge_idx);
                edges.push(TreeEdge { a: i, b: j, sepset });
            }
        }
        // Component roots.
        let mut roots = Vec::new();
        let mut seen_root = std::collections::HashSet::new();
        for i in 0..cliques.len() {
            let r = find(&mut parent_of, i);
            if seen_root.insert(r) {
                roots.push(i);
            }
        }

        // Home clique per variable: smallest containing clique.
        let mut home_clique = vec![usize::MAX; net.num_vars()];
        for (ci, clique) in cliques.iter().enumerate() {
            let size: f64 = clique.iter().map(|v| cards[v.index()] as f64).product();
            for &v in clique {
                let cur = home_clique[v.index()];
                if cur == usize::MAX {
                    home_clique[v.index()] = ci;
                } else {
                    let cur_size: f64 = cliques[cur]
                        .iter()
                        .map(|v| cards[v.index()] as f64)
                        .product();
                    if size < cur_size {
                        home_clique[v.index()] = ci;
                    }
                }
            }
        }

        // CPT assignment: each variable's family {v} ∪ parents is a clique
        // in the moral graph, hence contained in some maximal clique.
        let mut cpt_clique = vec![usize::MAX; net.num_vars()];
        for var in net.var_ids() {
            let mut family: Vec<VarId> = net.parents(var).to_vec();
            family.push(var);
            family.sort_unstable();
            family.dedup();
            let ci = cliques
                .iter()
                .position(|c| family.iter().all(|v| c.binary_search(v).is_ok()))
                .expect("every family is contained in a maximal clique");
            cpt_clique[var.index()] = ci;
        }

        Ok(JunctionTree {
            cliques,
            edges,
            incident,
            roots,
            home_clique,
            cpt_clique,
            cards,
            fill_edges: tri.fill_edges,
            total_states: tri.total_states,
        })
    }

    /// Number of variables in the compiled network.
    pub fn num_vars(&self) -> usize {
        self.cards.len()
    }

    /// Number of cliques.
    pub fn num_cliques(&self) -> usize {
        self.cliques.len()
    }

    /// The variables of clique `i`, sorted.
    pub fn clique(&self, i: usize) -> &[VarId] {
        &self.cliques[i]
    }

    /// All cliques.
    pub fn cliques(&self) -> &[Vec<VarId>] {
        &self.cliques
    }

    /// Sepsets as `(clique_a, clique_b, vars)` triples.
    pub fn sepsets(&self) -> Vec<(usize, usize, &[VarId])> {
        self.edges
            .iter()
            .map(|e| (e.a, e.b, e.sepset.as_slice()))
            .collect()
    }

    /// Number of tree edges (= cliques − components).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// One root clique per connected component.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// The smallest clique containing `var`.
    pub fn home_clique(&self, var: VarId) -> usize {
        self.home_clique[var.index()]
    }

    /// The clique each variable's CPT was multiplied into.
    pub fn cpt_clique(&self, var: VarId) -> usize {
        self.cpt_clique[var.index()]
    }

    /// Cardinality of a variable.
    pub fn card(&self, var: VarId) -> usize {
        self.cards[var.index()]
    }

    /// Number of fill edges the triangulation added.
    pub fn fill_edges(&self) -> usize {
        self.fill_edges
    }

    /// Total state space: Σ over cliques of the product of member
    /// cardinalities. The dominant cost of propagation.
    pub fn total_states(&self) -> f64 {
        self.total_states
    }

    /// Size (in states) of the largest clique.
    pub fn max_clique_states(&self) -> f64 {
        self.cliques
            .iter()
            .map(|c| {
                c.iter()
                    .map(|v| self.cards[v.index()] as f64)
                    .product::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Size (in states) of the largest sepset — the scratch-buffer bound
    /// of one propagation message.
    pub fn max_sepset_states(&self) -> usize {
        self.edges
            .iter()
            .map(|e| {
                e.sepset
                    .iter()
                    .map(|v| self.cards[v.index()])
                    .product::<usize>()
            })
            .max()
            .unwrap_or(0)
    }

    pub(crate) fn edge(&self, idx: usize) -> &TreeEdge {
        &self.edges[idx]
    }

    pub(crate) fn incident_edges(&self, clique: usize) -> &[usize] {
        &self.incident[clique]
    }

    /// Every field of the compiled tree, for the [`crate::codec`] encoder.
    #[allow(clippy::type_complexity)]
    pub(crate) fn codec_parts(
        &self,
    ) -> (
        &[Vec<VarId>],
        &[TreeEdge],
        &[Vec<usize>],
        &[usize],
        &[usize],
        &[usize],
        &[usize],
        usize,
        f64,
    ) {
        (
            &self.cliques,
            &self.edges,
            &self.incident,
            &self.roots,
            &self.home_clique,
            &self.cpt_clique,
            &self.cards,
            self.fill_edges,
            self.total_states,
        )
    }

    /// Rebuilds a tree from decoded fields without re-running compilation.
    /// The [`crate::codec`] decoder is the only caller; it verifies a
    /// payload checksum before trusting the fields, so no structural
    /// re-validation happens here.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_codec_parts(
        cliques: Vec<Vec<VarId>>,
        edges: Vec<TreeEdge>,
        incident: Vec<Vec<usize>>,
        roots: Vec<usize>,
        home_clique: Vec<usize>,
        cpt_clique: Vec<usize>,
        cards: Vec<usize>,
        fill_edges: usize,
        total_states: f64,
    ) -> JunctionTree {
        JunctionTree {
            cliques,
            edges,
            incident,
            roots,
            home_clique,
            cpt_clique,
            cards,
            fill_edges,
            total_states,
        }
    }

    /// The unique path between two cliques as a list of `(edge index,
    /// clique reached)` steps, or `None` when the cliques are in different
    /// components. An empty path means `from == to`.
    pub fn clique_path(&self, from: usize, to: usize) -> Option<Vec<(usize, usize)>> {
        if from == to {
            return Some(Vec::new());
        }
        // BFS recording the (edge, parent) that discovered each clique.
        let mut discovered = vec![usize::MAX; self.cliques.len()];
        let mut via_edge = vec![usize::MAX; self.cliques.len()];
        let mut queue = std::collections::VecDeque::new();
        discovered[from] = from;
        queue.push_back(from);
        while let Some(c) = queue.pop_front() {
            if c == to {
                break;
            }
            for &e in &self.incident[c] {
                let edge = &self.edges[e];
                let other = if edge.a == c { edge.b } else { edge.a };
                if discovered[other] == usize::MAX {
                    discovered[other] = c;
                    via_edge[other] = e;
                    queue.push_back(other);
                }
            }
        }
        if discovered[to] == usize::MAX {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            path.push((via_edge[cur], cur));
            cur = discovered[cur];
        }
        path.reverse();
        Some(path)
    }

    /// The number of tree edges between two cliques, or `None` across
    /// components. Used as a cheap structural proxy for how related two
    /// variables are.
    pub fn clique_distance(&self, from: usize, to: usize) -> Option<usize> {
        self.clique_path(from, to).map(|p| p.len())
    }

    /// Checks the running-intersection property: for every variable, the
    /// cliques containing it induce a connected subtree. Quadratic; used in
    /// tests and debug assertions.
    pub fn satisfies_running_intersection(&self) -> bool {
        let num_vars = self.cards.len();
        for raw in 0..num_vars {
            let var = VarId::from_index(raw);
            let holders: Vec<usize> = (0..self.cliques.len())
                .filter(|&c| self.cliques[c].binary_search(&var).is_ok())
                .collect();
            if holders.len() <= 1 {
                continue;
            }
            // BFS from holders[0] using only edges whose sepset contains var.
            let mut seen = std::collections::HashSet::new();
            let mut stack = vec![holders[0]];
            seen.insert(holders[0]);
            while let Some(c) = stack.pop() {
                for &e in &self.incident[c] {
                    let edge = &self.edges[e];
                    if edge.sepset.binary_search(&var).is_err() {
                        continue;
                    }
                    let other = if edge.a == c { edge.b } else { edge.a };
                    if seen.insert(other) {
                        stack.push(other);
                    }
                }
            }
            if !holders.iter().all(|h| seen.contains(h)) {
                return false;
            }
        }
        true
    }

    /// Renders the junction tree as a Graphviz `graph` (cliques as ellipses
    /// labelled with variable names from `names`, sepsets as edge labels) —
    /// reproducing Figure 4 of the paper for the example circuit.
    pub fn to_dot(&self, names: &dyn Fn(VarId) -> String) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "graph junction_tree {{");
        for (i, clique) in self.cliques.iter().enumerate() {
            let label: Vec<String> = clique.iter().map(|&v| names(v)).collect();
            let _ = writeln!(out, "  c{i} [label=\"C{i}: {{{}}}\"];", label.join(","));
        }
        for e in &self.edges {
            let label: Vec<String> = e.sepset.iter().map(|&v| names(v)).collect();
            let _ = writeln!(
                out,
                "  c{} -- c{} [label=\"{}\"];",
                e.a,
                e.b,
                label.join(",")
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

fn sorted_intersection(a: &[VarId], b: &[VarId]) -> Vec<VarId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{Cpt, Heuristic};

    fn chain(n: usize) -> BayesNet {
        let mut net = BayesNet::new();
        let mut prev = None;
        for i in 0..n {
            let cpt = match prev {
                None => Cpt::prior(vec![0.5, 0.5]),
                Some(_) => Cpt::rows(vec![vec![0.9, 0.1], vec![0.1, 0.9]]),
            };
            let parents: Vec<VarId> = prev.into_iter().collect();
            prev = Some(net.add_var(format!("x{i}"), 2, &parents, cpt).unwrap());
        }
        net
    }

    #[test]
    fn chain_tree_shape() {
        let net = chain(5);
        let tree = JunctionTree::compile(&net).unwrap();
        assert_eq!(tree.num_cliques(), 4);
        assert_eq!(tree.num_edges(), 3);
        assert_eq!(tree.roots().len(), 1);
        assert!(tree.satisfies_running_intersection());
        assert_eq!(tree.total_states(), 16.0);
    }

    #[test]
    fn collider_clique_contains_family() {
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let b = net
            .add_var("b", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let c = net
            .add_var("c", 2, &[a, b], Cpt::rows(vec![vec![1.0, 0.0]; 4]))
            .unwrap();
        let tree = JunctionTree::compile(&net).unwrap();
        assert_eq!(tree.num_cliques(), 1);
        assert_eq!(tree.clique(0), &[a, b, c]);
        assert_eq!(tree.cpt_clique(c), 0);
    }

    #[test]
    fn disconnected_networks_form_forest() {
        let mut net = BayesNet::new();
        let _a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let _b = net
            .add_var("b", 3, &[], Cpt::prior(vec![0.2, 0.3, 0.5]))
            .unwrap();
        let tree = JunctionTree::compile(&net).unwrap();
        assert_eq!(tree.num_cliques(), 2);
        assert_eq!(tree.num_edges(), 0);
        assert_eq!(tree.roots().len(), 2);
        assert!(tree.satisfies_running_intersection());
    }

    #[test]
    fn empty_network_rejected() {
        let net = BayesNet::new();
        assert!(matches!(
            JunctionTree::compile(&net),
            Err(BayesError::Empty)
        ));
    }

    #[test]
    fn heuristics_both_produce_valid_trees() {
        // Diamond: a → b, a → c, (b,c) → d.
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let b = net
            .add_var(
                "b",
                2,
                &[a],
                Cpt::rows(vec![vec![0.7, 0.3], vec![0.3, 0.7]]),
            )
            .unwrap();
        let c = net
            .add_var(
                "c",
                2,
                &[a],
                Cpt::rows(vec![vec![0.6, 0.4], vec![0.4, 0.6]]),
            )
            .unwrap();
        let _d = net
            .add_var("d", 2, &[b, c], Cpt::rows(vec![vec![1.0, 0.0]; 4]))
            .unwrap();
        for h in [Heuristic::MinFill, Heuristic::MinDegree] {
            let tree = JunctionTree::compile_with(&net, h).unwrap();
            assert!(tree.satisfies_running_intersection(), "{h:?}");
            // The diamond's moral graph is a 4-cycle: 2 cliques of size 3.
            assert_eq!(tree.num_cliques(), 2, "{h:?}");
            assert_eq!(tree.max_clique_states(), 8.0);
        }
    }

    #[test]
    fn home_clique_contains_var() {
        let net = chain(6);
        let tree = JunctionTree::compile(&net).unwrap();
        for var in net.var_ids() {
            let home = tree.home_clique(var);
            assert!(tree.clique(home).contains(&var));
        }
    }

    #[test]
    fn dot_rendering_mentions_every_clique() {
        let net = chain(4);
        let tree = JunctionTree::compile(&net).unwrap();
        let dot = tree.to_dot(&|v| format!("x{}", v.index()));
        assert!(dot.starts_with("graph"));
        assert_eq!(dot.matches("label=\"C").count(), tree.num_cliques());
        assert_eq!(dot.matches(" -- ").count(), tree.num_edges());
    }
}
