//! Determinism-aware sparse kernels for HUGIN propagation.
//!
//! Gate CPTs in the paper's LIDAG construction are *deterministic* (truth
//! tables, Def. 8), so the clique potentials they multiply into are
//! dominated by exact structural zeros — typically 75% of entries for
//! four-state transition variables. Those zeros are fixed at compile time:
//! every later operation on a working potential (evidence reduction,
//! likelihood scaling, sepset-update multiplication) is multiplicative, so
//! the nonzero *support* of a working potential is always a subset of the
//! initial potential's support.
//!
//! This module exploits that in two ways, both precomputed once per
//! [`CompiledTree`](crate::CompiledTree) and reused across every
//! propagation:
//!
//! 1. **Projection tables**: for each (clique, sepset) edge pair, a flat
//!    `Vec<u32>` mapping clique table entries to sepset entries, replacing
//!    the per-call scope-merge and odometer walks of the generic
//!    [`Factor`](crate::Factor) kernels with branch-free gather/scatter
//!    loops.
//! 2. **Zero compression** (HUGIN's classic optimization, Jensen &
//!    Andersen 1990): cliques whose zero fraction crosses a threshold
//!    iterate only their support index list, skipping structural zeros in
//!    both the marginalize (scatter-add) and multiply (gather) directions.
//!
//! Skipping a structural zero never changes a sum-propagation result *at
//! all*: potentials are non-negative, `x + 0.0 == x` exactly in IEEE 754,
//! and the iteration order over the surviving entries (ascending linear
//! index) is unchanged — so the sparse path is bit-identical to the dense
//! path, not merely close. Max-propagation relies on non-negativity the
//! same way (an all-zero group maxes to `0.0` on both paths).

use crate::junction::JunctionTree;
use crate::{Factor, VarId};

/// Zero-compression policy for compiled junction trees.
///
/// `Auto` (the default) decides per clique on a measured cost model:
/// iterating a support list costs [`SPARSE_COST_PER_ENTRY`] indexed loads
/// per surviving entry where the dense loops cost one sequential
/// (prefetch-friendly) load per table entry, so a clique is compressed
/// only when `SPARSE_COST_PER_ENTRY · nnz < len` — more than two thirds
/// of its entries must be zero before skipping them wins. `On` forces
/// compression of every clique with at least one zero; `Off` keeps the
/// flat dense loops everywhere (the two paths are equivalence-tested, so
/// `Off` is a debugging aid and regression baseline, not a different
/// answer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SparseMode {
    /// Compress each clique only when its nonzero count is low enough
    /// that support iteration beats the dense loop under the
    /// [`SPARSE_COST_PER_ENTRY`] cost model.
    #[default]
    Auto,
    /// Compress every clique that contains a structural zero.
    On,
    /// Dense kernels everywhere.
    Off,
}

impl SparseMode {
    /// All modes, for CLI help and error messages.
    pub const ALL: [SparseMode; 3] = [SparseMode::Auto, SparseMode::On, SparseMode::Off];
}

impl std::fmt::Display for SparseMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SparseMode::Auto => "auto",
            SparseMode::On => "on",
            SparseMode::Off => "off",
        })
    }
}

impl std::str::FromStr for SparseMode {
    type Err = String;

    fn from_str(s: &str) -> Result<SparseMode, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(SparseMode::Auto),
            "on" => Ok(SparseMode::On),
            "off" => Ok(SparseMode::Off),
            other => Err(format!(
                "unknown sparse mode `{other}` (expected auto, on, or off)"
            )),
        }
    }
}

/// Relative cost of one support-list entry versus one dense table entry.
///
/// The sparse kernels touch three indexed words per surviving entry (the
/// support index, the projection slot, and the value it gathers/scatters)
/// where the dense loops stream one sequential word per table entry behind
/// the hardware prefetcher. `SparseMode::Auto` compresses a clique only
/// when `SPARSE_COST_PER_ENTRY · nnz < len`, i.e. when more than two
/// thirds of the table is zero. The old rule (compress at ≥ 50% zeros)
/// made `Auto` *slower* than dense on c880, whose cliques sit right at the
/// half-zero break-even (BENCH_sparse.json, 0.934x); the 75%-zero
/// deterministic-gate cliques the optimization exists for still clear this
/// bar comfortably.
pub const SPARSE_COST_PER_ENTRY: usize = 3;

/// Projection tables of one junction-tree edge: entry-to-sepset index maps
/// for both endpoint cliques, aligned with the owning clique's support
/// list when that clique is compressed and with its full table otherwise.
#[derive(Debug, Clone)]
pub(crate) struct EdgeProj {
    pub(crate) a: Vec<u32>,
    pub(crate) b: Vec<u32>,
}

/// Everything the absorb kernels need, computed once at compile time.
#[derive(Debug, Clone)]
pub(crate) struct PropagationKernels {
    /// Per clique: ascending nonzero indices of the initial potential when
    /// zero-compressed, `None` for dense iteration.
    pub(crate) support: Vec<Option<Vec<u32>>>,
    /// Per edge: projection tables for both endpoint cliques.
    pub(crate) edge_proj: Vec<EdgeProj>,
    /// Total nonzero entries across all initial clique potentials.
    pub(crate) nnz: usize,
}

impl PropagationKernels {
    /// Builds supports and projection tables for `potentials` over `tree`.
    ///
    /// # Panics
    ///
    /// Panics if any clique potential exceeds `u32::MAX` entries (such a
    /// table could not be allocated anyway).
    pub(crate) fn build(
        tree: &JunctionTree,
        potentials: &[Factor],
        mode: SparseMode,
    ) -> PropagationKernels {
        let mut nnz = 0usize;
        let support: Vec<Option<Vec<u32>>> = potentials
            .iter()
            .map(|pot| {
                assert!(
                    u32::try_from(pot.len()).is_ok(),
                    "clique potential exceeds u32 index range"
                );
                let nonzero = support_of(pot.values());
                nnz += nonzero.len();
                if compress(mode, nonzero.len(), pot.len()) {
                    Some(nonzero)
                } else {
                    None
                }
            })
            .collect();
        let edge_proj = (0..tree.num_edges())
            .map(|e| {
                let edge = tree.edge(e);
                EdgeProj {
                    a: clique_to_sepset(
                        &potentials[edge.a],
                        &edge.sepset,
                        support[edge.a].as_deref(),
                    ),
                    b: clique_to_sepset(
                        &potentials[edge.b],
                        &edge.sepset,
                        support[edge.b].as_deref(),
                    ),
                }
            })
            .collect();
        PropagationKernels {
            support,
            edge_proj,
            nnz,
        }
    }

    /// Number of zero-compressed cliques.
    pub(crate) fn compressed_cliques(&self) -> usize {
        self.support.iter().filter(|s| s.is_some()).count()
    }
}

/// Ascending indices of the nonzero entries of a table.
fn support_of(values: &[f64]) -> Vec<u32> {
    values
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0.0)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Whether a clique with `nnz` of `len` nonzero entries gets compressed.
fn compress(mode: SparseMode, nnz: usize, len: usize) -> bool {
    match mode {
        SparseMode::Off => false,
        SparseMode::On => nnz < len,
        // Per-clique cost model: support iteration only wins when its
        // weighted entry count undercuts the dense sweep of the full table.
        SparseMode::Auto => SPARSE_COST_PER_ENTRY * nnz < len,
    }
}

/// The sepset linear index of every iterated clique entry: one slot per
/// support position when `support` is given, else per clique linear index.
///
/// The walk mirrors `Factor::marginalize_keep`'s odometer but runs once at
/// compile time instead of once per message.
fn clique_to_sepset(clique: &Factor, sepset: &[VarId], support: Option<&[u32]>) -> Vec<u32> {
    let vars = clique.vars();
    let cards = clique.cards();
    let mut target_strides = vec![0usize; vars.len()];
    {
        // Sepsets are sorted subsets of the clique scope; walk both in
        // lockstep assigning row-major strides (last sepset var fastest).
        let mut stride = 1usize;
        let mut j = sepset.len();
        for i in (0..vars.len()).rev() {
            if j > 0 && vars[i] == sepset[j - 1] {
                j -= 1;
                target_strides[i] = stride;
                stride *= cards[i];
            }
        }
        assert_eq!(j, 0, "sepset must be contained in the clique scope");
    }
    let mut full = Vec::with_capacity(clique.len());
    let mut digits = vec![0usize; vars.len()];
    let mut target = 0usize;
    for _ in 0..clique.len() {
        full.push(target as u32);
        for pos in (0..vars.len()).rev() {
            digits[pos] += 1;
            target += target_strides[pos];
            if digits[pos] < cards[pos] {
                break;
            }
            digits[pos] = 0;
            target -= target_strides[pos] * cards[pos];
        }
    }
    match support {
        Some(support) => support.iter().map(|&i| full[i as usize]).collect(),
        None => full,
    }
}

/// Marginalizes a clique table into `target` (a sepset-sized buffer)
/// through a precomputed projection: scatter-add for sum propagation,
/// scatter-max for max propagation. `target` is (re)initialized here.
///
/// With a support list only the listed entries are visited; the skipped
/// entries are exact zeros, which contribute nothing to a sum and nothing
/// above `0.0` to a max of non-negative values, so both variants match the
/// dense loops bit for bit.
pub(crate) fn marginalize_into(
    values: &[f64],
    support: Option<&[u32]>,
    proj: &[u32],
    target: &mut [f64],
    max_mode: bool,
) {
    match (support, max_mode) {
        (None, false) => {
            target.fill(0.0);
            for (i, &p) in proj.iter().enumerate() {
                target[p as usize] += values[i];
            }
        }
        (None, true) => {
            // Every sepset entry has at least one clique extension, so
            // every slot is written and the initial value never survives.
            target.fill(f64::NEG_INFINITY);
            for (i, &p) in proj.iter().enumerate() {
                let v = values[i];
                let t = &mut target[p as usize];
                if v > *t {
                    *t = v;
                }
            }
        }
        (Some(support), false) => {
            target.fill(0.0);
            for (k, &idx) in support.iter().enumerate() {
                target[proj[k] as usize] += values[idx as usize];
            }
        }
        (Some(support), true) => {
            // Skipped entries are zeros: groups with no surviving entry
            // max to 0.0, exactly what the dense loop produces.
            target.fill(0.0);
            for (k, &idx) in support.iter().enumerate() {
                let v = values[idx as usize];
                let t = &mut target[proj[k] as usize];
                if v > *t {
                    *t = v;
                }
            }
        }
    }
}

/// Multiplies a sepset-sized `update` into a clique table through a
/// precomputed projection (the second half of HUGIN absorption). With a
/// support list only nonzero entries are touched; the skipped entries are
/// zeros and stay zeros.
pub(crate) fn multiply_from(
    values: &mut [f64],
    support: Option<&[u32]>,
    proj: &[u32],
    update: &[f64],
) {
    match support {
        None => {
            for (i, v) in values.iter_mut().enumerate() {
                *v *= update[proj[i] as usize];
            }
        }
        Some(support) => {
            for (k, &idx) in support.iter().enumerate() {
                values[idx as usize] *= update[proj[k] as usize];
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn mode_parsing_round_trips() {
        for mode in SparseMode::ALL {
            assert_eq!(mode.to_string().parse::<SparseMode>(), Ok(mode));
        }
        assert_eq!("AUTO".parse::<SparseMode>(), Ok(SparseMode::Auto));
        assert!("sometimes".parse::<SparseMode>().is_err());
        assert_eq!(SparseMode::default(), SparseMode::Auto);
    }

    #[test]
    fn compress_thresholds() {
        assert!(!compress(SparseMode::Off, 0, 8));
        assert!(compress(SparseMode::On, 7, 8));
        assert!(!compress(SparseMode::On, 8, 8));
        // Auto follows the cost model: 3·nnz must undercut the table size.
        assert!(compress(SparseMode::Auto, 2, 8)); // 6 < 8: support wins
        assert!(!compress(SparseMode::Auto, 3, 8)); // 9 ≥ 8: dense wins
                                                    // Exactly half zero — the old rule compressed this and lost on
                                                    // c880; the cost model keeps it dense.
        assert!(!compress(SparseMode::Auto, 4, 8));
        // A 75%-zero deterministic-gate table still compresses.
        assert!(compress(SparseMode::Auto, 16, 64));
    }

    /// A factor over `n` four-state variables with the given zero pattern.
    fn pattern_factor(n: usize, values: Vec<f64>) -> Factor {
        Factor::new((0..n).map(|i| (v(i), 4)).collect(), values)
    }

    /// Reference path: dense `Factor` kernels.
    fn dense_absorb_halves(clique: &Factor, sepset: &[VarId], max_mode: bool) -> Factor {
        if max_mode {
            clique.max_marginalize_keep(sepset)
        } else {
            clique.marginalize_keep(sepset)
        }
    }

    /// Kernel path: projection + optional support, as used by `CompiledTree`.
    fn kernel_marginalize(clique: &Factor, sepset: &[VarId], max_mode: bool) -> Vec<f64> {
        let support = support_of(clique.values());
        let proj = clique_to_sepset(clique, sepset, Some(&support));
        let proj_dense = clique_to_sepset(clique, sepset, None);
        let sep_len: usize = sepset
            .iter()
            .map(|s| clique.cards()[clique.position(*s).unwrap()])
            .product();
        let mut sparse = vec![f64::NAN; sep_len];
        let mut dense = vec![f64::NAN; sep_len];
        marginalize_into(
            clique.values(),
            Some(&support),
            &proj,
            &mut sparse,
            max_mode,
        );
        marginalize_into(clique.values(), None, &proj_dense, &mut dense, max_mode);
        assert_eq!(sparse, dense, "sparse and dense kernels must agree");
        sparse
    }

    /// Strategy: 2–3 four-state variables, each entry zero with the given
    /// percent probability — `75` mimics a deterministic gate CPT's shape.
    fn arb_clique(zero_pct: u32) -> impl Strategy<Value = Factor> {
        (2usize..=3).prop_flat_map(move |n| {
            proptest::collection::vec((0u32..100, 0.01f64..1.0), 4usize.pow(n as u32)).prop_map(
                move |cells| {
                    let values = cells
                        .into_iter()
                        .map(|(r, v)| if r < zero_pct { 0.0 } else { v })
                        .collect();
                    pattern_factor(n, values)
                },
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn sparse_marginalize_matches_dense(clique in arb_clique(75)) {
            // Keep a strict prefix of the scope as the "sepset".
            let sepset: Vec<VarId> = clique.vars()[..clique.vars().len() - 1].to_vec();
            for max_mode in [false, true] {
                let reference = dense_absorb_halves(&clique, &sepset, max_mode);
                let got = kernel_marginalize(&clique, &sepset, max_mode);
                prop_assert_eq!(got.as_slice(), reference.values());
            }
        }

        #[test]
        fn sparse_multiply_matches_mul_assign_sub(clique in arb_clique(75), dense_update in arb_clique(0)) {
            // Restrict the update to a sepset-shaped factor over a prefix.
            let sepset: Vec<VarId> = clique.vars()[..clique.vars().len() - 1].to_vec();
            let update = dense_update.marginalize_keep(&sepset);
            let mut reference = clique.clone();
            reference.mul_assign_sub(&update);

            let support = support_of(clique.values());
            let proj = clique_to_sepset(&clique, &sepset, Some(&support));
            let mut got = clique.clone();
            multiply_from(got.values_mut(), Some(&support), &proj, update.values());
            // Entries outside the support are zeros on both sides (0 * x
            // may differ in zero sign only, which == treats as equal).
            prop_assert_eq!(got.values(), reference.values());
        }

        #[test]
        fn fully_dense_cliques_take_the_dense_path(clique in arb_clique(0)) {
            prop_assert_eq!(support_of(clique.values()).len(), clique.len());
            prop_assert!(!compress(SparseMode::Auto, clique.len(), clique.len()));
        }
    }

    #[test]
    fn projection_matches_marginalize_on_interior_sepset() {
        // Sepset that is not a scope prefix: keep the middle variable.
        let clique = pattern_factor(3, (0..64).map(|i| (i % 4) as f64).collect());
        let sepset = vec![v(1)];
        let proj = clique_to_sepset(&clique, &sepset, None);
        let mut target = vec![0.0f64; 4];
        marginalize_into(clique.values(), None, &proj, &mut target, false);
        assert_eq!(target.as_slice(), clique.marginalize_keep(&sepset).values());
    }
}
