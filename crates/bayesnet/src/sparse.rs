//! Determinism-aware sparse kernels for HUGIN propagation.
//!
//! Gate CPTs in the paper's LIDAG construction are *deterministic* (truth
//! tables, Def. 8), so the clique potentials they multiply into are
//! dominated by exact structural zeros — typically 75% of entries for
//! four-state transition variables. Those zeros are fixed at compile time:
//! every later operation on a working potential (evidence reduction,
//! likelihood scaling, sepset-update multiplication) is multiplicative, so
//! the nonzero *support* of a working potential is always a subset of the
//! initial potential's support.
//!
//! This module exploits that in two ways, both precomputed once per
//! [`CompiledTree`](crate::CompiledTree) and reused across every
//! propagation:
//!
//! 1. **Projection tables**: for each (clique, sepset) edge pair, a flat
//!    `Vec<u32>` mapping clique table entries to sepset entries, replacing
//!    the per-call scope-merge and odometer walks of the generic
//!    [`Factor`](crate::Factor) kernels with branch-free gather/scatter
//!    loops.
//! 2. **Zero compression** (HUGIN's classic optimization, Jensen &
//!    Andersen 1990): cliques whose zero fraction crosses a threshold
//!    iterate only their support index list, skipping structural zeros in
//!    both the marginalize (scatter-add) and multiply (gather) directions.
//!
//! Skipping a structural zero never changes a sum-propagation result *at
//! all*: potentials are non-negative, `x + 0.0 == x` exactly in IEEE 754,
//! and the iteration order over the surviving entries (ascending linear
//! index) is unchanged — so the sparse path is bit-identical to the dense
//! path, not merely close. Max-propagation relies on non-negativity the
//! same way (an all-zero group maxes to `0.0` on both paths).

use crate::junction::JunctionTree;
use crate::{Factor, VarId};

/// Zero-compression policy for compiled junction trees.
///
/// `Auto` (the default) decides per clique on a measured cost model:
/// iterating a support list costs [`SPARSE_COST_PER_ENTRY`] indexed loads
/// per surviving entry where the blocked dense kernels cost one sequential
/// (autovectorized) load per table entry, so a clique is compressed
/// only when `SPARSE_COST_PER_ENTRY · nnz < len` — more than four fifths
/// of its entries must be zero before skipping them wins. `On` forces
/// compression of every clique with at least one zero; `Off` keeps the
/// flat dense loops everywhere (the two paths are equivalence-tested, so
/// `Off` is a debugging aid and regression baseline, not a different
/// answer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SparseMode {
    /// Compress each clique only when its nonzero count is low enough
    /// that support iteration beats the dense loop under the
    /// [`SPARSE_COST_PER_ENTRY`] cost model.
    #[default]
    Auto,
    /// Compress every clique that contains a structural zero.
    On,
    /// Dense kernels everywhere.
    Off,
}

impl SparseMode {
    /// All modes, for CLI help and error messages.
    pub const ALL: [SparseMode; 3] = [SparseMode::Auto, SparseMode::On, SparseMode::Off];
}

impl std::fmt::Display for SparseMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SparseMode::Auto => "auto",
            SparseMode::On => "on",
            SparseMode::Off => "off",
        })
    }
}

impl std::str::FromStr for SparseMode {
    type Err = String;

    fn from_str(s: &str) -> Result<SparseMode, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(SparseMode::Auto),
            "on" => Ok(SparseMode::On),
            "off" => Ok(SparseMode::Off),
            other => Err(format!(
                "unknown sparse mode `{other}` (expected auto, on, or off)"
            )),
        }
    }
}

/// Floating-point summation policy of the blocked marginalize kernels.
///
/// `Scalar` (the default) keeps every reduction in the exact order of the
/// per-entry reference loops, so results are bit-identical
/// (`f64::to_bits`) to every earlier kernel generation — the blocked
/// layout only changes *how* entries are addressed, never the order in
/// which they combine. `Simd` additionally splits single-slot sum
/// reductions across four independent accumulators so the autovectorizer
/// can keep f64 lanes busy; that reassociates the adds, which changes
/// low-order bits. Results still agree with `Scalar` to ~1e-12 relative,
/// but because they are not bit-identical, the mode is hashed into the
/// engine model key and the artifact options codec: a simd compile can
/// never share a cache entry or persisted artifact with a scalar one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelMode {
    /// Order-preserving reductions; bit-identical to the reference path.
    #[default]
    Scalar,
    /// Reassociating 4-lane accumulators for sum reductions (opt-in).
    Simd,
}

impl KernelMode {
    /// All modes, for CLI help and error messages.
    pub const ALL: [KernelMode; 2] = [KernelMode::Scalar, KernelMode::Simd];
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelMode::Scalar => "scalar",
            KernelMode::Simd => "simd",
        })
    }
}

impl std::str::FromStr for KernelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<KernelMode, String> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(KernelMode::Scalar),
            "simd" => Ok(KernelMode::Simd),
            other => Err(format!(
                "unknown kernel mode `{other}` (expected scalar or simd)"
            )),
        }
    }
}

/// Relative cost of one support-list entry versus one dense table entry.
///
/// The sparse kernels touch three indexed words per surviving entry (the
/// support index, the projection slot, and the value it gathers/scatters)
/// where the blocked dense kernels stream contiguous runs the compiler
/// autovectorizes. `SparseMode::Auto` compresses a clique only when
/// `SPARSE_COST_PER_ENTRY · nnz < len`, i.e. when more than four fifths
/// of the table is zero. The constant is recalibrated against the fused
/// blocked kernels: the previous value (3, >2/3 zeros, itself raised from
/// the original ≥50% rule that lost on c880) was measured against the
/// per-entry dense loops, but blocking sped the dense sweep up by another
/// 1.5–2x on the ISCAS/MCNC set (BENCH_kernels.json), which moved the
/// break-even — under the old constant `Auto` was 0.93x on alu2, whose
/// compressed cliques sit in the 67–80% zero band. The 96%-zero
/// deterministic-gate cliques the optimization exists for still clear
/// this bar comfortably.
pub const SPARSE_COST_PER_ENTRY: usize = 5;

/// Blocked (stride-aware) decomposition of a dense clique→sepset
/// projection.
///
/// The clique table in canonical row-major layout factors into
/// `base.len() × sum_reps × copy_len` entries: walking dimensions from the
/// innermost outward, `copy_len` is the size of the maximal suffix of
/// *kept* dimensions whose sepset strides are natural (contiguous — the
/// suffix maps onto a contiguous target run), `sum_reps` the size of the
/// run of *summed-out* dimensions immediately above it, and `base` the
/// per-block target offsets enumerated over the remaining prefix
/// dimensions in ascending source order.
///
/// The blocked kernels then walk `values` in one sequential sweep:
///
/// ```text
/// for (block, base) { for rep in 0..sum_reps {
///     target[base..base+copy_len] += values[next copy_len entries]
/// } }
/// ```
///
/// replacing one `u32` table load + indexed store per entry with
/// contiguous slice arithmetic the autovectorizer can chunk into f64
/// lanes. Because blocks and reps are visited in ascending source order,
/// every target slot receives its contributions in exactly the order of
/// the per-entry reference loop — the blocked sum (and max, and the
/// elementwise multiply) is bit-identical by construction, not merely
/// close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BlockedProj {
    /// Contiguous run length copied/added per step (≥ 1).
    pub(crate) copy_len: u32,
    /// Consecutive source runs folded into the same target run (≥ 1).
    pub(crate) sum_reps: u32,
    /// Target offset of each `sum_reps × copy_len` source block, in
    /// ascending source order.
    pub(crate) base: Vec<u32>,
}

/// One clique's side of an edge projection: the per-entry table (aligned
/// with the support list when the clique is zero-compressed, with the full
/// table otherwise) plus, for dense cliques, the blocked decomposition the
/// vectorized kernels walk. The per-entry table is retained even when a
/// blocked form exists — it drives the sparse kernels, the legacy
/// reference path (`CompiledTree::calibrate_two_pass`), and the kernel
/// microbenchmark baseline.
#[derive(Debug, Clone)]
pub(crate) struct SideProj {
    pub(crate) entries: Vec<u32>,
    pub(crate) blocked: Option<BlockedProj>,
}

/// Projection tables of one junction-tree edge: entry-to-sepset index maps
/// for both endpoint cliques, aligned with the owning clique's support
/// list when that clique is compressed and with its full table otherwise.
#[derive(Debug, Clone)]
pub(crate) struct EdgeProj {
    pub(crate) a: SideProj,
    pub(crate) b: SideProj,
}

/// Everything the absorb kernels need, computed once at compile time.
#[derive(Debug, Clone)]
pub(crate) struct PropagationKernels {
    /// Per clique: ascending nonzero indices of the initial potential when
    /// zero-compressed, `None` for dense iteration.
    pub(crate) support: Vec<Option<Vec<u32>>>,
    /// Per edge: projection tables for both endpoint cliques.
    pub(crate) edge_proj: Vec<EdgeProj>,
    /// Total nonzero entries across all initial clique potentials.
    pub(crate) nnz: usize,
}

impl PropagationKernels {
    /// Builds supports and projection tables for `potentials` over `tree`.
    ///
    /// # Panics
    ///
    /// Panics if any clique potential exceeds `u32::MAX` entries (such a
    /// table could not be allocated anyway).
    pub(crate) fn build(
        tree: &JunctionTree,
        potentials: &[Factor],
        mode: SparseMode,
    ) -> PropagationKernels {
        let mut nnz = 0usize;
        let support: Vec<Option<Vec<u32>>> = potentials
            .iter()
            .map(|pot| {
                assert!(
                    u32::try_from(pot.len()).is_ok(),
                    "clique potential exceeds u32 index range"
                );
                let nonzero = support_of(pot.values());
                nnz += nonzero.len();
                if compress(mode, nonzero.len(), pot.len()) {
                    Some(nonzero)
                } else {
                    None
                }
            })
            .collect();
        let edge_proj = (0..tree.num_edges())
            .map(|e| {
                let edge = tree.edge(e);
                EdgeProj {
                    a: side_proj(
                        &potentials[edge.a],
                        &edge.sepset,
                        support[edge.a].as_deref(),
                    ),
                    b: side_proj(
                        &potentials[edge.b],
                        &edge.sepset,
                        support[edge.b].as_deref(),
                    ),
                }
            })
            .collect();
        PropagationKernels {
            support,
            edge_proj,
            nnz,
        }
    }

    /// Number of zero-compressed cliques.
    pub(crate) fn compressed_cliques(&self) -> usize {
        self.support.iter().filter(|s| s.is_some()).count()
    }
}

/// Ascending indices of the nonzero entries of a table.
fn support_of(values: &[f64]) -> Vec<u32> {
    values
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0.0)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Whether a clique with `nnz` of `len` nonzero entries gets compressed.
fn compress(mode: SparseMode, nnz: usize, len: usize) -> bool {
    match mode {
        SparseMode::Off => false,
        SparseMode::On => nnz < len,
        // Per-clique cost model: support iteration only wins when its
        // weighted entry count undercuts the dense sweep of the full table.
        SparseMode::Auto => SPARSE_COST_PER_ENTRY * nnz < len,
    }
}

/// Both projection forms for one clique side of an edge: the per-entry
/// table always, the blocked decomposition when the clique is dense.
fn side_proj(clique: &Factor, sepset: &[VarId], support: Option<&[u32]>) -> SideProj {
    SideProj {
        entries: clique_to_sepset(clique, sepset, support),
        blocked: match support {
            None => Some(blocked_projection(clique, sepset)),
            Some(_) => None,
        },
    }
}

/// Per clique dimension, the row-major stride of that dimension in the
/// sepset table — `0` for summed-out dimensions.
fn sepset_strides(clique: &Factor, sepset: &[VarId]) -> Vec<usize> {
    let vars = clique.vars();
    let cards = clique.cards();
    let mut target_strides = vec![0usize; vars.len()];
    // Sepsets are sorted subsets of the clique scope; walk both in
    // lockstep assigning row-major strides (last sepset var fastest).
    let mut stride = 1usize;
    let mut j = sepset.len();
    for i in (0..vars.len()).rev() {
        if j > 0 && vars[i] == sepset[j - 1] {
            j -= 1;
            target_strides[i] = stride;
            stride *= cards[i];
        }
    }
    assert_eq!(j, 0, "sepset must be contained in the clique scope");
    target_strides
}

/// Decomposes a dense clique→sepset projection into the blocked form the
/// vectorized kernels walk (see [`BlockedProj`]).
///
/// Dimensions are classified from the innermost outward: the maximal
/// suffix of kept dimensions with natural (contiguous) target strides
/// becomes the copy run, the run of summed-out dimensions directly above
/// it becomes the fold count, and the remaining prefix is enumerated once
/// here into per-block target offsets. The degenerate decomposition
/// (`copy_len == 1`, `sum_reps == 1`, one base per entry) is exactly the
/// per-entry table, so correctness never depends on a favourable layout.
fn blocked_projection(clique: &Factor, sepset: &[VarId]) -> BlockedProj {
    let cards = clique.cards();
    let strides = sepset_strides(clique, sepset);
    let mut j = cards.len();
    // Copy run: innermost kept dimensions laid out contiguously in the
    // target, i.e. each dimension's target stride equals the run length
    // accumulated so far.
    let mut copy_len = 1usize;
    while j > 0 && strides[j - 1] == copy_len && strides[j - 1] != 0 {
        copy_len *= cards[j - 1];
        j -= 1;
    }
    // Fold run: summed-out dimensions directly above the copy run.
    let mut sum_reps = 1usize;
    while j > 0 && strides[j - 1] == 0 {
        sum_reps *= cards[j - 1];
        j -= 1;
    }
    let blocks: usize = cards[..j].iter().product();
    let mut base = Vec::with_capacity(blocks);
    let mut digits = vec![0usize; j];
    let mut target = 0usize;
    for _ in 0..blocks {
        base.push(target as u32);
        for pos in (0..j).rev() {
            digits[pos] += 1;
            target += strides[pos];
            if digits[pos] < cards[pos] {
                break;
            }
            digits[pos] = 0;
            target -= strides[pos] * cards[pos];
        }
    }
    debug_assert_eq!(base.len() * sum_reps * copy_len, clique.len());
    BlockedProj {
        copy_len: copy_len as u32,
        sum_reps: sum_reps as u32,
        base,
    }
}

/// The sepset linear index of every iterated clique entry: one slot per
/// support position when `support` is given, else per clique linear index.
///
/// The walk mirrors `Factor::marginalize_keep`'s odometer but runs once at
/// compile time instead of once per message.
fn clique_to_sepset(clique: &Factor, sepset: &[VarId], support: Option<&[u32]>) -> Vec<u32> {
    let vars = clique.vars();
    let cards = clique.cards();
    let target_strides = sepset_strides(clique, sepset);
    let mut full = Vec::with_capacity(clique.len());
    let mut digits = vec![0usize; vars.len()];
    let mut target = 0usize;
    for _ in 0..clique.len() {
        full.push(target as u32);
        for pos in (0..vars.len()).rev() {
            digits[pos] += 1;
            target += target_strides[pos];
            if digits[pos] < cards[pos] {
                break;
            }
            digits[pos] = 0;
            target -= target_strides[pos] * cards[pos];
        }
    }
    match support {
        Some(support) => support.iter().map(|&i| full[i as usize]).collect(),
        None => full,
    }
}

/// Marginalizes a clique table into `target` (a sepset-sized buffer)
/// through a precomputed projection: scatter-add for sum propagation,
/// scatter-max for max propagation. `target` is (re)initialized here.
///
/// With a support list only the listed entries are visited; the skipped
/// entries are exact zeros, which contribute nothing to a sum and nothing
/// above `0.0` to a max of non-negative values, so both variants match the
/// dense loops bit for bit.
pub(crate) fn marginalize_into(
    values: &[f64],
    support: Option<&[u32]>,
    proj: &[u32],
    target: &mut [f64],
    max_mode: bool,
) {
    match (support, max_mode) {
        (None, false) => {
            target.fill(0.0);
            for (i, &p) in proj.iter().enumerate() {
                target[p as usize] += values[i];
            }
        }
        (None, true) => {
            // Every sepset entry has at least one clique extension, so
            // every slot is written and the initial value never survives.
            target.fill(f64::NEG_INFINITY);
            for (i, &p) in proj.iter().enumerate() {
                let v = values[i];
                let t = &mut target[p as usize];
                if v > *t {
                    *t = v;
                }
            }
        }
        (Some(support), false) => {
            target.fill(0.0);
            for (k, &idx) in support.iter().enumerate() {
                target[proj[k] as usize] += values[idx as usize];
            }
        }
        (Some(support), true) => {
            // Skipped entries are zeros: groups with no surviving entry
            // max to 0.0, exactly what the dense loop produces.
            target.fill(0.0);
            for (k, &idx) in support.iter().enumerate() {
                let v = values[idx as usize];
                let t = &mut target[proj[k] as usize];
                if v > *t {
                    *t = v;
                }
            }
        }
    }
}

/// Multiplies a sepset-sized `update` into a clique table through a
/// precomputed projection (the second half of HUGIN absorption). With a
/// support list only nonzero entries are touched; the skipped entries are
/// zeros and stay zeros.
pub(crate) fn multiply_from(
    values: &mut [f64],
    support: Option<&[u32]>,
    proj: &[u32],
    update: &[f64],
) {
    match support {
        None => {
            for (i, v) in values.iter_mut().enumerate() {
                *v *= update[proj[i] as usize];
            }
        }
        Some(support) => {
            for (k, &idx) in support.iter().enumerate() {
                values[idx as usize] *= update[proj[k] as usize];
            }
        }
    }
}

/// Blocked (stride-aware) marginalize of a dense clique table into
/// `target`: one sequential sweep of `values`, adding (or maxing)
/// contiguous `copy_len` runs into contiguous target runs. Bit-identical
/// to the per-entry [`marginalize_into`] in every mode except the
/// reassociating `simd` sum reduction (see [`KernelMode`]): blocks and
/// fold repetitions are visited in ascending source order, so each target
/// slot combines its contributions in exactly the reference order.
pub(crate) fn marginalize_blocked(
    values: &[f64],
    blocked: &BlockedProj,
    target: &mut [f64],
    max_mode: bool,
    kernel: KernelMode,
) {
    let l = blocked.copy_len as usize;
    let s = blocked.sum_reps as usize;
    let mut off = 0usize;
    if max_mode {
        // Every sepset entry has at least one clique extension, so every
        // slot is written and the initial value never survives.
        target.fill(f64::NEG_INFINITY);
        for &b in &blocked.base {
            let b = b as usize;
            for _ in 0..s {
                let dst = &mut target[b..b + l];
                for (t, &v) in dst.iter_mut().zip(&values[off..off + l]) {
                    if v > *t {
                        *t = v;
                    }
                }
                off += l;
            }
        }
        return;
    }
    target.fill(0.0);
    if l == 1 {
        // Whole blocks fold into single target slots: keep the reduction
        // in a register instead of bouncing through memory per entry.
        if kernel == KernelMode::Simd && s >= 8 {
            // Four independent accumulators break the serial add chain so
            // the autovectorizer can chunk f64 lanes. Reassociates the
            // sum — only reachable through an explicit simd compile.
            for &b in &blocked.base {
                let run = &values[off..off + s];
                let mut acc = [0.0f64; 4];
                let mut chunks = run.chunks_exact(4);
                for c in chunks.by_ref() {
                    acc[0] += c[0];
                    acc[1] += c[1];
                    acc[2] += c[2];
                    acc[3] += c[3];
                }
                let mut tail = 0.0f64;
                for &v in chunks.remainder() {
                    tail += v;
                }
                target[b as usize] += (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail;
                off += s;
            }
        } else {
            for &b in &blocked.base {
                let mut acc = target[b as usize];
                for &v in &values[off..off + s] {
                    acc += v;
                }
                target[b as usize] = acc;
                off += s;
            }
        }
    } else {
        // Contiguous lane-parallel adds: independent slots, so the
        // autovectorizer chunks these without any reassociation.
        for &b in &blocked.base {
            let b = b as usize;
            for _ in 0..s {
                let dst = &mut target[b..b + l];
                for (t, &v) in dst.iter_mut().zip(&values[off..off + l]) {
                    *t += v;
                }
                off += l;
            }
        }
    }
}

/// Blocked multiply of a sepset-sized `update` into a dense clique table:
/// the gather direction of [`marginalize_blocked`]. Elementwise products
/// in any order are the same products, so this is bit-identical to the
/// per-entry [`multiply_from`] in every kernel mode.
pub(crate) fn multiply_blocked(values: &mut [f64], blocked: &BlockedProj, update: &[f64]) {
    let l = blocked.copy_len as usize;
    let s = blocked.sum_reps as usize;
    let mut off = 0usize;
    if l == 1 {
        for &b in &blocked.base {
            let u = update[b as usize];
            for v in &mut values[off..off + s] {
                *v *= u;
            }
            off += s;
        }
    } else {
        for &b in &blocked.base {
            let upd = &update[b as usize..b as usize + l];
            for _ in 0..s {
                for (v, &u) in values[off..off + l].iter_mut().zip(upd) {
                    *v *= u;
                }
                off += l;
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn mode_parsing_round_trips() {
        for mode in SparseMode::ALL {
            assert_eq!(mode.to_string().parse::<SparseMode>(), Ok(mode));
        }
        assert_eq!("AUTO".parse::<SparseMode>(), Ok(SparseMode::Auto));
        assert!("sometimes".parse::<SparseMode>().is_err());
        assert_eq!(SparseMode::default(), SparseMode::Auto);
    }

    #[test]
    fn kernel_mode_parsing_round_trips() {
        for mode in KernelMode::ALL {
            assert_eq!(mode.to_string().parse::<KernelMode>(), Ok(mode));
        }
        assert_eq!("SIMD".parse::<KernelMode>(), Ok(KernelMode::Simd));
        assert!("avx".parse::<KernelMode>().is_err());
        assert_eq!(KernelMode::default(), KernelMode::Scalar);
    }

    /// Mixed-cardinality factor so blocked decompositions see uneven dims.
    fn mixed_factor(cards: &[usize], values: Vec<f64>) -> Factor {
        Factor::new(
            cards.iter().enumerate().map(|(i, &c)| (v(i), c)).collect(),
            values,
        )
    }

    #[test]
    fn blocked_projection_decomposes_known_shapes() {
        // dims (a:2, b:3, c:4); keep the {b, c} suffix → one 12-entry copy
        // run, and the summed-out `a` right above it folds into reps.
        let f = mixed_factor(&[2, 3, 4], (0..24).map(|x| x as f64).collect());
        let bp = blocked_projection(&f, &[v(1), v(2)]);
        assert_eq!((bp.copy_len, bp.sum_reps), (12, 2));
        assert_eq!(bp.base, vec![0]);
        // Keep only the innermost var → copy run c, fold run absorbs both
        // summed-out dims b and a.
        let bp = blocked_projection(&f, &[v(2)]);
        assert_eq!((bp.copy_len, bp.sum_reps), (4, 6));
        assert_eq!(bp.base, vec![0]);
        // Keep {a, c} → copy run c, fold run b, blocks over kept a (target
        // stride 4).
        let bp = blocked_projection(&f, &[v(0), v(2)]);
        assert_eq!((bp.copy_len, bp.sum_reps), (4, 3));
        assert_eq!(bp.base, vec![0, 4]);
        // Keep only the middle var → copy run degenerates to 1 entry.
        let bp = blocked_projection(&f, &[v(1)]);
        assert_eq!((bp.copy_len, bp.sum_reps), (1, 4));
        assert_eq!(bp.base, vec![0, 1, 2, 0, 1, 2]);
        // Empty sepset → everything folds into one slot.
        let bp = blocked_projection(&f, &[]);
        assert_eq!((bp.copy_len, bp.sum_reps), (1, 24));
        assert_eq!(bp.base, vec![0]);
        // Full sepset → one pure copy run.
        let bp = blocked_projection(&f, &[v(0), v(1), v(2)]);
        assert_eq!((bp.copy_len, bp.sum_reps), (24, 1));
        assert_eq!(bp.base, vec![0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Blocked kernels against the per-entry reference on every sepset
        /// subset of a random mixed-cardinality clique: sum and max must
        /// be bit-identical in scalar mode; simd must stay within 1e-12.
        #[test]
        fn blocked_kernels_match_per_entry_reference(
            cards in proptest::collection::vec(2usize..=4, 2..=4),
            seed in 0u64..1u64 << 48,
            mask in 1usize..15,
        ) {
            let len: usize = cards.iter().product();
            // Deterministic pseudo-random values from the seed.
            let values: Vec<f64> = (0..len)
                .map(|i| {
                    let x = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                    ((x >> 11) as f64 / (1u64 << 53) as f64) + 0.001
                })
                .collect();
            let clique = mixed_factor(&cards, values);
            let sepset: Vec<VarId> = (0..cards.len())
                .filter(|i| mask & (1 << i) != 0)
                .map(v)
                .collect();
            let proj = clique_to_sepset(&clique, &sepset, None);
            let bp = blocked_projection(&clique, &sepset);
            let sep_len: usize = sepset
                .iter()
                .map(|s| clique.cards()[clique.position(*s).unwrap()])
                .product();
            for max_mode in [false, true] {
                let mut reference = vec![f64::NAN; sep_len];
                marginalize_into(clique.values(), None, &proj, &mut reference, max_mode);
                let mut blocked = vec![f64::NAN; sep_len];
                marginalize_blocked(
                    clique.values(),
                    &bp,
                    &mut blocked,
                    max_mode,
                    KernelMode::Scalar,
                );
                let ref_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
                let got_bits: Vec<u64> = blocked.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(got_bits, ref_bits, "scalar blocked must be bit-identical");
                let mut simd = vec![f64::NAN; sep_len];
                marginalize_blocked(clique.values(), &bp, &mut simd, max_mode, KernelMode::Simd);
                for (a, b) in simd.iter().zip(&reference) {
                    prop_assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0));
                }
            }
            // Multiply direction: bit-identical in every mode.
            let update: Vec<f64> = (0..sep_len).map(|i| 0.5 + i as f64).collect();
            let mut reference = clique.values().to_vec();
            multiply_from(&mut reference, None, &proj, &update);
            let mut blocked = clique.values().to_vec();
            multiply_blocked(&mut blocked, &bp, &update);
            let ref_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
            let got_bits: Vec<u64> = blocked.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(got_bits, ref_bits);
        }
    }

    #[test]
    fn compress_thresholds() {
        assert!(!compress(SparseMode::Off, 0, 8));
        assert!(compress(SparseMode::On, 7, 8));
        assert!(!compress(SparseMode::On, 8, 8));
        // Auto follows the cost model: 5·nnz must undercut the table size.
        assert!(compress(SparseMode::Auto, 1, 8)); // 5 < 8: support wins
        assert!(!compress(SparseMode::Auto, 2, 8)); // 10 ≥ 8: dense wins
                                                    // Exactly half zero — the original rule compressed this and
                                                    // lost on c880; the cost model keeps it dense.
        assert!(!compress(SparseMode::Auto, 4, 8));
        // 75% zero sat right at the old (pre-blocking) break-even; with
        // the fused dense kernels it stays dense (alu2 was 0.93x).
        assert!(!compress(SparseMode::Auto, 16, 64));
        // A 96%-zero deterministic-gate table still compresses.
        assert!(compress(SparseMode::Auto, 2, 64));
    }

    /// A factor over `n` four-state variables with the given zero pattern.
    fn pattern_factor(n: usize, values: Vec<f64>) -> Factor {
        Factor::new((0..n).map(|i| (v(i), 4)).collect(), values)
    }

    /// Reference path: dense `Factor` kernels.
    fn dense_absorb_halves(clique: &Factor, sepset: &[VarId], max_mode: bool) -> Factor {
        if max_mode {
            clique.max_marginalize_keep(sepset)
        } else {
            clique.marginalize_keep(sepset)
        }
    }

    /// Kernel path: projection + optional support, as used by `CompiledTree`.
    fn kernel_marginalize(clique: &Factor, sepset: &[VarId], max_mode: bool) -> Vec<f64> {
        let support = support_of(clique.values());
        let proj = clique_to_sepset(clique, sepset, Some(&support));
        let proj_dense = clique_to_sepset(clique, sepset, None);
        let sep_len: usize = sepset
            .iter()
            .map(|s| clique.cards()[clique.position(*s).unwrap()])
            .product();
        let mut sparse = vec![f64::NAN; sep_len];
        let mut dense = vec![f64::NAN; sep_len];
        marginalize_into(
            clique.values(),
            Some(&support),
            &proj,
            &mut sparse,
            max_mode,
        );
        marginalize_into(clique.values(), None, &proj_dense, &mut dense, max_mode);
        assert_eq!(sparse, dense, "sparse and dense kernels must agree");
        sparse
    }

    /// Strategy: 2–3 four-state variables, each entry zero with the given
    /// percent probability — `75` mimics a deterministic gate CPT's shape.
    fn arb_clique(zero_pct: u32) -> impl Strategy<Value = Factor> {
        (2usize..=3).prop_flat_map(move |n| {
            proptest::collection::vec((0u32..100, 0.01f64..1.0), 4usize.pow(n as u32)).prop_map(
                move |cells| {
                    let values = cells
                        .into_iter()
                        .map(|(r, v)| if r < zero_pct { 0.0 } else { v })
                        .collect();
                    pattern_factor(n, values)
                },
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn sparse_marginalize_matches_dense(clique in arb_clique(75)) {
            // Keep a strict prefix of the scope as the "sepset".
            let sepset: Vec<VarId> = clique.vars()[..clique.vars().len() - 1].to_vec();
            for max_mode in [false, true] {
                let reference = dense_absorb_halves(&clique, &sepset, max_mode);
                let got = kernel_marginalize(&clique, &sepset, max_mode);
                prop_assert_eq!(got.as_slice(), reference.values());
            }
        }

        #[test]
        fn sparse_multiply_matches_mul_assign_sub(clique in arb_clique(75), dense_update in arb_clique(0)) {
            // Restrict the update to a sepset-shaped factor over a prefix.
            let sepset: Vec<VarId> = clique.vars()[..clique.vars().len() - 1].to_vec();
            let update = dense_update.marginalize_keep(&sepset);
            let mut reference = clique.clone();
            reference.mul_assign_sub(&update);

            let support = support_of(clique.values());
            let proj = clique_to_sepset(&clique, &sepset, Some(&support));
            let mut got = clique.clone();
            multiply_from(got.values_mut(), Some(&support), &proj, update.values());
            // Entries outside the support are zeros on both sides (0 * x
            // may differ in zero sign only, which == treats as equal).
            prop_assert_eq!(got.values(), reference.values());
        }

        #[test]
        fn fully_dense_cliques_take_the_dense_path(clique in arb_clique(0)) {
            prop_assert_eq!(support_of(clique.values()).len(), clique.len());
            prop_assert!(!compress(SparseMode::Auto, clique.len(), clique.len()));
        }
    }

    #[test]
    fn projection_matches_marginalize_on_interior_sepset() {
        // Sepset that is not a scope prefix: keep the middle variable.
        let clique = pattern_factor(3, (0..64).map(|i| (i % 4) as f64).collect());
        let sepset = vec![v(1)];
        let proj = clique_to_sepset(&clique, &sepset, None);
        let mut target = vec![0.0f64; 4];
        marginalize_into(clique.values(), None, &proj, &mut target, false);
        assert_eq!(target.as_slice(), clique.marginalize_keep(&sepset).values());
    }
}
