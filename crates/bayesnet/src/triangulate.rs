//! Triangulation of moral graphs by node elimination.
//!
//! Eliminating a node connects all of its remaining neighbors (the *fill*
//! edges) and records the induced clique `{node} ∪ neighbors`. Running this
//! to completion yields a chordal supergraph whose maximal cliques are a
//! subset of the recorded elimination cliques. Finding the minimum-fill
//! triangulation is NP-hard, so the elimination order is chosen greedily by
//! one of two classic [`Heuristic`]s; ties break towards the smaller clique
//! state space and then the lower node index, keeping results deterministic.

use crate::graph::UndirectedGraph;

/// Greedy node-selection heuristic for the elimination order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Heuristic {
    /// Eliminate the node introducing the fewest fill edges. Usually the
    /// best cliques; costs O(n·d²) per step.
    #[default]
    MinFill,
    /// Eliminate the node with the fewest *weighted* neighbors (smallest
    /// induced-clique state space). Faster, often slightly worse.
    MinDegree,
}

/// Result of triangulating a graph.
#[derive(Debug, Clone)]
pub struct Triangulation {
    /// The elimination order (every node exactly once).
    pub order: Vec<usize>,
    /// The chordal graph: input plus fill edges.
    pub filled: UndirectedGraph,
    /// Number of fill edges added.
    pub fill_edges: usize,
    /// Maximal cliques of the chordal graph, each sorted ascending.
    pub cliques: Vec<Vec<usize>>,
    /// Σ over maximal cliques of the product of member cardinalities — the
    /// junction-tree state space this triangulation induces.
    pub total_states: f64,
}

/// Triangulates `graph`, where `weights[v]` is the cardinality of node `v`
/// (used for weighted tie-breaking and cost reporting).
///
/// # Panics
///
/// Panics if `weights.len() != graph.num_nodes()` or any weight is zero.
///
/// # Example
///
/// ```
/// use swact_bayesnet::graph::UndirectedGraph;
/// use swact_bayesnet::triangulate::{triangulate, Heuristic};
///
/// // A 4-cycle needs exactly one chord.
/// let mut g = UndirectedGraph::new(4);
/// for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
///     g.add_edge(a, b);
/// }
/// let t = triangulate(&g, &[2, 2, 2, 2], Heuristic::MinFill);
/// assert_eq!(t.fill_edges, 1);
/// assert_eq!(t.cliques.len(), 2); // two triangles
/// ```
pub fn triangulate(
    graph: &UndirectedGraph,
    weights: &[usize],
    heuristic: Heuristic,
) -> Triangulation {
    let n = graph.num_nodes();
    assert_eq!(weights.len(), n, "one weight per node");
    assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
    let mut work = graph.clone();
    let mut filled = graph.clone();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut raw_cliques: Vec<Vec<usize>> = Vec::new();
    let mut fill_edges = 0usize;

    for _ in 0..n {
        let node = select_node(&work, weights, &eliminated, heuristic, None);
        let neighbors: Vec<usize> = work.neighbors(node).iter().copied().collect();
        // Record the induced clique.
        let mut clique = neighbors.clone();
        clique.push(node);
        clique.sort_unstable();
        raw_cliques.push(clique);
        // Add fill edges among neighbors.
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if !work.has_edge(a, b) {
                    work.add_edge(a, b);
                    filled.add_edge(a, b);
                    fill_edges += 1;
                }
            }
        }
        work.isolate(node);
        eliminated[node] = true;
        order.push(node);
    }

    let cliques = maximal_cliques(raw_cliques);
    let total_states = cliques
        .iter()
        .map(|c| c.iter().map(|&v| weights[v] as f64).product::<f64>())
        .sum();
    Triangulation {
        order,
        filled,
        fill_edges,
        cliques,
        total_states,
    }
}

/// Triangulates `graph` greedily like [`triangulate`], but breaks score
/// ties by smaller `preference[node]` (before the final node-index
/// tie-break) instead of going straight to the node index. Greedy scores
/// tie constantly on circuit graphs, so a good preference — e.g. positions
/// from the FORCE layout in [`crate::order`] — steers the elimination
/// toward layout-local cliques while never overriding the heuristic
/// itself.
///
/// # Panics
///
/// Panics if `weights.len()` or `preference.len()` differs from
/// `graph.num_nodes()`, or any weight is zero.
pub fn triangulate_with_preference(
    graph: &UndirectedGraph,
    weights: &[usize],
    heuristic: Heuristic,
    preference: &[usize],
) -> Triangulation {
    let n = graph.num_nodes();
    assert_eq!(weights.len(), n, "one weight per node");
    assert_eq!(preference.len(), n, "one preference per node");
    assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
    let mut work = graph.clone();
    let mut filled = graph.clone();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut raw_cliques: Vec<Vec<usize>> = Vec::new();
    let mut fill_edges = 0usize;

    for _ in 0..n {
        let node = select_node(&work, weights, &eliminated, heuristic, Some(preference));
        let neighbors: Vec<usize> = work.neighbors(node).iter().copied().collect();
        let mut clique = neighbors.clone();
        clique.push(node);
        clique.sort_unstable();
        raw_cliques.push(clique);
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if !work.has_edge(a, b) {
                    work.add_edge(a, b);
                    filled.add_edge(a, b);
                    fill_edges += 1;
                }
            }
        }
        work.isolate(node);
        eliminated[node] = true;
        order.push(node);
    }

    let cliques = maximal_cliques(raw_cliques);
    let total_states = cliques
        .iter()
        .map(|c| c.iter().map(|&v| weights[v] as f64).product::<f64>())
        .sum();
    Triangulation {
        order,
        filled,
        fill_edges,
        cliques,
        total_states,
    }
}

/// Triangulates `graph` by eliminating nodes in the *given* order instead
/// of choosing one greedily — the hook search-based orderings (e.g. the
/// FORCE layout in [`crate::order`]) use to compete with the greedy
/// heuristics on equal terms.
///
/// # Panics
///
/// Panics if `weights.len() != graph.num_nodes()`, any weight is zero, or
/// `order` is not a permutation of `0..graph.num_nodes()`.
pub fn triangulate_ordered(
    graph: &UndirectedGraph,
    weights: &[usize],
    order: &[usize],
) -> Triangulation {
    let n = graph.num_nodes();
    assert_eq!(weights.len(), n, "one weight per node");
    assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
    assert_eq!(order.len(), n, "order must cover every node");
    let mut seen = vec![false; n];
    for &node in order {
        assert!(node < n && !seen[node], "order must be a permutation");
        seen[node] = true;
    }
    let mut work = graph.clone();
    let mut filled = graph.clone();
    let mut raw_cliques: Vec<Vec<usize>> = Vec::new();
    let mut fill_edges = 0usize;

    for &node in order {
        let neighbors: Vec<usize> = work.neighbors(node).iter().copied().collect();
        let mut clique = neighbors.clone();
        clique.push(node);
        clique.sort_unstable();
        raw_cliques.push(clique);
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if !work.has_edge(a, b) {
                    work.add_edge(a, b);
                    filled.add_edge(a, b);
                    fill_edges += 1;
                }
            }
        }
        work.isolate(node);
    }

    let cliques = maximal_cliques(raw_cliques);
    let total_states = cliques
        .iter()
        .map(|c| c.iter().map(|&v| weights[v] as f64).product::<f64>())
        .sum();
    Triangulation {
        order: order.to_vec(),
        filled,
        fill_edges,
        cliques,
        total_states,
    }
}

/// Estimates the junction-tree state space a graph would induce under the
/// given heuristic, without keeping the triangulation. Used by circuit
/// segmentation to decide when a sub-network is getting too expensive.
pub fn estimate_cost(graph: &UndirectedGraph, weights: &[usize], heuristic: Heuristic) -> f64 {
    triangulate(graph, weights, heuristic).total_states
}

fn select_node(
    work: &UndirectedGraph,
    weights: &[usize],
    eliminated: &[bool],
    heuristic: Heuristic,
    preference: Option<&[usize]>,
) -> usize {
    // (score, clique_states, preference rank, node); with no preference the
    // rank is the node index, so the candidate tuple — and every selection —
    // is exactly the classic greedy one.
    let mut best: Option<(f64, f64, usize, usize)> = None;
    for node in 0..work.num_nodes() {
        if eliminated[node] {
            continue;
        }
        let neighbors: Vec<usize> = work.neighbors(node).iter().copied().collect();
        let clique_states: f64 = weights[node] as f64
            * neighbors
                .iter()
                .map(|&v| weights[v] as f64)
                .product::<f64>();
        let score = match heuristic {
            Heuristic::MinFill => {
                let mut fill = 0usize;
                for (i, &a) in neighbors.iter().enumerate() {
                    for &b in &neighbors[i + 1..] {
                        if !work.has_edge(a, b) {
                            fill += 1;
                        }
                    }
                }
                fill as f64
            }
            Heuristic::MinDegree => clique_states,
        };
        let rank = preference.map_or(node, |p| p[node]);
        let candidate = (score, clique_states, rank, node);
        let better = match best {
            None => true,
            Some(b) => {
                candidate.0 < b.0
                    || (candidate.0 == b.0 && candidate.1 < b.1)
                    || (candidate.0 == b.0 && candidate.1 == b.1 && candidate.2 < b.2)
                    || (candidate.0 == b.0
                        && candidate.1 == b.1
                        && candidate.2 == b.2
                        && candidate.3 < b.3)
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best.expect("at least one uneliminated node").3
}

/// Filters a list of sorted cliques down to the maximal ones.
fn maximal_cliques(mut cliques: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    // Sort by descending size so any superset precedes its subsets.
    cliques.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    cliques.dedup();
    let mut kept: Vec<Vec<usize>> = Vec::new();
    'outer: for clique in cliques {
        for big in &kept {
            if is_subset(&clique, big) {
                continue 'outer;
            }
        }
        kept.push(clique);
    }
    kept.sort();
    kept
}

fn is_subset(small: &[usize], big: &[usize]) -> bool {
    // Both sorted.
    let mut j = 0;
    for &x in small {
        while j < big.len() && big[j] < x {
            j += 1;
        }
        if j >= big.len() || big[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Verifies that a graph is chordal by checking that the given elimination
/// order is *perfect*: at each step, the not-yet-eliminated neighbors of
/// the eliminated node form a clique. Test helper.
pub fn is_perfect_elimination_order(graph: &UndirectedGraph, order: &[usize]) -> bool {
    let mut work = graph.clone();
    for &node in order {
        let neighbors: Vec<usize> = work.neighbors(node).iter().copied().collect();
        if !work.is_clique(&neighbors) {
            return false;
        }
        work.isolate(node);
    }
    true
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn triangle_is_already_chordal() {
        let g = cycle(3);
        let t = triangulate(&g, &[2; 3], Heuristic::MinFill);
        assert_eq!(t.fill_edges, 0);
        assert_eq!(t.cliques, vec![vec![0, 1, 2]]);
        assert_eq!(t.total_states, 8.0);
    }

    #[test]
    fn square_gets_one_chord() {
        let g = cycle(4);
        for h in [Heuristic::MinFill, Heuristic::MinDegree] {
            let t = triangulate(&g, &[2; 4], h);
            assert_eq!(t.fill_edges, 1, "{h:?}");
            assert_eq!(t.cliques.len(), 2);
            assert!(is_perfect_elimination_order(&t.filled, &t.order));
        }
    }

    #[test]
    fn long_cycle_fill_count() {
        // An n-cycle needs n-3 chords.
        for n in [5, 6, 8] {
            let t = triangulate(&cycle(n), &vec![2; n], Heuristic::MinFill);
            assert_eq!(t.fill_edges, n - 3, "cycle of {n}");
            assert!(is_perfect_elimination_order(&t.filled, &t.order));
        }
    }

    #[test]
    fn tree_needs_no_fill() {
        // A star: node 0 connected to 1..=4.
        let mut g = UndirectedGraph::new(5);
        for i in 1..5 {
            g.add_edge(0, i);
        }
        let t = triangulate(&g, &[2; 5], Heuristic::MinFill);
        assert_eq!(t.fill_edges, 0);
        assert_eq!(t.cliques.len(), 4);
        assert!(t.cliques.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn cliques_are_maximal_and_cover_edges() {
        let g = cycle(6);
        let t = triangulate(&g, &[3; 6], Heuristic::MinDegree);
        // Every original edge must lie inside some clique.
        for a in 0..6 {
            for &b in g.neighbors(a) {
                assert!(
                    t.cliques.iter().any(|c| c.contains(&a) && c.contains(&b)),
                    "edge ({a},{b}) uncovered"
                );
            }
        }
        // No clique is a subset of another.
        for (i, a) in t.cliques.iter().enumerate() {
            for (j, b) in t.cliques.iter().enumerate() {
                if i != j {
                    assert!(!is_subset(a, b), "{a:?} ⊆ {b:?}");
                }
            }
        }
    }

    #[test]
    fn disconnected_graph_triangulates() {
        let mut g = UndirectedGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(3, 5);
        let t = triangulate(&g, &[2; 6], Heuristic::MinFill);
        assert_eq!(t.fill_edges, 0);
        assert_eq!(t.order.len(), 6);
        // Cliques: {0,1}, isolated {2}, triangle {3,4,5}.
        assert!(t.cliques.contains(&vec![2]));
        assert!(t.cliques.contains(&vec![3, 4, 5]));
    }

    #[test]
    fn weights_steer_min_degree() {
        // Path 0-1-2 where node 1 is huge: both heuristics still eliminate
        // endpoints first (no fill), but cost accounts for weights.
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let t = triangulate(&g, &[2, 100, 2], Heuristic::MinDegree);
        assert_eq!(t.fill_edges, 0);
        assert_eq!(t.total_states, 200.0 + 200.0);
    }

    #[test]
    fn ordered_elimination_matches_greedy_on_its_own_order() {
        // Replaying the greedy order through triangulate_ordered must
        // reproduce the greedy triangulation exactly.
        let g = cycle(6);
        let greedy = triangulate(&g, &[4; 6], Heuristic::MinFill);
        let replay = triangulate_ordered(&g, &[4; 6], &greedy.order);
        assert_eq!(replay.order, greedy.order);
        assert_eq!(replay.fill_edges, greedy.fill_edges);
        assert_eq!(replay.cliques, greedy.cliques);
        assert_eq!(replay.total_states, greedy.total_states);
    }

    #[test]
    fn ordered_elimination_is_perfect_on_its_fill() {
        let g = cycle(7);
        let order: Vec<usize> = (0..7).rev().collect();
        let t = triangulate_ordered(&g, &[2; 7], &order);
        assert!(is_perfect_elimination_order(&t.filled, &t.order));
        // A bad order pays more fill than greedy, never less than n-3.
        assert!(t.fill_edges >= 4);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn ordered_elimination_rejects_duplicates() {
        let g = cycle(4);
        triangulate_ordered(&g, &[2; 4], &[0, 1, 2, 2]);
    }

    #[test]
    fn estimate_cost_matches_triangulation() {
        let g = cycle(5);
        let t = triangulate(&g, &[2; 5], Heuristic::MinFill);
        assert_eq!(
            estimate_cost(&g, &[2; 5], Heuristic::MinFill),
            t.total_states
        );
    }

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[0]));
    }
}
