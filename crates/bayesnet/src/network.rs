use std::collections::HashMap;

use crate::{BayesError, Factor, VarId};

/// A conditional probability table in the user-friendly *row* layout: one
/// probability distribution over the child per parent configuration, with
/// parents enumerated in the order they were passed to
/// [`BayesNet::add_var`] (last parent fastest).
///
/// # Example
///
/// ```
/// use swact_bayesnet::Cpt;
///
/// // A root variable with P = [0.2, 0.8].
/// let prior = Cpt::prior(vec![0.2, 0.8]);
/// assert_eq!(prior.num_rows(), 1);
///
/// // A noisy inverter: P(child | parent).
/// let inv = Cpt::rows(vec![vec![0.05, 0.95], vec![0.95, 0.05]]);
/// assert_eq!(inv.num_rows(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cpt {
    rows: Vec<Vec<f64>>,
}

impl Cpt {
    /// A CPT from explicit rows (one per parent configuration).
    pub fn rows(rows: Vec<Vec<f64>>) -> Cpt {
        Cpt { rows }
    }

    /// A prior (no parents): exactly one row.
    pub fn prior(distribution: Vec<f64>) -> Cpt {
        Cpt {
            rows: vec![distribution],
        }
    }

    /// A deterministic CPT: row *i* puts probability one on
    /// `state_of(parent assignment i)`. `child_card` fixes the row width.
    pub fn deterministic<F>(num_rows: usize, child_card: usize, mut state_of: F) -> Cpt
    where
        F: FnMut(usize) -> usize,
    {
        let rows = (0..num_rows)
            .map(|r| {
                let mut row = vec![0.0; child_card];
                let s = state_of(r);
                assert!(s < child_card, "deterministic state out of range");
                row[s] = 1.0;
                row
            })
            .collect();
        Cpt { rows }
    }

    /// Number of parent configurations covered.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The rows, parent-major (last parent fastest).
    pub fn as_rows(&self) -> &[Vec<f64>] {
        &self.rows
    }
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    card: usize,
    parents: Vec<VarId>,
    /// CPT as a canonical-layout [`Factor`] over `sorted({self} ∪ parents)`.
    factor: Factor,
}

/// A discrete Bayesian network: a DAG of variables quantified by CPTs.
///
/// Variables must be added parents-first, which makes the DAG acyclic by
/// construction; ids are dense in insertion order (a valid topological
/// order).
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct BayesNet {
    nodes: Vec<Node>,
    by_name: HashMap<String, VarId>,
}

impl BayesNet {
    /// Creates an empty network.
    pub fn new() -> BayesNet {
        BayesNet::default()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over all variable ids in topological (insertion) order.
    pub fn var_ids(&self) -> impl ExactSizeIterator<Item = VarId> + Clone {
        (0..self.nodes.len() as u32).map(VarId)
    }

    /// The name of a variable.
    pub fn name(&self, var: VarId) -> &str {
        &self.nodes[var.index()].name
    }

    /// The cardinality of a variable.
    pub fn card(&self, var: VarId) -> usize {
        self.nodes[var.index()].card
    }

    /// Cardinalities of all variables, indexed by `VarId::index`.
    pub fn cards(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.card).collect()
    }

    /// The parents of a variable, in the order given at
    /// [`add_var`](BayesNet::add_var).
    pub fn parents(&self, var: VarId) -> &[VarId] {
        &self.nodes[var.index()].parents
    }

    /// The children of a variable (computed on demand).
    pub fn children(&self, var: VarId) -> Vec<VarId> {
        self.var_ids()
            .filter(|&v| self.nodes[v.index()].parents.contains(&var))
            .collect()
    }

    /// The CPT of a variable as a canonical-layout [`Factor`] over
    /// `sorted({var} ∪ parents)`.
    pub fn cpt_factor(&self, var: VarId) -> &Factor {
        &self.nodes[var.index()].factor
    }

    /// Looks a variable up by name.
    pub fn find_var(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Adds a variable with the given parents and CPT.
    ///
    /// `cpt` must have one row per parent configuration (parents enumerated
    /// in the given order, last parent fastest) and `card` entries per row,
    /// each row summing to one.
    ///
    /// # Errors
    ///
    /// Returns shape/normalization errors for malformed CPTs,
    /// [`BayesError::UnknownVar`] for parents that have not been added yet,
    /// and [`BayesError::DuplicateVar`] for name collisions.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        card: usize,
        parents: &[VarId],
        cpt: Cpt,
    ) -> Result<VarId, BayesError> {
        let name = name.into();
        if card == 0 {
            return Err(BayesError::ZeroCardinality(name));
        }
        if self.by_name.contains_key(&name) {
            return Err(BayesError::DuplicateVar(name));
        }
        for (i, &p) in parents.iter().enumerate() {
            if p.index() >= self.nodes.len() {
                return Err(BayesError::UnknownVar(p.0));
            }
            if parents[..i].contains(&p) {
                return Err(BayesError::DuplicateParent { var: name });
            }
        }
        let var = VarId(self.nodes.len() as u32);
        let factor = self.cpt_to_factor(&name, var, card, parents, &cpt)?;
        self.nodes.push(Node {
            name: name.clone(),
            card,
            parents: parents.to_vec(),
            factor,
        });
        self.by_name.insert(name, var);
        Ok(var)
    }

    /// Replaces the CPT of an existing variable (same parents). Used to
    /// re-quantify root priors without recompiling the junction tree.
    ///
    /// # Errors
    ///
    /// Same validation as [`add_var`](BayesNet::add_var), plus
    /// [`BayesError::UnknownVar`] if `var` does not exist.
    pub fn set_cpt(&mut self, var: VarId, cpt: Cpt) -> Result<(), BayesError> {
        if var.index() >= self.nodes.len() {
            return Err(BayesError::UnknownVar(var.0));
        }
        let node = &self.nodes[var.index()];
        let factor = self.cpt_to_factor(
            &node.name.clone(),
            var,
            node.card,
            &node.parents.clone(),
            &cpt,
        )?;
        self.nodes[var.index()].factor = factor;
        Ok(())
    }

    fn cpt_to_factor(
        &self,
        name: &str,
        var: VarId,
        card: usize,
        parents: &[VarId],
        cpt: &Cpt,
    ) -> Result<Factor, BayesError> {
        let expected_rows: usize = parents.iter().map(|&p| self.card(p)).product();
        if cpt.rows.len() != expected_rows {
            return Err(BayesError::CptShape {
                var: name.to_string(),
                expected: (expected_rows, card),
                got: (cpt.rows.len(), cpt.rows.first().map_or(0, |r| r.len())),
            });
        }
        for (row_idx, row) in cpt.rows.iter().enumerate() {
            if row.len() != card {
                return Err(BayesError::CptShape {
                    var: name.to_string(),
                    expected: (expected_rows, card),
                    got: (cpt.rows.len(), row.len()),
                });
            }
            if row.iter().any(|&p| !p.is_finite() || p < 0.0) {
                return Err(BayesError::CptInvalidEntry {
                    var: name.to_string(),
                });
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-6 {
                return Err(BayesError::CptNotNormalized {
                    var: name.to_string(),
                    row: row_idx,
                    sum,
                });
            }
        }
        // Build the canonical factor over sorted({var} ∪ parents).
        let mut scope: Vec<(VarId, usize)> = parents.iter().map(|&p| (p, self.card(p))).collect();
        scope.push((var, card));
        scope.sort_by_key(|&(v, _)| v);
        scope.dedup_by_key(|&mut (v, _)| v);
        let size: usize = scope.iter().map(|&(_, c)| c).product();
        let mut values = vec![0.0; size];
        // Strides in the canonical layout.
        let mut strides = vec![1usize; scope.len()];
        for i in (0..scope.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * scope[i + 1].1;
        }
        let pos_of = |v: VarId| scope.iter().position(|&(w, _)| w == v).expect("in scope");
        let var_stride = strides[pos_of(var)];
        let parent_strides: Vec<usize> = parents.iter().map(|&p| strides[pos_of(p)]).collect();
        for (row_idx, row) in cpt.rows.iter().enumerate() {
            // Decode row_idx into parent states (last parent fastest).
            let mut base = 0usize;
            let mut rem = row_idx;
            for i in (0..parents.len()).rev() {
                let pc = self.card(parents[i]);
                base += (rem % pc) * parent_strides[i];
                rem /= pc;
            }
            for (state, &p) in row.iter().enumerate() {
                values[base + state * var_stride] = p;
            }
        }
        Ok(Factor::new(scope, values))
    }

    /// The full joint distribution as one factor — **exponential** in the
    /// number of variables; intended for reference checks on small nets.
    pub fn joint(&self) -> Factor {
        let mut joint = Factor::scalar(1.0);
        for var in self.var_ids() {
            joint = joint.product(self.cpt_factor(var));
        }
        joint
    }

    /// Brute-force marginal of `var` given hard evidence, via the full
    /// joint. Exponential; reference implementation for tests.
    pub fn brute_force_marginal(&self, var: VarId, evidence: &[(VarId, usize)]) -> Vec<f64> {
        let mut joint = self.joint();
        for &(e, state) in evidence {
            joint.reduce(e, state);
        }
        let mut marginal = joint.marginalize_keep(&[var]);
        marginal.normalize();
        marginal.values().to_vec()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sprinkler() -> (BayesNet, VarId, VarId, VarId, VarId) {
        // Classic rain/sprinkler/wet-grass network.
        let mut net = BayesNet::new();
        let cloudy = net
            .add_var("cloudy", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let sprinkler = net
            .add_var(
                "sprinkler",
                2,
                &[cloudy],
                Cpt::rows(vec![vec![0.5, 0.5], vec![0.9, 0.1]]),
            )
            .unwrap();
        let rain = net
            .add_var(
                "rain",
                2,
                &[cloudy],
                Cpt::rows(vec![vec![0.8, 0.2], vec![0.2, 0.8]]),
            )
            .unwrap();
        let wet = net
            .add_var(
                "wet",
                2,
                &[sprinkler, rain],
                Cpt::rows(vec![
                    vec![1.0, 0.0],
                    vec![0.1, 0.9],
                    vec![0.1, 0.9],
                    vec![0.01, 0.99],
                ]),
            )
            .unwrap();
        (net, cloudy, sprinkler, rain, wet)
    }

    #[test]
    fn joint_sums_to_one() {
        let (net, ..) = sprinkler();
        assert!((net.joint().total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wet_grass_marginal_matches_hand_computation() {
        let (net, _, _, _, wet) = sprinkler();
        let p = net.brute_force_marginal(wet, &[]);
        // Known value for these textbook numbers: P(wet) ≈ 0.6471.
        assert!((p[1] - 0.6471).abs() < 1e-4, "P(wet)={}", p[1]);
    }

    #[test]
    fn explaining_away_visible_in_brute_force() {
        let (net, _, sprinkler_v, rain, wet) = sprinkler();
        let p_rain_given_wet = net.brute_force_marginal(rain, &[(wet, 1)]);
        let p_rain_given_wet_sprinkler =
            net.brute_force_marginal(rain, &[(wet, 1), (sprinkler_v, 1)]);
        // Observing the sprinkler on "explains away" rain.
        assert!(p_rain_given_wet_sprinkler[1] < p_rain_given_wet[1]);
    }

    #[test]
    fn cpt_shape_errors() {
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        // Wrong number of rows.
        let err = net
            .add_var("b", 2, &[a], Cpt::rows(vec![vec![0.5, 0.5]]))
            .unwrap_err();
        assert!(matches!(err, BayesError::CptShape { .. }));
        // Wrong row width.
        let err = net
            .add_var("b", 2, &[a], Cpt::rows(vec![vec![1.0], vec![1.0]]))
            .unwrap_err();
        assert!(matches!(err, BayesError::CptShape { .. }));
        // Not normalized.
        let err = net
            .add_var(
                "b",
                2,
                &[a],
                Cpt::rows(vec![vec![0.5, 0.6], vec![0.5, 0.5]]),
            )
            .unwrap_err();
        assert!(matches!(err, BayesError::CptNotNormalized { row: 0, .. }));
        // Negative entry.
        let err = net
            .add_var(
                "b",
                2,
                &[a],
                Cpt::rows(vec![vec![-0.5, 1.5], vec![0.5, 0.5]]),
            )
            .unwrap_err();
        assert!(matches!(err, BayesError::CptInvalidEntry { .. }));
    }

    #[test]
    fn duplicate_and_unknown_vars() {
        let mut net = BayesNet::new();
        net.add_var("a", 2, &[], Cpt::prior(vec![1.0, 0.0]))
            .unwrap();
        assert!(matches!(
            net.add_var("a", 2, &[], Cpt::prior(vec![1.0, 0.0])),
            Err(BayesError::DuplicateVar(_))
        ));
        assert!(matches!(
            net.add_var(
                "b",
                2,
                &[VarId::from_index(7)],
                Cpt::rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]])
            ),
            Err(BayesError::UnknownVar(7))
        ));
    }

    #[test]
    fn set_cpt_replaces_prior() {
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        net.set_cpt(a, Cpt::prior(vec![0.1, 0.9])).unwrap();
        assert_eq!(net.cpt_factor(a).values(), &[0.1, 0.9]);
        assert!(net
            .set_cpt(VarId::from_index(9), Cpt::prior(vec![1.0]))
            .is_err());
    }

    #[test]
    fn cpt_factor_layout_respects_parent_order() {
        // Child id is *lower* than parent id is impossible (parents first),
        // but parent order in add_var can differ from id order.
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let b = net
            .add_var("b", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        // c's parents passed as [b, a]: rows enumerate (b, a) with a fastest.
        let c = net
            .add_var(
                "c",
                2,
                &[b, a],
                Cpt::rows(vec![
                    vec![1.0, 0.0], // b=0, a=0
                    vec![0.0, 1.0], // b=0, a=1
                    vec![0.3, 0.7], // b=1, a=0
                    vec![0.9, 0.1], // b=1, a=1
                ]),
            )
            .unwrap();
        let f = net.cpt_factor(c);
        // Canonical scope is (a, b, c).
        assert_eq!(f.vars(), &[a, b, c]);
        assert_eq!(f.values()[f.index_of(&[1, 0, 1])], 1.0); // a=1,b=0 → c=1
        assert_eq!(f.values()[f.index_of(&[0, 1, 1])], 0.7); // a=0,b=1
        assert_eq!(f.values()[f.index_of(&[1, 1, 0])], 0.9); // a=1,b=1
    }

    #[test]
    fn deterministic_cpt_helper() {
        let cpt = Cpt::deterministic(4, 2, |row| (row % 2 == 1) as usize);
        assert_eq!(cpt.as_rows()[1], vec![0.0, 1.0]);
        assert_eq!(cpt.as_rows()[2], vec![1.0, 0.0]);
    }

    #[test]
    fn children_computed() {
        let (net, cloudy, sprinkler_v, rain, wet) = sprinkler();
        assert_eq!(net.children(cloudy), vec![sprinkler_v, rain]);
        assert_eq!(net.children(rain), vec![wet]);
        assert!(net.children(wet).is_empty());
    }

    #[test]
    fn zero_cardinality_rejected() {
        let mut net = BayesNet::new();
        assert!(matches!(
            net.add_var("z", 0, &[], Cpt::prior(vec![])),
            Err(BayesError::ZeroCardinality(_))
        ));
    }
}
