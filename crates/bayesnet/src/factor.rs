use std::fmt;

use crate::BayesError;

/// Identifier of a random variable within one [`BayesNet`] / factor system.
///
/// Ids are dense (`0..n`) and define the canonical variable order inside
/// [`Factor`]s.
///
/// [`BayesNet`]: crate::BayesNet
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `VarId` from a dense index.
    pub fn from_index(index: usize) -> VarId {
        VarId(u32::try_from(index).expect("variable index exceeds u32 range"))
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// A dense non-negative real-valued table over a set of discrete variables —
/// the workhorse of all exact inference in this crate.
///
/// Variables are kept **sorted by id**; values are stored row-major with the
/// *last* (highest-id) variable fastest. All algebra ([`product`],
/// [`divide_same_domain`], [`marginalize_keep`], [`reduce`]) preserves this
/// canonical layout, so factors over the same variable set are always
/// element-wise aligned.
///
/// [`product`]: Factor::product
/// [`divide_same_domain`]: Factor::divide_same_domain
/// [`marginalize_keep`]: Factor::marginalize_keep
/// [`reduce`]: Factor::reduce
///
/// # Example
///
/// ```
/// use swact_bayesnet::{Factor, VarId};
///
/// let a = VarId::from_index(0);
/// let b = VarId::from_index(1);
/// // P(a): [0.4, 0.6]
/// let pa = Factor::new(vec![(a, 2)], vec![0.4, 0.6]);
/// // P(b|a) as a joint-shaped table over (a, b), b fastest.
/// let pba = Factor::new(vec![(a, 2), (b, 2)], vec![0.9, 0.1, 0.2, 0.8]);
/// let joint = pa.product(&pba);
/// let pb = joint.marginalize_keep(&[b]);
/// assert!((pb.values()[1] - (0.4 * 0.1 + 0.6 * 0.8)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    vars: Vec<VarId>,
    cards: Vec<usize>,
    values: Vec<f64>,
}

impl Factor {
    /// Creates a factor over `(variable, cardinality)` pairs with explicit
    /// values in canonical layout (variables sorted ascending, last variable
    /// fastest).
    ///
    /// # Panics
    ///
    /// Panics if variables are not strictly ascending, a cardinality is
    /// zero, or `values.len()` differs from the product of cardinalities.
    pub fn new(scope: Vec<(VarId, usize)>, values: Vec<f64>) -> Factor {
        let mut vars = Vec::with_capacity(scope.len());
        let mut cards = Vec::with_capacity(scope.len());
        for (v, c) in scope {
            assert!(c > 0, "cardinality of {v} must be positive");
            if let Some(&last) = vars.last() {
                assert!(v > last, "factor scope must be strictly ascending");
            }
            vars.push(v);
            cards.push(c);
        }
        let size: usize = cards.iter().product();
        assert_eq!(
            values.len(),
            size,
            "value count must equal the product of cardinalities"
        );
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// A factor of all ones over the given scope (the multiplicative
    /// identity for [`product`](Factor::product) on that scope).
    pub fn ones(scope: Vec<(VarId, usize)>) -> Factor {
        let size: usize = scope.iter().map(|&(_, c)| c).product();
        Factor::new(scope, vec![1.0; size])
    }

    /// A scalar (empty-scope) factor.
    pub fn scalar(value: f64) -> Factor {
        Factor {
            vars: Vec::new(),
            cards: Vec::new(),
            values: vec![value],
        }
    }

    /// The factor's variables, ascending.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Cardinalities aligned with [`vars`](Factor::vars).
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// The raw table in canonical layout.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the raw table (canonical layout).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the factor is a scalar.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Position of `var` in the scope, if present.
    pub fn position(&self, var: VarId) -> Option<usize> {
        self.vars.binary_search(&var).ok()
    }

    /// Strides per scope position (last variable has stride 1).
    fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.vars.len()];
        for i in (0..self.vars.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.cards[i + 1];
        }
        strides
    }

    /// Linear index of an assignment (aligned with the scope).
    ///
    /// # Panics
    ///
    /// Panics if the assignment length or any state is out of range.
    pub fn index_of(&self, assignment: &[usize]) -> usize {
        assert_eq!(assignment.len(), self.vars.len());
        let strides = self.strides();
        let mut idx = 0;
        for (i, &state) in assignment.iter().enumerate() {
            assert!(state < self.cards[i], "state out of range");
            idx += state * strides[i];
        }
        idx
    }

    /// Decodes a linear index into an assignment aligned with the scope.
    pub fn assignment_of(&self, mut index: usize) -> Vec<usize> {
        let mut assignment = vec![0usize; self.vars.len()];
        for i in (0..self.vars.len()).rev() {
            assignment[i] = index % self.cards[i];
            index /= self.cards[i];
        }
        assignment
    }

    /// Merges the two scopes (sorted union), checking that shared
    /// variables agree on cardinality.
    fn merged_scope(&self, other: &Factor) -> Result<Vec<(VarId, usize)>, BayesError> {
        let mut scope: Vec<(VarId, usize)> = Vec::with_capacity(self.vars.len() + other.vars.len());
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() || j < other.vars.len() {
            let take_self =
                j >= other.vars.len() || (i < self.vars.len() && self.vars[i] <= other.vars[j]);
            if take_self {
                if j < other.vars.len() && self.vars[i] == other.vars[j] {
                    if self.cards[i] != other.cards[j] {
                        return Err(BayesError::FactorCardinalityMismatch {
                            var: self.vars[i].0,
                            left: self.cards[i],
                            right: other.cards[j],
                        });
                    }
                    j += 1;
                }
                scope.push((self.vars[i], self.cards[i]));
                i += 1;
            } else {
                scope.push((other.vars[j], other.cards[j]));
                j += 1;
            }
        }
        Ok(scope)
    }

    /// Pointwise product, over the union of the two scopes.
    ///
    /// Shared variables must have matching cardinalities (panics
    /// otherwise); [`try_product`](Factor::try_product) is the fallible
    /// form.
    pub fn product(&self, other: &Factor) -> Factor {
        self.try_product(other).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Pointwise product, over the union of the two scopes.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::FactorCardinalityMismatch`] when a shared
    /// variable's cardinalities disagree.
    pub fn try_product(&self, other: &Factor) -> Result<Factor, BayesError> {
        let scope = self.merged_scope(other)?;
        let result_cards: Vec<usize> = scope.iter().map(|&(_, c)| c).collect();
        let size: usize = result_cards.iter().product();
        // Per result position: stride into each operand (0 when absent).
        let self_strides = self.strides();
        let other_strides = other.strides();
        let mut sa = vec![0usize; scope.len()];
        let mut sb = vec![0usize; scope.len()];
        for (pos, &(v, _)) in scope.iter().enumerate() {
            if let Some(p) = self.position(v) {
                sa[pos] = self_strides[p];
            }
            if let Some(p) = other.position(v) {
                sb[pos] = other_strides[p];
            }
        }
        let mut values = Vec::with_capacity(size);
        let mut digits = vec![0usize; scope.len()];
        let (mut ia, mut ib) = (0usize, 0usize);
        for _ in 0..size {
            values.push(self.values[ia] * other.values[ib]);
            // Odometer increment, last digit fastest.
            for pos in (0..scope.len()).rev() {
                digits[pos] += 1;
                ia += sa[pos];
                ib += sb[pos];
                if digits[pos] < result_cards[pos] {
                    break;
                }
                digits[pos] = 0;
                ia -= sa[pos] * result_cards[pos];
                ib -= sb[pos] * result_cards[pos];
            }
        }
        Ok(Factor {
            vars: scope.iter().map(|&(v, _)| v).collect(),
            cards: result_cards,
            values,
        })
    }

    /// Fused `product(other).marginalize_keep(keep)` without materializing
    /// the full product — the hot kernel of cross-clique pairwise
    /// marginalization, where the product scope is a whole clique but only
    /// a few variables survive.
    ///
    /// Shared variables must have matching cardinalities (panics
    /// otherwise).
    pub fn product_marginalize(&self, other: &Factor, keep: &[VarId]) -> Factor {
        let scope = self.merged_scope(other).unwrap_or_else(|e| panic!("{e}"));
        let full_cards: Vec<usize> = scope.iter().map(|&(_, c)| c).collect();
        let size: usize = full_cards.iter().product();
        // Target scope and strides.
        let scope_vars: Vec<VarId> = scope.iter().map(|&(v, _)| v).collect();
        let kept = kept_positions(&scope_vars, keep);
        let target_scope: Vec<(VarId, usize)> = kept.iter().map(|&k| scope[k]).collect();
        let target_size: usize = target_scope.iter().map(|&(_, c)| c).product();
        let mut values = vec![0.0f64; target_size.max(1)];
        let self_strides = self.strides();
        let other_strides = other.strides();
        let mut sa = vec![0usize; scope.len()];
        let mut sb = vec![0usize; scope.len()];
        let mut st = vec![0usize; scope.len()];
        for (pos, &(v, _)) in scope.iter().enumerate() {
            if let Some(p) = self.position(v) {
                sa[pos] = self_strides[p];
            }
            if let Some(p) = other.position(v) {
                sb[pos] = other_strides[p];
            }
        }
        {
            let mut stride = 1usize;
            for (rank, &k) in kept.iter().enumerate().rev() {
                st[k] = stride;
                stride *= target_scope[rank].1;
            }
        }
        let mut digits = vec![0usize; scope.len()];
        let (mut ia, mut ib, mut it) = (0usize, 0usize, 0usize);
        for _ in 0..size {
            values[it] += self.values[ia] * other.values[ib];
            for pos in (0..scope.len()).rev() {
                digits[pos] += 1;
                ia += sa[pos];
                ib += sb[pos];
                it += st[pos];
                if digits[pos] < full_cards[pos] {
                    break;
                }
                digits[pos] = 0;
                ia -= sa[pos] * full_cards[pos];
                ib -= sb[pos] * full_cards[pos];
                it -= st[pos] * full_cards[pos];
            }
        }
        Factor {
            vars: target_scope.iter().map(|&(v, _)| v).collect(),
            cards: target_scope.iter().map(|&(_, c)| c).collect(),
            values,
        }
    }

    /// [`product_marginalize`](Factor::product_marginalize) writing into a
    /// caller-owned factor, so repeated calls (the per-edge steps of a
    /// cross-clique pairwise walk) reuse one buffer instead of allocating a
    /// fresh table each step. Produces bit-identical values: the summation
    /// walks the merged scope in the same odometer order.
    pub fn product_marginalize_into(&self, other: &Factor, keep: &[VarId], out: &mut Factor) {
        let scope = self.merged_scope(other).unwrap_or_else(|e| panic!("{e}"));
        let full_cards: Vec<usize> = scope.iter().map(|&(_, c)| c).collect();
        let size: usize = full_cards.iter().product();
        let scope_vars: Vec<VarId> = scope.iter().map(|&(v, _)| v).collect();
        let kept = kept_positions(&scope_vars, keep);
        out.vars.clear();
        out.cards.clear();
        out.vars.extend(kept.iter().map(|&k| scope[k].0));
        out.cards.extend(kept.iter().map(|&k| scope[k].1));
        let target_size: usize = out.cards.iter().product();
        out.values.clear();
        out.values.resize(target_size.max(1), 0.0);
        let self_strides = self.strides();
        let other_strides = other.strides();
        let mut sa = vec![0usize; scope.len()];
        let mut sb = vec![0usize; scope.len()];
        let mut st = vec![0usize; scope.len()];
        for (pos, &(v, _)) in scope.iter().enumerate() {
            if let Some(p) = self.position(v) {
                sa[pos] = self_strides[p];
            }
            if let Some(p) = other.position(v) {
                sb[pos] = other_strides[p];
            }
        }
        {
            let mut stride = 1usize;
            for (rank, &k) in kept.iter().enumerate().rev() {
                st[k] = stride;
                stride *= out.cards[rank];
            }
        }
        let mut digits = vec![0usize; scope.len()];
        let (mut ia, mut ib, mut it) = (0usize, 0usize, 0usize);
        for _ in 0..size {
            out.values[it] += self.values[ia] * other.values[ib];
            for pos in (0..scope.len()).rev() {
                digits[pos] += 1;
                ia += sa[pos];
                ib += sb[pos];
                it += st[pos];
                if digits[pos] < full_cards[pos] {
                    break;
                }
                digits[pos] = 0;
                ia -= sa[pos] * full_cards[pos];
                ib -= sb[pos] * full_cards[pos];
                it -= st[pos] * full_cards[pos];
            }
        }
    }

    /// In-place pointwise multiplication by a factor whose scope is a
    /// **subset** of this factor's scope. Avoids the allocation and scope
    /// merge of [`product`](Factor::product) — the hot path of junction-tree
    /// absorption, where sepset updates multiply into clique potentials.
    ///
    /// # Panics
    ///
    /// Panics if `other` mentions a variable absent from `self` or with a
    /// mismatched cardinality.
    pub fn mul_assign_sub(&mut self, other: &Factor) {
        let other_strides = other.strides();
        // Stride of each of self's positions within `other` (0 if absent).
        let mut sub_strides = vec![0usize; self.vars.len()];
        for (pos, &v) in other.vars.iter().enumerate() {
            let self_pos = self
                .position(v)
                .expect("subset multiplication requires scope containment");
            assert_eq!(
                self.cards[self_pos], other.cards[pos],
                "cardinality mismatch for {v}"
            );
            sub_strides[self_pos] = other_strides[pos];
        }
        let mut digits = vec![0usize; self.vars.len()];
        let mut oi = 0usize;
        for v in &mut self.values {
            *v *= other.values[oi];
            for pos in (0..digits.len()).rev() {
                digits[pos] += 1;
                oi += sub_strides[pos];
                if digits[pos] < self.cards[pos] {
                    break;
                }
                digits[pos] = 0;
                oi -= sub_strides[pos] * self.cards[pos];
            }
        }
    }

    /// In-place pointwise division by a factor whose scope is a **subset**
    /// of this factor's scope, with the HUGIN convention `0 / 0 = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `other` mentions a variable absent from `self`, on a
    /// cardinality mismatch, or on `x / 0` with `x ≠ 0`.
    pub fn div_assign_sub(&mut self, other: &Factor) {
        let other_strides = other.strides();
        let mut sub_strides = vec![0usize; self.vars.len()];
        for (pos, &v) in other.vars.iter().enumerate() {
            let self_pos = self
                .position(v)
                .expect("subset division requires scope containment");
            assert_eq!(
                self.cards[self_pos], other.cards[pos],
                "cardinality mismatch for {v}"
            );
            sub_strides[self_pos] = other_strides[pos];
        }
        let mut digits = vec![0usize; self.vars.len()];
        let mut oi = 0usize;
        for v in &mut self.values {
            let d = other.values[oi];
            if d == 0.0 {
                assert!(*v == 0.0, "division of nonzero {v} by zero entry");
                *v = 0.0;
            } else {
                *v /= d;
            }
            for pos in (0..digits.len()).rev() {
                digits[pos] += 1;
                oi += sub_strides[pos];
                if digits[pos] < self.cards[pos] {
                    break;
                }
                digits[pos] = 0;
                oi -= sub_strides[pos] * self.cards[pos];
            }
        }
    }

    /// Pointwise division by a factor over the *same* scope, with the HUGIN
    /// convention `0 / 0 = 0`.
    ///
    /// # Panics
    ///
    /// Panics if the scopes differ, or on `x / 0` with `x != 0` (which would
    /// indicate a propagation-order bug, not a data condition);
    /// [`try_divide_same_domain`](Factor::try_divide_same_domain) is the
    /// fallible form.
    pub fn divide_same_domain(&self, other: &Factor) -> Factor {
        self.try_divide_same_domain(other)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Pointwise division by a factor over the *same* scope, with the HUGIN
    /// convention `0 / 0 = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::FactorScopeMismatch`] when the scopes differ
    /// and [`BayesError::FactorDivisionByZero`] on `x / 0` with `x ≠ 0`.
    pub fn try_divide_same_domain(&self, other: &Factor) -> Result<Factor, BayesError> {
        if self.vars != other.vars || self.cards != other.cards {
            return Err(BayesError::FactorScopeMismatch);
        }
        let mut values = Vec::with_capacity(self.values.len());
        for (&a, &b) in self.values.iter().zip(&other.values) {
            if b == 0.0 {
                if a != 0.0 {
                    return Err(BayesError::FactorDivisionByZero { value: a });
                }
                values.push(0.0);
            } else {
                values.push(a / b);
            }
        }
        Ok(Factor {
            vars: self.vars.clone(),
            cards: self.cards.clone(),
            values,
        })
    }

    /// Sums out every variable *not* in `keep`, returning the marginal over
    /// `keep ∩ scope` (missing variables are ignored).
    pub fn marginalize_keep(&self, keep: &[VarId]) -> Factor {
        let kept = kept_positions(&self.vars, keep);
        if kept.len() == self.vars.len() {
            return self.clone();
        }
        let result_scope: Vec<(VarId, usize)> = kept
            .iter()
            .map(|&i| (self.vars[i], self.cards[i]))
            .collect();
        let result_cards: Vec<usize> = result_scope.iter().map(|&(_, c)| c).collect();
        let size: usize = result_cards.iter().product();
        let mut values = vec![0.0; size.max(1)];
        // Walk the source with an odometer, maintaining the target index.
        let mut target_strides = vec![0usize; self.vars.len()];
        {
            let mut stride = 1usize;
            for (rank, &i) in kept.iter().enumerate().rev() {
                target_strides[i] = stride;
                stride *= result_cards[rank];
            }
        }
        let mut digits = vec![0usize; self.vars.len()];
        let mut target = 0usize;
        for &v in &self.values {
            values[target] += v;
            for pos in (0..self.vars.len()).rev() {
                digits[pos] += 1;
                target += target_strides[pos];
                if digits[pos] < self.cards[pos] {
                    break;
                }
                digits[pos] = 0;
                target -= target_strides[pos] * self.cards[pos];
            }
        }
        Factor {
            vars: result_scope.iter().map(|&(v, _)| v).collect(),
            cards: result_cards,
            values,
        }
    }

    /// [`marginalize_keep`](Factor::marginalize_keep) writing into a
    /// caller-owned factor (bit-identical values, reused storage).
    pub fn marginalize_keep_into(&self, keep: &[VarId], out: &mut Factor) {
        let kept = kept_positions(&self.vars, keep);
        out.vars.clear();
        out.cards.clear();
        out.vars.extend(kept.iter().map(|&i| self.vars[i]));
        out.cards.extend(kept.iter().map(|&i| self.cards[i]));
        out.values.clear();
        if kept.len() == self.vars.len() {
            out.values.extend_from_slice(&self.values);
            return;
        }
        let size: usize = out.cards.iter().product();
        out.values.resize(size.max(1), 0.0);
        let mut target_strides = vec![0usize; self.vars.len()];
        {
            let mut stride = 1usize;
            for (rank, &i) in kept.iter().enumerate().rev() {
                target_strides[i] = stride;
                stride *= out.cards[rank];
            }
        }
        let mut digits = vec![0usize; self.vars.len()];
        let mut target = 0usize;
        for &v in &self.values {
            out.values[target] += v;
            for pos in (0..self.vars.len()).rev() {
                digits[pos] += 1;
                target += target_strides[pos];
                if digits[pos] < self.cards[pos] {
                    break;
                }
                digits[pos] = 0;
                target -= target_strides[pos] * self.cards[pos];
            }
        }
    }

    /// Max-marginalization: like
    /// [`marginalize_keep`](Factor::marginalize_keep) but taking the
    /// maximum instead of the sum over eliminated variables — the kernel of
    /// max-product (MPE) propagation.
    pub fn max_marginalize_keep(&self, keep: &[VarId]) -> Factor {
        let kept = kept_positions(&self.vars, keep);
        if kept.len() == self.vars.len() {
            return self.clone();
        }
        let result_scope: Vec<(VarId, usize)> = kept
            .iter()
            .map(|&i| (self.vars[i], self.cards[i]))
            .collect();
        let result_cards: Vec<usize> = result_scope.iter().map(|&(_, c)| c).collect();
        let size: usize = result_cards.iter().product();
        let mut values = vec![f64::NEG_INFINITY; size.max(1)];
        let mut target_strides = vec![0usize; self.vars.len()];
        {
            let mut stride = 1usize;
            for (rank, &i) in kept.iter().enumerate().rev() {
                target_strides[i] = stride;
                stride *= result_cards[rank];
            }
        }
        let mut digits = vec![0usize; self.vars.len()];
        let mut target = 0usize;
        for &v in &self.values {
            if v > values[target] {
                values[target] = v;
            }
            for pos in (0..self.vars.len()).rev() {
                digits[pos] += 1;
                target += target_strides[pos];
                if digits[pos] < self.cards[pos] {
                    break;
                }
                digits[pos] = 0;
                target -= target_strides[pos] * self.cards[pos];
            }
        }
        Factor {
            vars: result_scope.iter().map(|&(v, _)| v).collect(),
            cards: result_cards,
            values,
        }
    }

    /// The linear index and value of the largest entry (ties favour the
    /// lowest index).
    pub fn argmax(&self) -> (usize, f64) {
        let mut best = (0usize, f64::NEG_INFINITY);
        for (idx, &v) in self.values.iter().enumerate() {
            if v > best.1 {
                best = (idx, v);
            }
        }
        best
    }

    /// Sums out a single variable. Equivalent to
    /// [`marginalize_keep`](Factor::marginalize_keep) with the rest of the
    /// scope; a no-op if `var` is absent.
    pub fn sum_out(&self, var: VarId) -> Factor {
        if self.position(var).is_none() {
            return self.clone();
        }
        let keep: Vec<VarId> = self.vars.iter().copied().filter(|&v| v != var).collect();
        self.marginalize_keep(&keep)
    }

    /// Zeroes every entry where `var != state`, keeping the scope intact
    /// (HUGIN-style evidence insertion). A no-op if `var` is absent.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range for `var`.
    pub fn reduce(&mut self, var: VarId, state: usize) {
        let Some(pos) = self.position(var) else {
            return;
        };
        assert!(state < self.cards[pos], "evidence state out of range");
        let strides = self.strides();
        let stride = strides[pos];
        let card = self.cards[pos];
        for (idx, v) in self.values.iter_mut().enumerate() {
            if (idx / stride) % card != state {
                *v = 0.0;
            }
        }
    }

    /// Multiplies every entry where `var == state` by `weight`, keeping the
    /// scope intact (soft / likelihood evidence). A no-op if `var` is
    /// absent.
    pub fn scale_state(&mut self, var: VarId, state: usize, weight: f64) {
        let Some(pos) = self.position(var) else {
            return;
        };
        assert!(state < self.cards[pos], "state out of range");
        let strides = self.strides();
        let stride = strides[pos];
        let card = self.cards[pos];
        for (idx, v) in self.values.iter_mut().enumerate() {
            if (idx / stride) % card == state {
                *v *= weight;
            }
        }
    }

    /// Sum of all entries.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Scales the table so it sums to one.
    ///
    /// Returns the normalization constant (the pre-normalization total). A
    /// zero factor is left unchanged and reports 0.
    pub fn normalize(&mut self) -> f64 {
        let total = self.total();
        if total > 0.0 {
            for v in &mut self.values {
                *v /= total;
            }
        }
        total
    }

    /// Largest absolute element-wise difference to a same-scope factor.
    ///
    /// # Panics
    ///
    /// Panics if the scopes differ.
    pub fn max_abs_diff(&self, other: &Factor) -> f64 {
        assert_eq!(self.vars, other.vars, "comparison requires identical scope");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Positions `i` of `vars` (sorted ascending) with `vars[i] ∈ keep`, via a
/// sorted merge — O(|vars| + |keep| log |keep|) instead of the quadratic
/// `keep.contains` scan. `keep` need not be sorted or deduplicated.
fn kept_positions(vars: &[VarId], keep: &[VarId]) -> Vec<usize> {
    let mut keep_sorted: Vec<VarId> = keep.to_vec();
    keep_sorted.sort_unstable();
    let mut kept = Vec::with_capacity(keep_sorted.len().min(vars.len()));
    let mut j = 0;
    for (i, &v) in vars.iter().enumerate() {
        while j < keep_sorted.len() && keep_sorted[j] < v {
            j += 1;
        }
        if j < keep_sorted.len() && keep_sorted[j] == v {
            kept.push(i);
        }
    }
    kept
}

impl fmt::Display for Factor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Factor(")?;
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}:{}", self.cards[i])?;
        }
        write!(f, ") [{} entries]", self.values.len())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn index_round_trip() {
        let f = Factor::ones(vec![(v(0), 2), (v(1), 3), (v(2), 2)]);
        for idx in 0..f.len() {
            let a = f.assignment_of(idx);
            assert_eq!(f.index_of(&a), idx);
        }
        // Last variable is fastest.
        assert_eq!(f.index_of(&[0, 0, 1]), 1);
        assert_eq!(f.index_of(&[0, 1, 0]), 2);
        assert_eq!(f.index_of(&[1, 0, 0]), 6);
    }

    #[test]
    fn product_disjoint_scopes() {
        let fa = Factor::new(vec![(v(0), 2)], vec![0.25, 0.75]);
        let fb = Factor::new(vec![(v(1), 2)], vec![0.5, 0.5]);
        let p = fa.product(&fb);
        assert_eq!(p.vars(), &[v(0), v(1)]);
        assert_eq!(p.values(), &[0.125, 0.125, 0.375, 0.375]);
    }

    #[test]
    fn product_shared_scope_is_pointwise() {
        let fa = Factor::new(vec![(v(0), 3)], vec![1.0, 2.0, 3.0]);
        let fb = Factor::new(vec![(v(0), 3)], vec![5.0, 7.0, 11.0]);
        assert_eq!(fa.product(&fb).values(), &[5.0, 14.0, 33.0]);
    }

    #[test]
    fn product_overlapping_scopes() {
        // f(a,b) * g(b,c)
        let f = Factor::new(vec![(v(0), 2), (v(1), 2)], vec![1.0, 2.0, 3.0, 4.0]);
        let g = Factor::new(vec![(v(1), 2), (v(2), 2)], vec![10.0, 20.0, 30.0, 40.0]);
        let p = f.product(&g);
        assert_eq!(p.vars(), &[v(0), v(1), v(2)]);
        // Entry (a,b,c) = f[a,b] * g[b,c].
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    let want = f.values()[f.index_of(&[a, b])] * g.values()[g.index_of(&[b, c])];
                    assert_eq!(p.values()[p.index_of(&[a, b, c])], want);
                }
            }
        }
    }

    #[test]
    fn product_with_scalar_identity() {
        let f = Factor::new(vec![(v(0), 2)], vec![0.5, 0.5]);
        let one = Factor::scalar(1.0);
        assert_eq!(one.product(&f), f);
        assert_eq!(f.product(&one), f);
    }

    #[test]
    fn marginalize_sums_correctly() {
        let f = Factor::new(vec![(v(0), 2), (v(1), 3)], vec![1., 2., 3., 4., 5., 6.]);
        let m0 = f.marginalize_keep(&[v(0)]);
        assert_eq!(m0.values(), &[6.0, 15.0]);
        let m1 = f.marginalize_keep(&[v(1)]);
        assert_eq!(m1.values(), &[5.0, 7.0, 9.0]);
        let none = f.marginalize_keep(&[]);
        assert_eq!(none.values(), &[21.0]);
        assert!(none.is_empty());
    }

    #[test]
    fn marginalize_keep_preserves_full_scope() {
        let f = Factor::new(vec![(v(0), 2)], vec![0.4, 0.6]);
        assert_eq!(f.marginalize_keep(&[v(0), v(5)]), f);
    }

    #[test]
    fn sum_out_absent_var_is_noop() {
        let f = Factor::new(vec![(v(0), 2)], vec![0.4, 0.6]);
        assert_eq!(f.sum_out(v(3)), f);
    }

    #[test]
    fn division_with_zero_by_zero() {
        let a = Factor::new(vec![(v(0), 2)], vec![0.0, 0.6]);
        let b = Factor::new(vec![(v(0), 2)], vec![0.0, 0.3]);
        let d = a.divide_same_domain(&b);
        assert_eq!(d.values(), &[0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "division of nonzero")]
    fn division_nonzero_by_zero_panics() {
        let a = Factor::new(vec![(v(0), 2)], vec![0.5, 0.6]);
        let b = Factor::new(vec![(v(0), 2)], vec![0.0, 0.3]);
        let _ = a.divide_same_domain(&b);
    }

    #[test]
    fn reduce_zeroes_other_states() {
        let mut f = Factor::new(vec![(v(0), 2), (v(1), 2)], vec![1., 2., 3., 4.]);
        f.reduce(v(1), 0);
        assert_eq!(f.values(), &[1.0, 0.0, 3.0, 0.0]);
        // Reducing an absent variable is a no-op.
        let before = f.clone();
        f.reduce(v(9), 1);
        assert_eq!(f, before);
    }

    #[test]
    fn scale_state_applies_likelihood() {
        let mut f = Factor::new(vec![(v(0), 2)], vec![1.0, 1.0]);
        f.scale_state(v(0), 1, 0.25);
        assert_eq!(f.values(), &[1.0, 0.25]);
    }

    #[test]
    fn normalize_returns_constant() {
        let mut f = Factor::new(vec![(v(0), 2)], vec![1.0, 3.0]);
        let z = f.normalize();
        assert_eq!(z, 4.0);
        assert_eq!(f.values(), &[0.25, 0.75]);
        let mut zero = Factor::new(vec![(v(0), 2)], vec![0.0, 0.0]);
        assert_eq!(zero.normalize(), 0.0);
    }

    #[test]
    fn mul_assign_sub_matches_product() {
        let f = Factor::new(
            vec![(v(0), 2), (v(1), 3), (v(2), 2)],
            (0..12).map(|i| i as f64 + 1.0).collect(),
        );
        for other in [
            Factor::new(vec![(v(1), 3)], vec![2.0, 3.0, 5.0]),
            Factor::new(vec![(v(0), 2), (v(2), 2)], vec![1.0, 2.0, 3.0, 4.0]),
            Factor::scalar(7.0),
            f.clone(),
        ] {
            let mut in_place = f.clone();
            in_place.mul_assign_sub(&other);
            assert_eq!(in_place, f.product(&other));
        }
    }

    #[test]
    #[should_panic(expected = "scope containment")]
    fn mul_assign_sub_requires_subset() {
        let mut f = Factor::ones(vec![(v(0), 2)]);
        let g = Factor::ones(vec![(v(1), 2)]);
        f.mul_assign_sub(&g);
    }

    #[test]
    fn product_then_marginalize_equals_chain_rule() {
        // P(a) * P(b|a) marginalized over a gives P(b).
        let pa = Factor::new(vec![(v(0), 2)], vec![0.4, 0.6]);
        let pba = Factor::new(vec![(v(0), 2), (v(1), 2)], vec![0.9, 0.1, 0.2, 0.8]);
        let pb = pa.product(&pba).marginalize_keep(&[v(1)]);
        assert!((pb.values()[0] - (0.4 * 0.9 + 0.6 * 0.2)).abs() < 1e-12);
        assert!((pb.values()[1] - (0.4 * 0.1 + 0.6 * 0.8)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_scope_panics() {
        let _ = Factor::ones(vec![(v(1), 2), (v(0), 2)]);
    }

    #[test]
    #[should_panic(expected = "cardinality mismatch")]
    fn product_cardinality_mismatch_panics() {
        let a = Factor::ones(vec![(v(0), 2)]);
        let b = Factor::ones(vec![(v(0), 3)]);
        let _ = a.product(&b);
    }

    #[test]
    fn display_formats() {
        let f = Factor::ones(vec![(v(0), 2), (v(2), 4)]);
        assert_eq!(f.to_string(), "Factor(X0:2, X2:4) [8 entries]");
    }

    #[test]
    fn try_product_reports_cardinality_mismatch() {
        let a = Factor::ones(vec![(v(0), 2)]);
        let b = Factor::ones(vec![(v(0), 3)]);
        assert_eq!(
            a.try_product(&b),
            Err(crate::BayesError::FactorCardinalityMismatch {
                var: 0,
                left: 2,
                right: 3,
            })
        );
    }

    #[test]
    fn try_divide_reports_typed_errors() {
        let a = Factor::new(vec![(v(0), 2)], vec![0.5, 0.6]);
        let zero = Factor::new(vec![(v(0), 2)], vec![0.0, 0.3]);
        assert_eq!(
            a.try_divide_same_domain(&zero),
            Err(crate::BayesError::FactorDivisionByZero { value: 0.5 })
        );
        let other_scope = Factor::ones(vec![(v(1), 2)]);
        assert_eq!(
            a.try_divide_same_domain(&other_scope),
            Err(crate::BayesError::FactorScopeMismatch)
        );
        // 0/0 keeps the HUGIN convention through the fallible path too.
        let num = Factor::new(vec![(v(0), 2)], vec![0.0, 0.6]);
        let ok = num.try_divide_same_domain(&zero).unwrap();
        assert_eq!(ok.values(), &[0.0, 2.0]);
    }

    #[test]
    fn into_variants_match_allocating_ones_bitwise() {
        let f = Factor::new(
            vec![(v(0), 2), (v(1), 3), (v(2), 2)],
            (0..12).map(|i| (i as f64).sin() + 2.0).collect(),
        );
        let g = Factor::new(
            vec![(v(1), 3), (v(3), 2)],
            (0..6).map(|i| (i as f64).cos() + 2.0).collect(),
        );
        // Seed the out-buffer with junk scope + stale capacity to prove it
        // is fully reset.
        let mut out = Factor::new(vec![(v(5), 4)], vec![9.0; 4]);
        for keep in [
            vec![v(1)],
            vec![v(0), v(3)],
            vec![v(2), v(1)],
            vec![],
            vec![v(0), v(1), v(2), v(3)],
        ] {
            f.product_marginalize_into(&g, &keep, &mut out);
            let want = f.product_marginalize(&g, &keep);
            assert_eq!(out.vars(), want.vars());
            assert_eq!(out.cards(), want.cards());
            let bits_out: Vec<u64> = out.values().iter().map(|x| x.to_bits()).collect();
            let bits_want: Vec<u64> = want.values().iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits_out, bits_want);

            f.marginalize_keep_into(&keep, &mut out);
            let want = f.marginalize_keep(&keep);
            assert_eq!(out.vars(), want.vars());
            let bits_out: Vec<u64> = out.values().iter().map(|x| x.to_bits()).collect();
            let bits_want: Vec<u64> = want.values().iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits_out, bits_want);
        }
    }

    #[test]
    fn marginalize_keep_accepts_unsorted_keep() {
        // The pairwise-marginal path pushes an extra variable onto a
        // sorted sepset, producing an unsorted keep list.
        let f = Factor::new(
            vec![(v(0), 2), (v(1), 2), (v(2), 2)],
            (0..8).map(|i| i as f64).collect(),
        );
        let sorted = f.marginalize_keep(&[v(0), v(2)]);
        let unsorted = f.marginalize_keep(&[v(2), v(0)]);
        assert_eq!(sorted, unsorted);
        let max_sorted = f.max_marginalize_keep(&[v(0), v(2)]);
        let max_unsorted = f.max_marginalize_keep(&[v(2), v(0)]);
        assert_eq!(max_sorted, max_unsorted);
    }
}
