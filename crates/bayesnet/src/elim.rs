//! Variable elimination — an independent exact-inference engine.
//!
//! Junction-tree propagation and variable elimination compute the same
//! marginals by very different code paths, so agreement between them is a
//! strong correctness check; the `swact` test suites exploit this. For
//! one-off single-variable queries VE can also be cheaper than compiling a
//! full tree.

use crate::triangulate::Heuristic;
use crate::{BayesError, BayesNet, Factor, VarId};

/// Computes the posterior marginal `P(var | evidence)` by variable
/// elimination, using the given heuristic to order eliminations.
///
/// # Errors
///
/// Returns [`BayesError::Empty`] for an empty network and
/// [`BayesError::EvidenceOutOfRange`] for invalid evidence.
///
/// # Example
///
/// ```
/// use swact_bayesnet::{elim::eliminate, BayesNet, Cpt, Heuristic};
///
/// # fn main() -> Result<(), swact_bayesnet::BayesError> {
/// let mut net = BayesNet::new();
/// let a = net.add_var("a", 2, &[], Cpt::prior(vec![0.25, 0.75]))?;
/// let b = net.add_var("b", 2, &[a], Cpt::rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]))?;
/// let p = eliminate(&net, b, &[], Heuristic::MinFill)?;
/// assert!((p[1] - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn eliminate(
    net: &BayesNet,
    var: VarId,
    evidence: &[(VarId, usize)],
    heuristic: Heuristic,
) -> Result<Vec<f64>, BayesError> {
    if net.num_vars() == 0 {
        return Err(BayesError::Empty);
    }
    for &(e, state) in evidence {
        if state >= net.card(e) {
            return Err(BayesError::EvidenceOutOfRange {
                var: e.0,
                state,
                card: net.card(e),
            });
        }
    }
    // Collect CPT factors, insert evidence.
    let mut factors: Vec<Factor> = net
        .var_ids()
        .map(|v| {
            let mut f = net.cpt_factor(v).clone();
            for &(e, state) in evidence {
                f.reduce(e, state);
            }
            f
        })
        .collect();

    // Only the query's ancestors-with-evidence matter, but for simplicity we
    // eliminate every variable except the query, in a greedy order over the
    // interaction graph.
    let order = elimination_order(net, var, heuristic);
    for v in order {
        // Gather factors mentioning v.
        let (mentioning, rest): (Vec<Factor>, Vec<Factor>) =
            factors.into_iter().partition(|f| f.position(v).is_some());
        factors = rest;
        if mentioning.is_empty() {
            continue;
        }
        let mut product = Factor::scalar(1.0);
        for f in &mentioning {
            product = product.product(f);
        }
        factors.push(product.sum_out(v));
    }
    let mut result = Factor::scalar(1.0);
    for f in &factors {
        result = result.product(f);
    }
    let mut marginal = result.marginalize_keep(&[var]);
    marginal.normalize();
    Ok(marginal.values().to_vec())
}

/// Greedy elimination order over the network's moral graph, excluding the
/// query variable (which must survive).
fn elimination_order(net: &BayesNet, keep: VarId, heuristic: Heuristic) -> Vec<VarId> {
    let mut graph = crate::graph::moral_graph(net);
    let cards = net.cards();
    let n = net.num_vars();
    let mut eliminated = vec![false; n];
    eliminated[keep.index()] = true; // never pick the query
    let mut order = Vec::with_capacity(n - 1);
    for _ in 0..n - 1 {
        let mut best: Option<(f64, f64, usize)> = None;
        for node in 0..n {
            if eliminated[node] {
                continue;
            }
            let neighbors: Vec<usize> = graph
                .neighbors(node)
                .iter()
                .copied()
                .filter(|&m| !eliminated[m] || m == keep.index())
                .collect();
            let states: f64 =
                cards[node] as f64 * neighbors.iter().map(|&m| cards[m] as f64).product::<f64>();
            let score = match heuristic {
                Heuristic::MinFill => {
                    let mut fill = 0;
                    for (i, &a) in neighbors.iter().enumerate() {
                        for &b in &neighbors[i + 1..] {
                            if !graph.has_edge(a, b) {
                                fill += 1;
                            }
                        }
                    }
                    fill as f64
                }
                Heuristic::MinDegree => states,
            };
            let candidate = (score, states, node);
            let better = match best {
                None => true,
                Some(b) => {
                    candidate.0 < b.0
                        || (candidate.0 == b.0 && candidate.1 < b.1)
                        || (candidate.0 == b.0 && candidate.1 == b.1 && candidate.2 < b.2)
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        let node = best.expect("nodes remain").2;
        let neighbors: Vec<usize> = graph.neighbors(node).iter().copied().collect();
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                graph.add_edge(a, b);
            }
        }
        graph.isolate(node);
        eliminated[node] = true;
        order.push(VarId::from_index(node));
    }
    order
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::Cpt;

    fn diamond() -> (BayesNet, [VarId; 4]) {
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.4, 0.6]))
            .unwrap();
        let b = net
            .add_var(
                "b",
                2,
                &[a],
                Cpt::rows(vec![vec![0.9, 0.1], vec![0.2, 0.8]]),
            )
            .unwrap();
        let c = net
            .add_var(
                "c",
                3,
                &[a],
                Cpt::rows(vec![vec![0.5, 0.3, 0.2], vec![0.1, 0.2, 0.7]]),
            )
            .unwrap();
        let d = net
            .add_var(
                "d",
                2,
                &[b, c],
                Cpt::rows(vec![
                    vec![1.0, 0.0],
                    vec![0.7, 0.3],
                    vec![0.5, 0.5],
                    vec![0.3, 0.7],
                    vec![0.2, 0.8],
                    vec![0.0, 1.0],
                ]),
            )
            .unwrap();
        (net, [a, b, c, d])
    }

    #[test]
    fn matches_brute_force_without_evidence() {
        let (net, vars) = diamond();
        for var in vars {
            for h in [Heuristic::MinFill, Heuristic::MinDegree] {
                let ve = eliminate(&net, var, &[], h).unwrap();
                let bf = net.brute_force_marginal(var, &[]);
                for (x, y) in ve.iter().zip(&bf) {
                    assert!((x - y).abs() < 1e-12, "{var} {h:?}: {ve:?} vs {bf:?}");
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_with_evidence() {
        let (net, [a, b, c, d]) = diamond();
        let cases: Vec<Vec<(VarId, usize)>> =
            vec![vec![(d, 1)], vec![(b, 0), (c, 2)], vec![(a, 1), (d, 0)]];
        for evidence in &cases {
            for var in [a, b, c, d] {
                if evidence.iter().any(|&(e, _)| e == var) {
                    continue;
                }
                let ve = eliminate(&net, var, evidence, Heuristic::MinFill).unwrap();
                let bf = net.brute_force_marginal(var, evidence);
                for (x, y) in ve.iter().zip(&bf) {
                    assert!((x - y).abs() < 1e-12, "{var} ev={evidence:?}");
                }
            }
        }
    }

    #[test]
    fn agrees_with_junction_tree() {
        let (net, vars) = diamond();
        let tree = crate::JunctionTree::compile(&net).unwrap();
        let mut prop = crate::Propagator::new(&tree, &net).unwrap();
        prop.set_evidence(vars[3], 1).unwrap();
        prop.calibrate();
        for var in &vars[..3] {
            let jt = prop.marginal(*var);
            let ve = eliminate(&net, *var, &[(vars[3], 1)], Heuristic::MinFill).unwrap();
            for (x, y) in jt.iter().zip(&ve) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn errors() {
        let net = BayesNet::new();
        assert!(matches!(
            eliminate(&net, VarId::from_index(0), &[], Heuristic::MinFill),
            Err(BayesError::Empty)
        ));
        let (net, [a, ..]) = diamond();
        assert!(matches!(
            eliminate(&net, a, &[(a, 9)], Heuristic::MinFill),
            Err(BayesError::EvidenceOutOfRange { .. })
        ));
    }
}
