use std::error::Error;
use std::fmt;

/// Errors produced while building or compiling a Bayesian network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BayesError {
    /// A variable name was declared twice.
    DuplicateVar(String),
    /// A parent id does not exist (parents must be added before children,
    /// which also guarantees acyclicity).
    UnknownVar(u32),
    /// A variable was declared with cardinality zero.
    ZeroCardinality(String),
    /// A variable listed the same parent twice (deduplicate and adapt the
    /// CPT instead).
    DuplicateParent {
        /// The child variable's name.
        var: String,
    },
    /// A CPT has the wrong number of rows or row width for its family.
    CptShape {
        /// Variable the CPT belongs to.
        var: String,
        /// Expected `(rows, columns)`.
        expected: (usize, usize),
        /// Supplied `(rows, columns of first offending row)`.
        got: (usize, usize),
    },
    /// A CPT row does not sum to one.
    CptNotNormalized {
        /// Variable the CPT belongs to.
        var: String,
        /// Index of the offending parent configuration.
        row: usize,
        /// The row's actual sum.
        sum: f64,
    },
    /// A CPT contains a negative or non-finite entry.
    CptInvalidEntry {
        /// Variable the CPT belongs to.
        var: String,
    },
    /// An observed state index is out of range for its variable.
    EvidenceOutOfRange {
        /// The observed variable.
        var: u32,
        /// The offending state.
        state: usize,
        /// The variable's cardinality.
        card: usize,
    },
    /// A soft-evidence factor's scope is not contained in any clique of the
    /// compiled junction tree, so it cannot be absorbed.
    FactorOutsideClique {
        /// The factor's variable ids.
        vars: Vec<u32>,
    },
    /// The network has no variables.
    Empty,
    /// Two factors disagree on a shared variable's cardinality.
    FactorCardinalityMismatch {
        /// The shared variable's id.
        var: u32,
        /// Cardinality on the left operand.
        left: usize,
        /// Cardinality on the right operand.
        right: usize,
    },
    /// Factor division requires both operands over the identical scope.
    FactorScopeMismatch,
    /// Factor division hit `x / 0` with `x ≠ 0`. Under the HUGIN
    /// convention only `0 / 0` (= 0) is well-defined; a nonzero numerator
    /// indicates inconsistent operands.
    FactorDivisionByZero {
        /// The nonzero numerator.
        value: f64,
    },
}

impl fmt::Display for BayesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BayesError::DuplicateVar(name) => {
                write!(f, "variable `{name}` is declared more than once")
            }
            BayesError::UnknownVar(id) => write!(f, "variable id {id} does not exist"),
            BayesError::ZeroCardinality(name) => {
                write!(f, "variable `{name}` has cardinality zero")
            }
            BayesError::DuplicateParent { var } => {
                write!(f, "variable `{var}` lists a parent twice")
            }
            BayesError::CptShape { var, expected, got } => write!(
                f,
                "cpt for `{var}` has shape {got:?}, expected {expected:?}"
            ),
            BayesError::CptNotNormalized { var, row, sum } => {
                write!(f, "cpt row {row} for `{var}` sums to {sum}, expected 1")
            }
            BayesError::CptInvalidEntry { var } => {
                write!(f, "cpt for `{var}` contains a negative or non-finite entry")
            }
            BayesError::EvidenceOutOfRange { var, state, card } => write!(
                f,
                "evidence state {state} for variable {var} exceeds cardinality {card}"
            ),
            BayesError::FactorOutsideClique { vars } => {
                write!(f, "no clique contains the factor scope {vars:?}")
            }
            BayesError::Empty => write!(f, "network has no variables"),
            BayesError::FactorCardinalityMismatch { var, left, right } => {
                write!(f, "cardinality mismatch for X{var}: {left} vs {right}")
            }
            BayesError::FactorScopeMismatch => {
                write!(f, "division requires identical scope")
            }
            BayesError::FactorDivisionByZero { value } => {
                write!(f, "division of nonzero {value} by zero sepset entry")
            }
        }
    }
}

impl Error for BayesError {}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(BayesError::Empty.to_string().contains("no variables"));
        let e = BayesError::CptNotNormalized {
            var: "x".into(),
            row: 2,
            sum: 0.5,
        };
        assert!(e.to_string().contains("row 2"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BayesError>();
    }
}
