//! Undirected-graph machinery for Bayesian-network compilation:
//! moralization and basic adjacency operations.

use std::collections::BTreeSet;

use crate::{BayesNet, VarId};

/// A simple undirected graph over dense node indices, used for moral graphs
/// and triangulation.
///
/// # Example
///
/// ```
/// use swact_bayesnet::graph::UndirectedGraph;
///
/// let mut g = UndirectedGraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert!(g.has_edge(1, 0));
/// assert!(!g.has_edge(0, 2));
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndirectedGraph {
    adjacency: Vec<BTreeSet<usize>>,
}

impl UndirectedGraph {
    /// Creates an edgeless graph with `n` nodes.
    pub fn new(n: usize) -> UndirectedGraph {
        UndirectedGraph {
            adjacency: vec![BTreeSet::new(); n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Adds an undirected edge. Self-loops are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        self.adjacency[a].insert(b);
        self.adjacency[b].insert(a);
    }

    /// Removes an edge if present.
    pub fn remove_edge(&mut self, a: usize, b: usize) {
        self.adjacency[a].remove(&b);
        self.adjacency[b].remove(&a);
    }

    /// Whether `a` and `b` are adjacent.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].contains(&b)
    }

    /// The neighbors of `node`, ascending.
    pub fn neighbors(&self, node: usize) -> &BTreeSet<usize> {
        &self.adjacency[node]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: usize) -> usize {
        self.adjacency[node].len()
    }

    /// Removes `node` from the graph (clears all incident edges; the node
    /// index stays valid but isolated).
    pub fn isolate(&mut self, node: usize) {
        let neighbors: Vec<usize> = self.adjacency[node].iter().copied().collect();
        for n in neighbors {
            self.remove_edge(node, n);
        }
    }

    /// Whether `nodes` form a clique.
    pub fn is_clique(&self, nodes: &[usize]) -> bool {
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                if !self.has_edge(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Connected components as sorted node lists.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut component = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(node) = stack.pop() {
                component.push(node);
                for &next in &self.adjacency[node] {
                    if !seen[next] {
                        seen[next] = true;
                        stack.push(next);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }
}

/// Builds the **moral graph** of a Bayesian network: for every variable,
/// its parents are pairwise connected ("married") and all directed edges
/// become undirected. The moral graph is the Markov structure of the
/// underlying joint distribution (paper §5, first compilation step).
///
/// # Example
///
/// ```
/// use swact_bayesnet::{graph::moral_graph, BayesNet, Cpt};
///
/// # fn main() -> Result<(), swact_bayesnet::BayesError> {
/// let mut net = BayesNet::new();
/// let a = net.add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))?;
/// let b = net.add_var("b", 2, &[], Cpt::prior(vec![0.5, 0.5]))?;
/// let c = net.add_var(
///     "c",
///     2,
///     &[a, b],
///     Cpt::rows(vec![vec![1.0, 0.0]; 4]),
/// )?;
/// let g = moral_graph(&net);
/// // a—c, b—c (directed edges) plus the moral edge a—b.
/// assert!(g.has_edge(a.index(), b.index()));
/// assert_eq!(g.num_edges(), 3);
/// # Ok(())
/// # }
/// ```
pub fn moral_graph(net: &BayesNet) -> UndirectedGraph {
    let mut g = UndirectedGraph::new(net.num_vars());
    for var in net.var_ids() {
        let parents = net.parents(var);
        for &p in parents {
            g.add_edge(var.index(), p.index());
        }
        for (i, &p) in parents.iter().enumerate() {
            for &q in &parents[i + 1..] {
                g.add_edge(p.index(), q.index());
            }
        }
    }
    g
}

/// Convenience: the moral-graph neighbors of a variable as `VarId`s.
pub fn moral_neighbors(net: &BayesNet, var: VarId) -> Vec<VarId> {
    moral_graph(net)
        .neighbors(var.index())
        .iter()
        .map(|&i| VarId::from_index(i))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::Cpt;

    #[test]
    fn basic_graph_operations() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 1); // duplicate ignored
        g.add_edge(2, 3);
        g.add_edge(0, 0); // self-loop ignored
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        g.remove_edge(0, 1);
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn isolate_clears_incident_edges() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.isolate(0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn clique_detection() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(g.is_clique(&[0, 1]));
        assert!(g.is_clique(&[3]));
        assert!(!g.is_clique(&[0, 1, 3]));
    }

    #[test]
    fn components_split() {
        let mut g = UndirectedGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn moralization_marries_parents() {
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let b = net
            .add_var("b", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let c = net
            .add_var("c", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let d = net
            .add_var("d", 2, &[a, b, c], Cpt::rows(vec![vec![1.0, 0.0]; 8]))
            .unwrap();
        let g = moral_graph(&net);
        // Three directed edges plus the triangle among {a,b,c}.
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_clique(&[a.index(), b.index(), c.index(), d.index()]));
    }

    #[test]
    fn moral_neighbors_of_collider_parent() {
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let b = net
            .add_var("b", 2, &[], Cpt::prior(vec![0.5, 0.5]))
            .unwrap();
        let _c = net
            .add_var("c", 2, &[a, b], Cpt::rows(vec![vec![1.0, 0.0]; 4]))
            .unwrap();
        let nbrs = moral_neighbors(&net, a);
        assert!(nbrs.contains(&b), "parents married");
    }
}
