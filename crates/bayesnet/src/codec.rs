//! Little-endian binary codec for compiled propagation artifacts.
//!
//! Serializes a [`CompiledTree`] — junction-tree structure, initial clique
//! potentials, message schedule, sparse kernels (supports + projection
//! tables), and home-variable dependency masks — field for field, so the
//! decoder reconstructs the exact struct the compiler produced without
//! re-running triangulation, kernel construction, or any other derivation.
//! Every `f64` travels as its IEEE 754 bit pattern ([`f64::to_bits`],
//! little-endian), which makes a loaded artifact *bit-identical* to the
//! fresh compile: identical potentials, identical iteration orders,
//! identical propagation results.
//!
//! The primitives ([`Writer`], [`Reader`]) are public so higher layers
//! (the `swact` artifact format) can frame this payload with their own
//! headers and checksums. Decoding here assumes the caller has already
//! integrity-checked the bytes (the artifact layer verifies a checksum
//! before handing them over); the reader still bounds every length against
//! the remaining input so a truncated or miscounted buffer yields a
//! [`CodecError`], never a panic or an unbounded allocation.

use std::fmt;

use crate::junction::{JunctionTree, TreeEdge};
use crate::sparse::{BlockedProj, EdgeProj, PropagationKernels, SideProj};
use crate::{CompiledTree, Factor, KernelMode, SparseMode, VarId};

/// Why a byte stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the announced structure did.
    Truncated,
    /// The bytes decode to an inconsistent structure (bad tag, impossible
    /// length, non-ascending factor scope, ...).
    Malformed(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("artifact payload is truncated"),
            CodecError::Malformed(m) => write!(f, "malformed artifact payload: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn malformed(message: impl Into<String>) -> CodecError {
    CodecError::Malformed(message.into())
}

/// Little-endian byte sink for artifact payloads.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// A `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `u128`, little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `usize`, widened to `u64` so the format is identical across
    /// pointer widths.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// An `f64` as its exact IEEE 754 bit pattern.
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// A boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Raw bytes, without a length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Little-endian byte source for artifact payloads. Every read is bounds-
/// checked; every decoded length is validated against the remaining input
/// before anything is allocated.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// A little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// A little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let mut out = [0u8; 8];
        out.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(out))
    }

    /// A little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, CodecError> {
        let mut out = [0u8; 16];
        out.copy_from_slice(self.take(16)?);
        Ok(u128::from_le_bytes(out))
    }

    /// A `usize` written by [`Writer::usize`].
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| malformed("count exceeds the address space"))
    }

    /// An `f64` from its exact bit pattern.
    pub fn f64_bits(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A boolean written by [`Writer::bool`].
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(malformed(format!("bad boolean byte {other}"))),
        }
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("string is not valid UTF-8"))
    }

    /// Raw bytes, without a length prefix.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// A collection length whose elements occupy at least `min_elem_bytes`
    /// each. Rejecting lengths the remaining input cannot possibly hold
    /// keeps a corrupted count from triggering a giant allocation.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = self.usize()?;
        if len.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(len)
    }

    /// Asserts the input is fully consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(malformed(format!(
                "{} trailing bytes after the payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn write_var(w: &mut Writer, v: VarId) {
    w.u32(v.index() as u32);
}

fn read_var(r: &mut Reader<'_>) -> Result<VarId, CodecError> {
    Ok(VarId::from_index(r.u32()? as usize))
}

fn write_var_list(w: &mut Writer, vars: &[VarId]) {
    w.usize(vars.len());
    for &v in vars {
        write_var(w, v);
    }
}

fn read_var_list(r: &mut Reader<'_>) -> Result<Vec<VarId>, CodecError> {
    let len = r.len(4)?;
    (0..len).map(|_| read_var(r)).collect()
}

fn write_usize_list(w: &mut Writer, list: &[usize]) {
    w.usize(list.len());
    for &v in list {
        w.usize(v);
    }
}

fn read_usize_list(r: &mut Reader<'_>) -> Result<Vec<usize>, CodecError> {
    let len = r.len(8)?;
    (0..len).map(|_| r.usize()).collect()
}

fn write_u32_list(w: &mut Writer, list: &[u32]) {
    w.usize(list.len());
    for &v in list {
        w.u32(v);
    }
}

fn read_u32_list(r: &mut Reader<'_>) -> Result<Vec<u32>, CodecError> {
    let len = r.len(4)?;
    (0..len).map(|_| r.u32()).collect()
}

/// Encodes one factor: scope `(var, card)` pairs followed by the value
/// table as raw `f64` bit patterns.
pub fn write_factor(w: &mut Writer, factor: &Factor) {
    w.usize(factor.vars().len());
    for (&var, &card) in factor.vars().iter().zip(factor.cards()) {
        write_var(w, var);
        w.usize(card);
    }
    w.usize(factor.values().len());
    for &v in factor.values() {
        w.f64_bits(v);
    }
}

/// Decodes one factor, validating the invariants [`Factor::new`] asserts
/// (strictly ascending scope, positive cardinalities, value count equal to
/// the state-space product) so corrupt bytes become a [`CodecError`]
/// instead of a panic.
pub fn read_factor(r: &mut Reader<'_>) -> Result<Factor, CodecError> {
    let scope_len = r.len(12)?;
    let mut scope = Vec::with_capacity(scope_len);
    let mut states = 1usize;
    for _ in 0..scope_len {
        let var = read_var(r)?;
        let card = r.usize()?;
        if card == 0 {
            return Err(malformed("factor cardinality is zero"));
        }
        if let Some(&(last, _)) = scope.last() {
            if var <= last {
                return Err(malformed("factor scope is not strictly ascending"));
            }
        }
        states = states
            .checked_mul(card)
            .ok_or_else(|| malformed("factor state space overflows"))?;
        scope.push((var, card));
    }
    let value_len = r.len(8)?;
    if value_len != states {
        return Err(malformed(format!(
            "factor has {value_len} values for a {states}-state scope"
        )));
    }
    let mut values = Vec::with_capacity(value_len);
    for _ in 0..value_len {
        values.push(r.f64_bits()?);
    }
    Ok(Factor::new(scope, values))
}

fn write_tree(w: &mut Writer, tree: &JunctionTree) {
    let (cliques, edges, incident, roots, home_clique, cpt_clique, cards, fill_edges, total_states) =
        tree.codec_parts();
    w.usize(cliques.len());
    for clique in cliques {
        write_var_list(w, clique);
    }
    w.usize(edges.len());
    for edge in edges {
        w.usize(edge.a);
        w.usize(edge.b);
        write_var_list(w, &edge.sepset);
    }
    w.usize(incident.len());
    for list in incident {
        write_usize_list(w, list);
    }
    write_usize_list(w, roots);
    write_usize_list(w, home_clique);
    write_usize_list(w, cpt_clique);
    write_usize_list(w, cards);
    w.usize(fill_edges);
    w.f64_bits(total_states);
}

fn read_tree(r: &mut Reader<'_>) -> Result<JunctionTree, CodecError> {
    let num_cliques = r.len(8)?;
    let mut cliques = Vec::with_capacity(num_cliques);
    for _ in 0..num_cliques {
        cliques.push(read_var_list(r)?);
    }
    let num_edges = r.len(24)?;
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let a = r.usize()?;
        let b = r.usize()?;
        if a >= num_cliques || b >= num_cliques {
            return Err(malformed("tree edge references a missing clique"));
        }
        let sepset = read_var_list(r)?;
        edges.push(TreeEdge { a, b, sepset });
    }
    let num_incident = r.len(8)?;
    if num_incident != num_cliques {
        return Err(malformed("incidence table size mismatches the cliques"));
    }
    let mut incident = Vec::with_capacity(num_incident);
    for _ in 0..num_incident {
        let list = read_usize_list(r)?;
        if list.iter().any(|&e| e >= num_edges) {
            return Err(malformed("incidence list references a missing edge"));
        }
        incident.push(list);
    }
    let roots = read_usize_list(r)?;
    let home_clique = read_usize_list(r)?;
    let cpt_clique = read_usize_list(r)?;
    let cards = read_usize_list(r)?;
    if roots.iter().any(|&c| c >= num_cliques)
        || home_clique.iter().any(|&c| c >= num_cliques)
        || cpt_clique.iter().any(|&c| c >= num_cliques)
    {
        return Err(malformed("clique assignment references a missing clique"));
    }
    if home_clique.len() != cards.len() || cpt_clique.len() != cards.len() {
        return Err(malformed("per-variable tables disagree on variable count"));
    }
    let fill_edges = r.usize()?;
    let total_states = r.f64_bits()?;
    Ok(JunctionTree::from_codec_parts(
        cliques,
        edges,
        incident,
        roots,
        home_clique,
        cpt_clique,
        cards,
        fill_edges,
        total_states,
    ))
}

fn mode_tag(mode: SparseMode) -> u8 {
    match mode {
        SparseMode::Auto => 0,
        SparseMode::On => 1,
        SparseMode::Off => 2,
    }
}

fn mode_from_tag(tag: u8) -> Result<SparseMode, CodecError> {
    match tag {
        0 => Ok(SparseMode::Auto),
        1 => Ok(SparseMode::On),
        2 => Ok(SparseMode::Off),
        other => Err(malformed(format!("unknown sparse-mode tag {other}"))),
    }
}

fn kernel_tag(kernel: KernelMode) -> u8 {
    match kernel {
        KernelMode::Scalar => 0,
        KernelMode::Simd => 1,
    }
}

fn kernel_from_tag(tag: u8) -> Result<KernelMode, CodecError> {
    match tag {
        0 => Ok(KernelMode::Scalar),
        1 => Ok(KernelMode::Simd),
        other => Err(malformed(format!("unknown kernel-mode tag {other}"))),
    }
}

fn write_side_proj(w: &mut Writer, side: &SideProj) {
    write_u32_list(w, &side.entries);
    match &side.blocked {
        None => w.u8(0),
        Some(blocked) => {
            w.u8(1);
            w.u32(blocked.copy_len);
            w.u32(blocked.sum_reps);
            write_u32_list(w, &blocked.base);
        }
    }
}

fn read_side_proj(r: &mut Reader<'_>) -> Result<SideProj, CodecError> {
    let entries = read_u32_list(r)?;
    let blocked = match r.u8()? {
        0 => None,
        1 => {
            let copy_len = r.u32()?;
            let sum_reps = r.u32()?;
            let base = read_u32_list(r)?;
            let total = (base.len() as u64) * u64::from(sum_reps) * u64::from(copy_len);
            if total != entries.len() as u64 {
                return Err(malformed(format!(
                    "blocked projection covers {total} entries for a {}-entry clique",
                    entries.len()
                )));
            }
            Some(BlockedProj {
                copy_len,
                sum_reps,
                base,
            })
        }
        other => return Err(malformed(format!("bad blocked-projection tag {other}"))),
    };
    Ok(SideProj { entries, blocked })
}

/// Encodes a [`CompiledTree`] — structure, potentials, schedule, kernels,
/// and dependency masks — into `w`.
pub fn write_compiled_tree(w: &mut Writer, compiled: &CompiledTree) {
    let (tree, potentials, schedule, kernels, mode, kernel, home_vars) = compiled.codec_parts();
    write_tree(w, tree);
    w.usize(potentials.len());
    for pot in potentials {
        write_factor(w, pot);
    }
    w.usize(schedule.len());
    for &(from, edge, to) in schedule {
        w.usize(from);
        w.usize(edge);
        w.usize(to);
    }
    w.usize(kernels.support.len());
    for support in &kernels.support {
        match support {
            None => w.u8(0),
            Some(list) => {
                w.u8(1);
                write_u32_list(w, list);
            }
        }
    }
    w.usize(kernels.edge_proj.len());
    for proj in &kernels.edge_proj {
        write_side_proj(w, &proj.a);
        write_side_proj(w, &proj.b);
    }
    w.usize(kernels.nnz);
    w.u8(mode_tag(mode));
    w.u8(kernel_tag(kernel));
    w.usize(home_vars.len());
    for vars in home_vars {
        write_var_list(w, vars);
    }
}

/// Decodes a [`CompiledTree`] written by [`write_compiled_tree`]. The
/// result is field-for-field identical to the encoded artifact; nothing is
/// re-derived, so propagation over the decoded tree is bit-identical to
/// propagation over the original.
pub fn read_compiled_tree(r: &mut Reader<'_>) -> Result<CompiledTree, CodecError> {
    let tree = read_tree(r)?;
    let num_potentials = r.len(8)?;
    if num_potentials != tree.num_cliques() {
        return Err(malformed("potential count mismatches the cliques"));
    }
    let mut potentials = Vec::with_capacity(num_potentials);
    for _ in 0..num_potentials {
        potentials.push(read_factor(r)?);
    }
    let schedule_len = r.len(24)?;
    let mut schedule = Vec::with_capacity(schedule_len);
    for _ in 0..schedule_len {
        let from = r.usize()?;
        let edge = r.usize()?;
        let to = r.usize()?;
        if from >= tree.num_cliques() || to >= tree.num_cliques() || edge >= tree.num_edges() {
            return Err(malformed("schedule step references a missing element"));
        }
        schedule.push((from, edge, to));
    }
    let support_len = r.len(1)?;
    if support_len != tree.num_cliques() {
        return Err(malformed("support table mismatches the cliques"));
    }
    let mut support = Vec::with_capacity(support_len);
    for _ in 0..support_len {
        support.push(match r.u8()? {
            0 => None,
            1 => Some(read_u32_list(r)?),
            other => return Err(malformed(format!("bad support tag {other}"))),
        });
    }
    let proj_len = r.len(16)?;
    if proj_len != tree.num_edges() {
        return Err(malformed("projection table mismatches the edges"));
    }
    let mut edge_proj = Vec::with_capacity(proj_len);
    for _ in 0..proj_len {
        let a = read_side_proj(r)?;
        let b = read_side_proj(r)?;
        edge_proj.push(EdgeProj { a, b });
    }
    let nnz = r.usize()?;
    let kernels = PropagationKernels {
        support,
        edge_proj,
        nnz,
    };
    let mode = mode_from_tag(r.u8()?)?;
    let kernel = kernel_from_tag(r.u8()?)?;
    let home_len = r.len(8)?;
    if home_len != tree.num_cliques() {
        return Err(malformed("home-variable masks mismatch the cliques"));
    }
    let mut home_vars = Vec::with_capacity(home_len);
    for _ in 0..home_len {
        home_vars.push(read_var_list(r)?);
    }
    Ok(CompiledTree::from_codec_parts(
        tree, potentials, schedule, kernels, mode, kernel, home_vars,
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{BayesNet, Cpt, JunctionTree};

    fn chain_net() -> BayesNet {
        let mut net = BayesNet::new();
        let a = net
            .add_var("a", 2, &[], Cpt::prior(vec![0.25, 0.75]))
            .unwrap();
        let b = net
            .add_var(
                "b",
                2,
                &[a],
                Cpt::rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]),
            )
            .unwrap();
        net.add_var(
            "c",
            4,
            &[b],
            Cpt::rows(vec![vec![0.5, 0.5, 0.0, 0.0], vec![0.0, 0.0, 0.5, 0.5]]),
        )
        .unwrap();
        net
    }

    fn compile(mode: SparseMode) -> CompiledTree {
        let net = chain_net();
        let tree = JunctionTree::compile(&net).unwrap();
        let potentials = crate::initial_potentials(&tree, &net);
        CompiledTree::from_parts_with(tree, potentials, mode)
    }

    #[test]
    fn kernel_mode_round_trips() {
        let net = chain_net();
        for kernel in KernelMode::ALL {
            let tree = JunctionTree::compile(&net).unwrap();
            let potentials = crate::initial_potentials(&tree, &net);
            let compiled =
                CompiledTree::from_parts_with_kernel(tree, potentials, SparseMode::Auto, kernel);
            let decoded = round_trip(&compiled);
            assert_eq!(decoded.kernel_mode(), kernel);
        }
    }

    fn round_trip(compiled: &CompiledTree) -> CompiledTree {
        let mut w = Writer::new();
        write_compiled_tree(&mut w, compiled);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = read_compiled_tree(&mut r).unwrap();
        r.finish().unwrap();
        decoded
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.u128(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        w.usize(42);
        w.f64_bits(-0.0);
        w.bool(true);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.u128().unwrap(), 0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64_bits().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut w = Writer::new();
        w.u64(9);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..3]);
        assert_eq!(r.u64(), Err(CodecError::Truncated));
        // A length the remaining bytes cannot hold is rejected before any
        // allocation happens.
        let mut w = Writer::new();
        w.usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.len(8), Err(CodecError::Truncated));
    }

    #[test]
    fn compiled_tree_round_trips_bit_identically() {
        for mode in SparseMode::ALL {
            let compiled = compile(mode);
            let decoded = round_trip(&compiled);
            assert_eq!(decoded.sparse_mode(), compiled.sparse_mode());
            assert_eq!(decoded.nnz(), compiled.nnz());
            assert_eq!(decoded.state_space(), compiled.state_space());
            assert_eq!(decoded.message_schedule(), compiled.message_schedule());
            assert_eq!(
                decoded.compressed_cliques(),
                compiled.compressed_cliques(),
                "mode {mode:?}"
            );
            assert_eq!(decoded.tree().num_cliques(), compiled.tree().num_cliques());
            for (a, b) in decoded
                .initial_potentials()
                .iter()
                .zip(compiled.initial_potentials())
            {
                assert_eq!(a.vars(), b.vars());
                let a_bits: Vec<u64> = a.values().iter().map(|v| v.to_bits()).collect();
                let b_bits: Vec<u64> = b.values().iter().map(|v| v.to_bits()).collect();
                assert_eq!(a_bits, b_bits, "potentials must be bit-identical");
            }
            // Propagation over the decoded artifact matches the original
            // bit for bit.
            let mut orig_state = compiled.new_state();
            let mut dec_state = decoded.new_state();
            compiled
                .set_likelihood(&mut orig_state, VarId::from_index(0), vec![0.6, 1.4])
                .unwrap();
            decoded
                .set_likelihood(&mut dec_state, VarId::from_index(0), vec![0.6, 1.4])
                .unwrap();
            compiled.calibrate(&mut orig_state);
            decoded.calibrate(&mut dec_state);
            for var in 0..3 {
                let a = compiled.marginal(&orig_state, VarId::from_index(var));
                let b = decoded.marginal(&dec_state, VarId::from_index(var));
                let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a_bits, b_bits);
            }
        }
    }

    #[test]
    fn corrupt_structures_are_rejected() {
        let compiled = compile(SparseMode::Auto);
        let mut w = Writer::new();
        write_compiled_tree(&mut w, &compiled);
        let bytes = w.into_bytes();
        // Any truncation errors instead of panicking.
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(read_compiled_tree(&mut r).is_err(), "cut at {cut}");
        }
        // A wild clique count is caught by the length bound.
        let mut mangled = bytes.clone();
        mangled[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut r = Reader::new(&mangled);
        assert!(read_compiled_tree(&mut r).is_err());
    }

    #[test]
    fn factor_validation_rejects_bad_scopes() {
        // Scope out of order.
        let mut w = Writer::new();
        w.usize(2);
        w.u32(5);
        w.usize(2);
        w.u32(3);
        w.usize(2);
        w.usize(4);
        for _ in 0..4 {
            w.f64_bits(0.25);
        }
        let bytes = w.into_bytes();
        assert!(matches!(
            read_factor(&mut Reader::new(&bytes)),
            Err(CodecError::Malformed(_))
        ));
        // Value count disagrees with the cardinality product.
        let mut w = Writer::new();
        w.usize(1);
        w.u32(0);
        w.usize(4);
        w.usize(2);
        w.f64_bits(0.5);
        w.f64_bits(0.5);
        let bytes = w.into_bytes();
        assert!(matches!(
            read_factor(&mut Reader::new(&bytes)),
            Err(CodecError::Malformed(_))
        ));
    }
}
