//! End-to-end service tests: a real `Server` on an ephemeral port, driven
//! by plain `TcpStream` clients speaking HTTP/1.1.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use swact::{wire, InputSpec, Options};
use swact_circuit::catalog;
use swact_serve::admission::{ClientPolicy, ClientTable};
use swact_serve::{Server, ServerConfig};

/// A parsed HTTP response: status, headers, body (de-chunked if needed).
struct HttpResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl HttpResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response off the socket.
fn call(addr: std::net::SocketAddr, request: &str) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let raw = String::from_utf8(raw).expect("utf8 response");

    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body split");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .map(|l| {
            let (n, v) = l.split_once(':').expect("header");
            (n.trim().to_string(), v.trim().to_string())
        })
        .collect();

    let chunked = headers
        .iter()
        .any(|(n, v)| n.eq_ignore_ascii_case("transfer-encoding") && v == "chunked");
    let body = if chunked {
        dechunk(body)
    } else {
        body.to_string()
    };
    HttpResponse {
        status,
        headers,
        body,
    }
}

/// Reassembles a chunked body.
fn dechunk(raw: &str) -> String {
    let mut out = String::new();
    let mut rest = raw;
    loop {
        let (size_line, tail) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            return out;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..]; // skip the chunk's trailing CRLF
    }
}

fn post(path: &str, client: Option<&str>, body: &str) -> String {
    let client_header = client
        .map(|c| format!("X-Swact-Client: {c}\r\n"))
        .unwrap_or_default();
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\n{client_header}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n")
}

fn start_server(clients: ClientTable) -> Server {
    start_server_with(clients, None)
}

fn start_server_with(clients: ClientTable, cache_dir: Option<std::path::PathBuf>) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        handlers: 3,
        clients,
        drain: Duration::from_secs(5),
        cache_dir,
    })
    .expect("bind ephemeral port")
}

/// Extracts every `"switching":<x>` float from a response body.
fn switching_values(json: &str) -> Vec<f64> {
    json.split("\"switching\":")
        .skip(1)
        .map(|chunk| {
            let end = chunk.find(['}', ',']).expect("delimiter");
            chunk[..end].parse::<f64>().expect("float")
        })
        .collect()
}

#[test]
fn estimate_over_tcp_is_bit_identical_to_a_direct_engine_call() {
    let server = start_server(ClientTable::default());
    let addr = server.local_addr();

    let body = r#"{"circuit":"c17","p1":[0.1,0.2,0.3,0.4,0.5]}"#;
    let response = call(addr, &post("/v1/estimate", Some("alice"), body));
    assert_eq!(response.status, 200);
    assert_eq!(response.header("content-type"), Some("application/json"));

    // The same scenario computed directly, bypassing the server.
    let circuit = catalog::c17();
    let spec = InputSpec::independent(vec![0.1, 0.2, 0.3, 0.4, 0.5]);
    let direct = swact::estimate(&circuit, &spec, &Options::default()).expect("direct estimate");

    // The whole response body matches the wire encoding of the direct
    // result — float bits included.
    assert_eq!(response.body, wire::estimate_json(&direct, &circuit));
    let got = switching_values(&response.body);
    let expected = direct.switching_all();
    assert_eq!(got.len(), expected.len());
    for (g, e) in got.iter().zip(&expected) {
        assert_eq!(g.to_bits(), e.to_bits());
    }

    server.handle().shutdown();
    server.wait();
}

#[test]
fn batch_preserves_submission_order_and_flags_cache_hits() {
    let server = start_server(ClientTable::default());
    let addr = server.local_addr();

    let body = r#"{"circuit":"c17","scenarios":[{"p1":[0.1,0.1,0.1,0.1,0.1]},{"p1":[0.9,0.9,0.9,0.9,0.9]},{}]}"#;
    let first = call(addr, &post("/v1/batch", None, body));
    assert_eq!(first.status, 200);
    assert!(first
        .body
        .starts_with("{\"circuit\":\"c17\",\"cache_hit\":false,"));
    for i in 0..3 {
        assert!(
            first.body.contains(&format!("{{\"index\":{i},\"ok\":")),
            "item {i} present and ok"
        );
    }
    // Submission order on the wire.
    let p0 = first.body.find("\"index\":0").expect("item 0");
    let p1 = first.body.find("\"index\":1").expect("item 1");
    let p2 = first.body.find("\"index\":2").expect("item 2");
    assert!(p0 < p1 && p1 < p2);

    // Same request again: compiled junction trees are reused.
    let second = call(addr, &post("/v1/batch", None, body));
    assert!(second
        .body
        .starts_with("{\"circuit\":\"c17\",\"cache_hit\":true,"));
    // The estimates themselves are bit-identical across runs (the `reuse`
    // metadata legitimately differs — the warm run serves from caches).
    let a = switching_values(&first.body);
    let b = switching_values(&second.body);
    assert!(!a.is_empty());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }

    server.handle().shutdown();
    server.wait();
}

/// The degradation-ladder summary and accuracy report introduced for the
/// sampling rung round-trip through both inference endpoints: every
/// estimate object carries an `accuracy` field (null for exact backends)
/// and a `degradation_counts` object with one counter per rung, matching
/// the wire encoding of a direct engine call byte for byte.
#[test]
fn estimate_and_batch_report_accuracy_and_per_rung_counts() {
    let server = start_server(ClientTable::default());
    let addr = server.local_addr();

    let body = r#"{"circuit":"c17","p1":[0.1,0.2,0.3,0.4,0.5]}"#;
    let single = call(addr, &post("/v1/estimate", None, body));
    assert_eq!(single.status, 200);
    assert!(single.body.contains("\"accuracy\":null"));
    assert!(single
        .body
        .contains("\"degradation_counts\":{\"replanned\":0,\"twostate\":0,\"sampling\":0}"));

    let circuit = catalog::c17();
    let spec = InputSpec::independent(vec![0.1, 0.2, 0.3, 0.4, 0.5]);
    let direct = swact::estimate(&circuit, &spec, &Options::default()).expect("direct estimate");
    assert_eq!(
        wire::degradation_counts_json(direct.degradations()),
        "{\"replanned\":0,\"twostate\":0,\"sampling\":0}"
    );
    assert_eq!(single.body, wire::estimate_json(&direct, &circuit));

    let batch_body = r#"{"circuit":"c17","scenarios":[{"p1":[0.1,0.2,0.3,0.4,0.5]},{}]}"#;
    let batch = call(addr, &post("/v1/batch", None, batch_body));
    assert_eq!(batch.status, 200);
    assert_eq!(batch.body.matches("\"accuracy\":").count(), 2);
    assert_eq!(batch.body.matches("\"degradation_counts\":").count(), 2);

    server.handle().shutdown();
    server.wait();
}

#[test]
fn sweep_streams_one_chunked_line_per_scenario_in_order() {
    let server = start_server(ClientTable::default());
    let addr = server.local_addr();

    // Build the request from the same f64 values the direct comparison
    // uses, encoded shortest-round-trip, so the server parses back the
    // identical bits.
    let levels = [0.2f64, 0.4, 0.6, 0.8];
    let scenarios: Vec<String> = levels
        .iter()
        .map(|&p| format!("{{\"p1\":[{0},{0},{0},{0},{0}]}}", wire::number(p)))
        .collect();
    let body = format!(
        "{{\"circuit\":\"c17\",\"scenarios\":[{}]}}",
        scenarios.join(",")
    );
    let response = call(addr, &post("/v1/sweep", Some("sweeper"), &body));
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("transfer-encoding"),
        Some("chunked"),
        "sweeps stream"
    );
    assert_eq!(
        response.header("content-type"),
        Some("application/x-ndjson")
    );

    let lines: Vec<&str> = response.body.lines().collect();
    assert_eq!(lines.len(), 4);
    let circuit = catalog::c17();
    for (i, line) in lines.iter().enumerate() {
        assert!(line.starts_with(&format!("{{\"index\":{i},\"ok\":")));
        // Each line is bit-identical to the direct computation.
        let spec = InputSpec::independent(vec![levels[i]; 5]);
        let direct =
            swact::estimate(&circuit, &spec, &Options::default()).expect("direct estimate");
        let got = switching_values(line);
        for (g, e) in got.iter().zip(&direct.switching_all()) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    server.handle().shutdown();
    server.wait();
}

#[test]
fn two_concurrent_clients_succeed_while_a_zero_quota_client_gets_429() {
    let mut clients = ClientTable::default();
    clients.insert(
        "blocked",
        ClientPolicy {
            max_in_flight: Some(0),
            budget: swact::Budget::UNLIMITED,
        },
    );
    let server = start_server(clients);
    let addr = server.local_addr();

    // Two clients in flight at once, distinct scenarios each.
    let a = std::thread::spawn(move || {
        call(
            addr,
            &post(
                "/v1/estimate",
                Some("alice"),
                r#"{"circuit":"c17","p1":[0.3,0.3,0.3,0.3,0.3]}"#,
            ),
        )
    });
    let b = std::thread::spawn(move || {
        call(
            addr,
            &post(
                "/v1/estimate",
                Some("bob"),
                r#"{"circuit":"c17","p1":[0.7,0.7,0.7,0.7,0.7]}"#,
            ),
        )
    });
    let (ra, rb) = (a.join().expect("alice"), b.join().expect("bob"));
    assert_eq!(ra.status, 200);
    assert_eq!(rb.status, 200);
    assert_ne!(ra.body, rb.body, "different scenarios, different answers");

    // The revoked token is turned away with a structured body.
    let blocked = call(
        addr,
        &post(
            "/v1/estimate",
            Some("blocked"),
            r#"{"circuit":"c17","p1":[0.5,0.5,0.5,0.5,0.5]}"#,
        ),
    );
    assert_eq!(blocked.status, 429);
    assert_eq!(blocked.header("retry-after"), Some("1"));
    assert!(blocked.body.contains("\"code\":\"over_quota\""));

    // The throttle shows up on the metrics endpoint.
    let metrics = call(addr, &get("/metrics"));
    assert!(metrics.body.contains("swact_server_throttled_total 1\n"));

    server.handle().shutdown();
    server.wait();
}

#[test]
fn metrics_and_healthz_report_server_and_engine_state() {
    let server = start_server(ClientTable::default());
    let addr = server.local_addr();

    let health = call(addr, &get("/healthz"));
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\":\"ok\"}");

    call(
        addr,
        &post(
            "/v1/estimate",
            None,
            r#"{"circuit":"c17","p1":[0.5,0.5,0.5,0.5,0.5]}"#,
        ),
    );

    let metrics = call(addr, &get("/metrics"));
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/plain")));
    // Server-side counters.
    assert!(metrics
        .body
        .contains("swact_server_requests_total{endpoint=\"estimate\"} 1\n"));
    assert!(metrics
        .body
        .contains("swact_server_responses_total{endpoint=\"estimate\",class=\"2xx\"} 1\n"));
    // Engine counters exported through MetricsSnapshot::fields().
    assert!(metrics.body.contains("swact_engine_compile_misses 1\n"));
    assert!(metrics.body.contains("swact_engine_requests_completed 1\n"));

    server.handle().shutdown();
    server.wait();
}

#[test]
fn typed_errors_map_to_statuses_with_structured_bodies() {
    let mut clients = ClientTable::default();
    clients.insert(
        "tiny-deadline",
        ClientPolicy {
            max_in_flight: None,
            budget: swact::Budget::deadline(Duration::ZERO),
        },
    );
    let server = start_server(clients);
    let addr = server.local_addr();

    // Unknown catalog name → 404.
    let missing = call(
        addr,
        &post("/v1/estimate", None, r#"{"circuit":"not-a-benchmark"}"#),
    );
    assert_eq!(missing.status, 404);
    assert!(missing.body.contains("\"code\":\"unknown_circuit\""));

    // Malformed JSON → 400 with the parser's offset in the message.
    let bad = call(addr, &post("/v1/estimate", None, "{nope"));
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("\"code\":\"bad_json\""));

    // Mismatched p1 length → 400 (engine-side validation error).
    let mismatch = call(
        addr,
        &post("/v1/estimate", None, r#"{"circuit":"c17","p1":[0.5]}"#),
    );
    assert_eq!(mismatch.status, 400);
    assert!(mismatch.body.contains("\"code\":\"invalid_request\""));

    // A zero deadline trips the engine's queue-deadline shed → 504.
    let late = call(
        addr,
        &post(
            "/v1/estimate",
            Some("tiny-deadline"),
            r#"{"circuit":"c17","p1":[0.5,0.5,0.5,0.5,0.5]}"#,
        ),
    );
    assert_eq!(late.status, 504);
    assert!(late.body.contains("\"code\":\"deadline_exceeded\""));

    // Wrong route → 404.
    let lost = call(addr, &get("/v2/nothing"));
    assert_eq!(lost.status, 404);
    assert!(lost.body.contains("\"code\":\"not_found\""));

    server.handle().shutdown();
    server.wait();
}

#[test]
fn inline_bench_netlists_are_accepted() {
    let server = start_server(ClientTable::default());
    let addr = server.local_addr();

    let netlist = "INPUT(a)\\nINPUT(b)\\nOUTPUT(y)\\ny = AND(a, b)";
    let body = format!("{{\"bench\":\"{netlist}\",\"p1\":[0.5,0.5]}}");
    let response = call(addr, &post("/v1/estimate", None, &body));
    assert_eq!(response.status, 200, "body: {}", response.body);
    assert!(response.body.starts_with("{\"circuit\":\"inline\""));
    assert!(response.body.contains("\"name\":\"y\""));

    server.handle().shutdown();
    server.wait();
}

#[test]
fn graceful_shutdown_drains_and_flips_healthz() {
    let server = start_server(ClientTable::default());
    let addr = server.local_addr();

    assert_eq!(call(addr, &get("/healthz")).status, 200);

    // Shutdown over the wire.
    let accepted = call(addr, &post("/admin/shutdown", None, ""));
    assert_eq!(accepted.status, 202);

    // Already-accepted connections still get answered while draining;
    // healthz now reports draining. (The acceptor may take a beat to
    // close the listener, so connects can still succeed briefly.)
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let request = get("/healthz");
        if stream.write_all(request.as_bytes()).is_ok() {
            let mut raw = String::new();
            let _ = stream.read_to_string(&mut raw);
            if let Some(status_line) = raw.lines().next() {
                assert!(
                    status_line.contains("503"),
                    "draining healthz must be 503, got: {status_line}"
                );
            }
        }
    }

    // wait() returns: acceptor and handlers all joined.
    server.wait();
}

#[test]
fn warm_start_serves_bit_identical_estimates_without_compiling() {
    let dir = std::env::temp_dir().join(format!("swact-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let body = r#"{"circuit":"c17","p1":[0.2,0.4,0.6,0.8,0.35]}"#;

    // First server lifetime: compile once, persist the artifact.
    let cold = start_server_with(ClientTable::default(), Some(dir.clone()));
    let cold_addr = cold.local_addr();
    let first = call(cold_addr, &post("/v1/estimate", None, body));
    assert_eq!(first.status, 200);
    let cold_metrics = cold.engine_metrics();
    assert_eq!(cold_metrics.artifacts_persisted, 1);
    cold.handle().shutdown();
    cold.wait();

    // Second lifetime (fresh engine = fresh process stand-in): healthz
    // reports warming until the pre-warm scan finishes, then the same
    // request is served from the loaded artifact with zero compiles.
    let warm = start_server_with(ClientTable::default(), Some(dir.clone()));
    let warm_addr = warm.local_addr();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let health = call(warm_addr, &get("/healthz"));
        if health.status == 200 {
            break;
        }
        assert_eq!(health.status, 503);
        assert_eq!(health.body, "{\"status\":\"warming\"}");
        assert!(
            std::time::Instant::now() < deadline,
            "pre-warm never finished"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let second = call(warm_addr, &post("/v1/estimate", None, body));
    assert_eq!(second.status, 200);
    assert_eq!(
        second.body, first.body,
        "warm-start responses must be byte-identical"
    );
    let warm_metrics = warm.engine_metrics();
    assert_eq!(warm_metrics.artifacts_loaded, 1);
    assert_eq!(
        warm_metrics.compile_misses, 0,
        "warm start must not compile"
    );

    // The artifact counters surface on /metrics for operators.
    let metrics = call(warm_addr, &get("/metrics"));
    assert!(metrics.body.contains("swact_engine_artifacts_loaded 1\n"));

    warm.handle().shutdown();
    warm.wait();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
