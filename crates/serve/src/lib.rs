//! swact-serve: a networked switching-activity inference service.
//!
//! Wraps a [`swact_engine::Engine`] in a small HTTP/1.1 + JSON server
//! built entirely on `std::net` (the workspace is vendored/offline — no
//! async runtime, no HTTP framework). The service turns the engine's
//! compile-once/propagate-many economics into a long-running process:
//! compiled junction trees stay cached across requests, so the steady
//! state is pure propagation.
//!
//! # Endpoints
//!
//! | Endpoint                | Body | Response |
//! |-------------------------|------|----------|
//! | `POST /v1/estimate`     | one circuit + input spec | the full [`Estimate`](swact::Estimate) as JSON |
//! | `POST /v1/batch`        | one circuit + N scenarios | per-scenario results in submission order |
//! | `POST /v1/sweep`        | one circuit + N scenarios | chunked stream: one JSON line per scenario |
//! | `GET /metrics`          | — | Prometheus text: engine + server counters |
//! | `GET /healthz`          | — | `200` serving / `503` draining |
//! | `POST /admin/shutdown`  | — | `202`, then graceful drain |
//!
//! # Admission control
//!
//! Clients identify with `X-Swact-Client`; each token maps to an
//! in-flight quota and a resource [`Budget`](swact::Budget) (see
//! [`admission`]). Over-quota requests get `429`; engine failures map to
//! typed statuses (`504` deadline, `422` budget, `500` panic) with
//! structured JSON error bodies — see [`error_status`].
//!
//! # Determinism
//!
//! Responses are byte-deterministic for a given engine state: floats are
//! encoded shortest-round-trip ([`swact::wire`]), object keys have fixed
//! order, and batch items come back in submission order. A client
//! parsing the JSON recovers the exact bits a direct [`Engine`] call
//! produces.

#![deny(clippy::unwrap_used)]

pub mod admission;
pub mod http;
pub mod json;
pub mod metrics;

mod signal;

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use swact::{wire, EstimateError, InputModel, InputSpec, Options};
use swact_circuit::{catalog, Circuit};
use swact_engine::{Engine, ShutdownMode};

use admission::ClientTable;
use http::{ChunkedWriter, HttpError, Request};
use json::Value;
use metrics::{classify, Endpoint, ServerMetrics};

pub use admission::{AdmissionGuard, ClientPolicy};
pub use signal::install_signal_handler;

/// How a [`Server`] is built.
#[derive(Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral
    /// port — read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Engine worker threads (`0` = one per CPU).
    pub jobs: usize,
    /// Connection-handler threads.
    pub handlers: usize,
    /// Per-client admission policies.
    pub clients: ClientTable,
    /// How long a graceful shutdown waits for in-flight work before
    /// cancelling whatever is still queued in the engine.
    pub drain: Duration,
    /// Disk tier for compiled models: the engine consults this directory
    /// before compiling and persists fresh compiles back, and the server
    /// pre-warms from it at boot (`/healthz` answers `503 warming` until
    /// the scan finishes). `None` keeps the cache memory-only.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            jobs: 0,
            handlers: 4,
            clients: ClientTable::default(),
            drain: Duration::from_secs(10),
            cache_dir: None,
        }
    }
}

/// Shared server state: the engine, admission table, counters, and the
/// coordination flags the acceptor/handlers/shutdown paths agree on.
struct Inner {
    engine: Engine,
    clients: ClientTable,
    metrics: ServerMetrics,
    /// Set once by any shutdown trigger; the acceptor stops accepting and
    /// `/healthz` flips to 503.
    stop: AtomicBool,
    /// Cleared until the boot-time artifact pre-warm finishes; `/healthz`
    /// answers `503 warming` while it is unset so orchestrators do not
    /// route traffic at a cold cache. Starts `true` without a cache dir.
    ready: AtomicBool,
    /// Connection-handler thread count — the denominator when deriving
    /// `Retry-After` from backlog.
    handlers: usize,
    /// Connections accepted but not yet picked up by a handler.
    queue: Mutex<VecDeque<TcpStream>>,
    /// Signals handlers when a connection (or shutdown) is ready.
    available: Condvar,
}

impl Inner {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }
}

/// A running service instance.
///
/// [`Server::start`] spawns the acceptor and handler threads and returns
/// immediately; [`Server::wait`] blocks until the server has shut down
/// (via [`ServerHandle::shutdown`], `POST /admin/shutdown`, or an
/// installed signal handler). Dropping the server also shuts it down.
pub struct Server {
    inner: Arc<Inner>,
    local_addr: std::net::SocketAddr,
    drain: Duration,
    acceptor: Option<std::thread::JoinHandle<()>>,
    handlers: Vec<std::thread::JoinHandle<()>>,
}

/// A cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Triggers a graceful shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.inner.request_stop();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.stopping()
    }

    /// A point-in-time copy of the engine's counters (usable after the
    /// server itself has been consumed by [`Server::wait`]).
    pub fn engine_metrics(&self) -> swact_engine::MetricsSnapshot {
        self.inner.engine.metrics()
    }
}

impl Server {
    /// Binds the listener, spins up the engine and thread pools, and
    /// starts serving.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // Nonblocking accept + short sleeps: lets the acceptor poll the
        // stop flag (set by handlers or a signal) without a self-pipe.
        listener.set_nonblocking(true)?;

        let mut engine = match config.jobs {
            0 => Engine::new(),
            n => Engine::with_jobs(n),
        };
        if let Some(dir) = &config.cache_dir {
            engine = engine.with_cache_dir(dir);
        }
        let warm_start = config.cache_dir.is_some();
        let inner = Arc::new(Inner {
            engine,
            clients: config.clients,
            metrics: ServerMetrics::default(),
            stop: AtomicBool::new(false),
            ready: AtomicBool::new(!warm_start),
            handlers: config.handlers.max(1),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });

        if warm_start {
            // Pre-warm off the startup path: the listener is live (so
            // `/healthz` can answer `warming`), but readiness flips only
            // once every persisted model is in the memory tier.
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                inner.engine.prewarm();
                inner.ready.store(true, Ordering::SeqCst);
            });
        }

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&listener, &inner))
        };
        let handlers = (0..config.handlers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || handler_loop(&inner))
            })
            .collect();

        Ok(Server {
            inner,
            local_addr,
            drain: config.drain,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// A remote control usable from other threads (and the signal path).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// A point-in-time copy of the engine's counters.
    pub fn engine_metrics(&self) -> swact_engine::MetricsSnapshot {
        self.inner.engine.metrics()
    }

    /// Blocks until the server shuts down, then drains: stops accepting,
    /// waits up to the configured drain deadline for in-flight requests,
    /// cancels any engine work still queued past the deadline, and joins
    /// every thread.
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return; // already joined
        };
        // Acceptor exits on its own once `stop` is set (or a signal
        // arrives); it notifies the handlers on the way out.
        let _ = acceptor.join();

        // Drain phase: give in-flight connections until the deadline,
        // then cancel queued engine jobs so handlers come home fast.
        let deadline = Instant::now() + self.drain;
        loop {
            let idle = {
                let queue = self
                    .inner
                    .queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                queue.is_empty() && self.inner.clients.total_in_flight() == 0
            };
            if idle {
                break;
            }
            if Instant::now() >= deadline {
                self.inner.engine.shutdown(ShutdownMode::CancelQueued);
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.inner.available.notify_all();
        for handler in self.handlers.drain(..) {
            let _ = handler.join();
        }
        // Idempotent if the deadline path already cancelled.
        self.inner.engine.shutdown(ShutdownMode::Drain);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.inner.request_stop();
        self.join_all();
    }
}

/// Accepts connections until shutdown, pushing them to the handler queue.
fn accept_loop(listener: &TcpListener, inner: &Inner) {
    loop {
        if inner.stopping() || signal::signalled() {
            inner.request_stop();
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.metrics.connection_accepted();
                inner
                    .queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push_back(stream);
                inner.available.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            // Transient accept errors (EMFILE, aborted handshake): keep
            // serving; the alternative is taking the whole service down.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Pops connections and serves them until shutdown *and* queue empty.
fn handler_loop(inner: &Inner) {
    loop {
        let stream = {
            let mut queue = inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if inner.stopping() {
                    break None;
                }
                queue = inner
                    .available
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        let Some(mut stream) = stream else { return };
        handle_connection(inner, &mut stream);
    }
}

/// One request-response exchange (connections are `Connection: close`).
fn handle_connection(inner: &Inner, stream: &mut TcpStream) {
    // A peer that connects and goes silent must not pin a handler.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = match http::read_request(stream) {
        Ok(request) => request,
        Err(HttpError::BadRequest(message)) => {
            let _ = respond_error(stream, 400, "bad_request", &message);
            return;
        }
        Err(HttpError::Io(_)) => return, // peer went away; nothing to say
    };

    let endpoint = classify(&request.method, &request.path);
    inner.metrics.request_started(endpoint);
    let started = Instant::now();
    let status = route(inner, stream, endpoint, &request).unwrap_or(0);
    inner
        .metrics
        .request_finished(endpoint, status, started.elapsed());
}

/// Dispatches one request; returns the response status for accounting
/// (`Err` means the socket died mid-response).
fn route(
    inner: &Inner,
    stream: &mut TcpStream,
    endpoint: Endpoint,
    request: &Request,
) -> io::Result<u16> {
    match endpoint {
        Endpoint::Healthz => {
            if inner.stopping() {
                respond_json(stream, 503, "{\"status\":\"draining\"}")
            } else if !inner.ready.load(Ordering::SeqCst) {
                respond_json(stream, 503, "{\"status\":\"warming\"}")
            } else {
                respond_json(stream, 200, "{\"status\":\"ok\"}")
            }
        }
        Endpoint::Metrics => {
            let body = inner.metrics.render_prometheus(&inner.engine.metrics());
            http::write_response(
                stream,
                200,
                "text/plain; version=0.0.4",
                body.as_bytes(),
                &[],
            )?;
            Ok(200)
        }
        Endpoint::Shutdown => {
            inner.request_stop();
            respond_json(stream, 202, "{\"status\":\"shutting-down\"}")
        }
        Endpoint::Estimate | Endpoint::Batch | Endpoint::Sweep => {
            if inner.stopping() {
                return respond_error(stream, 503, "draining", "server is shutting down");
            }
            let token = request.header("x-swact-client");
            let guard = match inner.clients.try_admit(token) {
                Ok(guard) => guard,
                Err(_policy) => {
                    inner.metrics.throttled();
                    let queued = inner
                        .queue
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .len();
                    let backoff = retry_after_seconds(
                        queued,
                        inner.clients.total_in_flight(),
                        inner.handlers,
                    );
                    http::write_response(
                        stream,
                        429,
                        "application/json",
                        error_body("over_quota", "client in-flight quota exhausted").as_bytes(),
                        &[("Retry-After", backoff.to_string())],
                    )?;
                    return Ok(429);
                }
            };
            match parse_inference_request(request, endpoint) {
                Ok(parsed) => serve_inference(inner, stream, endpoint, &parsed, &guard),
                Err((status, code, message)) => respond_error(stream, status, code, &message),
            }
        }
        Endpoint::Other => respond_error(
            stream,
            404,
            "not_found",
            &format!("no route for {} {}", request.method, request.path),
        ),
    }
}

/// A validated inference request: the circuit plus one spec per scenario.
struct InferenceRequest {
    circuit: Circuit,
    scenarios: Vec<InputSpec>,
}

type RequestError = (u16, &'static str, String);

fn bad(code: &'static str, message: impl Into<String>) -> RequestError {
    (400, code, message.into())
}

/// Parses and validates an estimate/batch/sweep body.
///
/// ```json
/// {
///   "circuit": "c17",              // catalog name, or
///   "bench": "INPUT(a) ...",       // inline ISCAS-85 netlist
///   "p1": [0.5, ...],              // estimate: one spec inline
///   "activity": [0.4, ...],        // optional, with "p1"
///   "scenarios": [{"p1": [...]}]   // batch/sweep: many specs
/// }
/// ```
fn parse_inference_request(
    request: &Request,
    endpoint: Endpoint,
) -> Result<InferenceRequest, RequestError> {
    let body = request
        .body_utf8()
        .map_err(|e| bad("bad_request", e.to_string()))?;
    let doc = json::parse(body).map_err(|e| bad("bad_json", e.to_string()))?;

    let circuit = match (doc.get("circuit"), doc.get("bench")) {
        (Some(name), None) => {
            let name = name
                .as_str()
                .ok_or_else(|| bad("bad_request", "`circuit` must be a string"))?;
            catalog::benchmark(name).ok_or_else(|| {
                (
                    404,
                    "unknown_circuit",
                    format!("`{name}` is not a catalog benchmark"),
                )
            })?
        }
        (None, Some(bench)) => {
            let source = bench
                .as_str()
                .ok_or_else(|| bad("bad_request", "`bench` must be a string"))?;
            swact_circuit::parse::parse_bench("inline", source)
                .map_err(|e| bad("bad_netlist", e.to_string()))?
        }
        _ => {
            return Err(bad(
                "bad_request",
                "body must have exactly one of `circuit` (catalog name) or `bench` (netlist)",
            ));
        }
    };

    let scenarios = match endpoint {
        Endpoint::Estimate => vec![parse_spec(&doc, &circuit)?],
        _ => {
            let list = doc
                .get("scenarios")
                .and_then(Value::as_array)
                .ok_or_else(|| bad("bad_request", "`scenarios` must be an array"))?;
            if list.is_empty() {
                return Err(bad("bad_request", "`scenarios` must not be empty"));
            }
            list.iter()
                .map(|s| parse_spec(s, &circuit))
                .collect::<Result<_, _>>()?
        }
    };

    Ok(InferenceRequest { circuit, scenarios })
}

/// One input spec: `{"p1": [...]}` with optional matching `"activity"`;
/// no `p1` at all means uniform inputs.
fn parse_spec(v: &Value, circuit: &Circuit) -> Result<InputSpec, RequestError> {
    let Some(p1) = v.get("p1") else {
        return Ok(InputSpec::uniform(circuit.num_inputs()));
    };
    let p1: Vec<f64> = p1
        .as_array()
        .ok_or_else(|| bad("bad_request", "`p1` must be an array of probabilities"))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| bad("bad_request", "`p1` entries must be numbers"))
        })
        .collect::<Result<_, _>>()?;
    match v.get("activity") {
        None => Ok(InputSpec::independent(p1)),
        Some(activity) => {
            let activity: Vec<f64> = activity
                .as_array()
                .ok_or_else(|| bad("bad_request", "`activity` must be an array"))?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .ok_or_else(|| bad("bad_request", "`activity` entries must be numbers"))
                })
                .collect::<Result<_, _>>()?;
            if activity.len() != p1.len() {
                return Err(bad("bad_request", "`activity` must match `p1` in length"));
            }
            let models = p1
                .iter()
                .zip(&activity)
                .map(|(&p, &a)| InputModel::new(p, a))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| bad("bad_request", e.to_string()))?;
            Ok(InputSpec::from_models(models))
        }
    }
}

/// Runs the engine and writes the endpoint-appropriate response.
fn serve_inference(
    inner: &Inner,
    stream: &mut TcpStream,
    endpoint: Endpoint,
    parsed: &InferenceRequest,
    guard: &AdmissionGuard,
) -> io::Result<u16> {
    let options = Options {
        budget: guard.budget(),
        ..Options::default()
    };
    match endpoint {
        Endpoint::Estimate => {
            let report =
                match inner
                    .engine
                    .estimate_batch(&parsed.circuit, &parsed.scenarios, &options)
                {
                    Ok(report) => report,
                    Err(e) => return respond_estimate_error(stream, &e),
                };
            match &report.items[0].result {
                Ok(estimate) => {
                    respond_json(stream, 200, &wire::estimate_json(estimate, &parsed.circuit))
                }
                Err(e) => respond_estimate_error(stream, e),
            }
        }
        Endpoint::Batch => {
            let report =
                match inner
                    .engine
                    .estimate_batch(&parsed.circuit, &parsed.scenarios, &options)
                {
                    Ok(report) => report,
                    Err(e) => return respond_estimate_error(stream, &e),
                };
            let mut body = format!(
                "{{\"circuit\":\"{}\",\"cache_hit\":{},\"items\":[",
                wire::escape(parsed.circuit.name()),
                report.cache_hit
            );
            for (i, item) in report.items.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                match &item.result {
                    Ok(estimate) => {
                        body.push_str(&format!(
                            "{{\"index\":{i},\"ok\":{}}}",
                            wire::estimate_json(estimate, &parsed.circuit)
                        ));
                    }
                    Err(e) => {
                        let (_, code) = error_status(e);
                        body.push_str(&format!(
                            "{{\"index\":{i},\"error\":{{\"code\":\"{code}\",\"message\":\"{}\"}}}}",
                            wire::escape(&e.to_string())
                        ));
                    }
                }
            }
            body.push_str("]}");
            respond_json(stream, 200, &body)
        }
        Endpoint::Sweep => serve_sweep(inner, stream, parsed, &options),
        _ => unreachable!("serve_inference is only called for inference endpoints"),
    }
}

/// Streams a sweep: scenarios run one at a time (sharing the engine's
/// compiled-model cache and the model's incremental message caches, so
/// later scenarios reuse earlier propagation work), each emitted as one
/// JSON line in its own chunk the moment it completes.
fn serve_sweep(
    inner: &Inner,
    stream: &mut TcpStream,
    parsed: &InferenceRequest,
    options: &Options,
) -> io::Result<u16> {
    // Run scenario 0 *before* committing to a 200 chunked response:
    // compile-stage failures (bad budget, unsupported backend) become
    // proper error statuses instead of a mid-stream abort.
    let first = match inner
        .engine
        .estimate_batch(&parsed.circuit, &parsed.scenarios[..1], options)
    {
        Ok(report) => report,
        Err(e) => return respond_estimate_error(stream, &e),
    };

    let mut writer = ChunkedWriter::start(stream, 200, "application/x-ndjson")?;
    writer.chunk(sweep_line(0, &first.items[0].result, &parsed.circuit).as_bytes())?;
    for (index, spec) in parsed.scenarios.iter().enumerate().skip(1) {
        let result =
            match inner
                .engine
                .estimate_batch(&parsed.circuit, std::slice::from_ref(spec), options)
            {
                Ok(report) => report
                    .items
                    .into_iter()
                    .next()
                    .map(|item| item.result)
                    .unwrap_or(Err(EstimateError::Cancelled)),
                Err(e) => Err(e),
            };
        writer.chunk(sweep_line(index, &result, &parsed.circuit).as_bytes())?;
    }
    writer.finish()?;
    Ok(200)
}

/// One NDJSON line of a sweep stream.
fn sweep_line(
    index: usize,
    result: &Result<swact::Estimate, EstimateError>,
    circuit: &Circuit,
) -> String {
    match result {
        Ok(estimate) => format!(
            "{{\"index\":{index},\"ok\":{}}}\n",
            wire::estimate_json(estimate, circuit)
        ),
        Err(e) => {
            let (_, code) = error_status(e);
            format!(
                "{{\"index\":{index},\"error\":{{\"code\":\"{code}\",\"message\":\"{}\"}}}}\n",
                wire::escape(&e.to_string())
            )
        }
    }
}

/// Seconds an over-quota client should wait before retrying, derived from
/// the server's actual backlog: queued connections plus requests in
/// flight, divided by the handler threads that drain them — i.e. roughly
/// how many "rounds" of service stand between the client and a free slot.
/// Deterministic in its inputs, at least 1 (the client *is* over quota,
/// so "now" is never the answer), clamped to 30 so a transient spike
/// never advises a multi-minute backoff.
fn retry_after_seconds(queued: usize, in_flight: usize, handlers: usize) -> u64 {
    (1 + (queued + in_flight) as u64 / handlers.max(1) as u64).min(30)
}

/// Maps an [`EstimateError`] to its HTTP status and stable error code.
///
/// | Error | Status |
/// |-------|--------|
/// | `DeadlineExceeded` | `504` |
/// | `BudgetExceeded`, `TooLarge`, `CorrelationBlowup` | `422` |
/// | `Panicked` | `500` |
/// | `Cancelled` | `503` |
/// | everything else (malformed specs, circuit errors) | `400` |
pub fn error_status(e: &EstimateError) -> (u16, &'static str) {
    match e {
        EstimateError::DeadlineExceeded { .. } => (504, "deadline_exceeded"),
        EstimateError::BudgetExceeded { .. } => (422, "budget_exceeded"),
        EstimateError::TooLarge { .. } => (422, "too_large"),
        EstimateError::CorrelationBlowup { .. } => (422, "correlation_blowup"),
        EstimateError::Panicked { .. } => (500, "panicked"),
        EstimateError::Cancelled => (503, "cancelled"),
        _ => (400, "invalid_request"),
    }
}

fn error_body(code: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"code\":\"{code}\",\"message\":\"{}\"}}}}",
        wire::escape(message)
    )
}

fn respond_json(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<u16> {
    http::write_response(stream, status, "application/json", body.as_bytes(), &[])?;
    Ok(status)
}

fn respond_error(
    stream: &mut TcpStream,
    status: u16,
    code: &str,
    message: &str,
) -> io::Result<u16> {
    respond_json(stream, status, &error_body(code, message))
}

fn respond_estimate_error(stream: &mut TcpStream, e: &EstimateError) -> io::Result<u16> {
    let (status, code) = error_status(e);
    respond_error(stream, status, code, &e.to_string())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn error_statuses_follow_the_documented_table() {
        assert_eq!(
            error_status(&EstimateError::DeadlineExceeded {
                stage: "queue",
                deadline: Duration::from_secs(1),
            }),
            (504, "deadline_exceeded")
        );
        assert_eq!(
            error_status(&EstimateError::Panicked {
                message: "boom".into()
            })
            .0,
            500
        );
        assert_eq!(error_status(&EstimateError::Cancelled).0, 503);
        assert_eq!(error_status(&EstimateError::GroupStructureMismatch).0, 400);
    }

    #[test]
    fn config_defaults_are_sane() {
        let config = ServerConfig::default();
        assert_eq!(config.addr, "127.0.0.1:7878");
        assert!(config.handlers >= 1);
        assert!(config.drain > Duration::ZERO);
        assert!(config.cache_dir.is_none());
    }

    #[test]
    fn retry_after_tracks_backlog() {
        // Idle server: retry immediately-ish, never 0.
        assert_eq!(retry_after_seconds(0, 0, 4), 1);
        // Light load still rounds down to the minimum.
        assert_eq!(retry_after_seconds(1, 2, 4), 1);
        // Saturated: backlog many rounds deep scales the advice.
        assert_eq!(retry_after_seconds(20, 20, 4), 11);
        // Clamped: a huge spike never advises more than 30 s.
        assert_eq!(retry_after_seconds(10_000, 0, 4), 30);
        // A zero handler count must not divide by zero.
        assert_eq!(retry_after_seconds(5, 0, 0), 6);
    }
}
