//! A deliberately small HTTP/1.1 server-side codec over `std::net`.
//!
//! Scope: exactly what `swact-serve` needs — request line + headers +
//! `Content-Length` bodies in, fixed-length or `Transfer-Encoding:
//! chunked` responses out, one request per connection (`Connection:
//! close`). No keep-alive, no pipelining, no TLS: the service sits behind
//! loopback or a fronting proxy, and one estimate per connection keeps
//! admission accounting trivially correct.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (4 MiB): generous for inline `.bench`
/// netlists, small enough that a hostile `Content-Length` cannot balloon
/// the handler.
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 << 10;

/// A parsed request: method, path, lowercase-keyed headers, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client per RFC; matched
    /// exactly).
    pub method: String,
    /// The request target, query string included, e.g. `/v1/estimate`.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased at parse time.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if it is.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::bad("body is not valid UTF-8"))
    }
}

/// Why a request could not be read. `Io` covers the socket dying; the
/// rest are client errors that deserve a 400 before closing.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (peer reset, timeout).
    Io(io::Error),
    /// Malformed request; the message is safe to echo to the client.
    BadRequest(String),
}

impl HttpError {
    pub(crate) fn bad(message: impl Into<String>) -> HttpError {
        HttpError::BadRequest(message.into())
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Reads one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    read_line_bounded(&mut reader, &mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::bad("request line has no target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::bad("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad(format!("unsupported version `{version}`")));
    }

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        line.clear();
        read_line_bounded(&mut reader, &mut line)?;
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::bad("request head too large"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed
            .split_once(':')
            .ok_or_else(|| HttpError::bad(format!("malformed header `{trimmed}`")))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // This codec only reads fixed-length bodies. A `Transfer-Encoding`
    // header (chunked or otherwise) would make the framing ambiguous —
    // the classic request-smuggling vector — so it is rejected outright
    // rather than ignored.
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::bad("Transfer-Encoding is not supported"));
    }
    // Likewise, two `Content-Length` headers (even agreeing ones) mean the
    // peer and any intermediary may disagree on where the body ends.
    let mut content_lengths = headers.iter().filter(|(n, _)| n == "content-length");
    let content_length = content_lengths
        .next()
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::bad("bad Content-Length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_lengths.next().is_some() {
        return Err(HttpError::bad("duplicate Content-Length"));
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// `read_line` with the head-size bound applied per line, so a client
/// feeding an endless unterminated line cannot grow memory unboundedly.
fn read_line_bounded(
    reader: &mut BufReader<&mut TcpStream>,
    line: &mut String,
) -> Result<(), HttpError> {
    let mut taken = reader.take(MAX_HEAD_BYTES as u64 + 1);
    let n = taken.read_line(line)?;
    if n > MAX_HEAD_BYTES {
        return Err(HttpError::bad("header line too large"));
    }
    Ok(())
}

/// Canonical reason phrases for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

/// Writes a complete fixed-length response and flushes.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A `Transfer-Encoding: chunked` response in progress: one chunk per
/// [`chunk`](ChunkedWriter::chunk) call, terminated by
/// [`finish`](ChunkedWriter::finish). Used by `/v1/sweep` to stream one
/// JSON line per scenario as it completes.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and returns the writer.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> io::Result<ChunkedWriter<'a>> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            reason(status)
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk and flushes it, so the client sees each scenario's
    /// line as soon as it is computed.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            // An empty chunk would terminate the stream early.
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunk stream.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips one raw request through a real socket pair.
    fn exchange(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("send");
            s.shutdown(std::net::Shutdown::Write).expect("shutdown");
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let result = read_request(&mut stream);
        client.join().expect("client thread");
        result
    }

    #[test]
    fn parses_post_with_body_and_lowercases_header_names() {
        let req = exchange(
            b"POST /v1/estimate HTTP/1.1\r\nHost: x\r\nX-Swact-Client: tokeN\r\nContent-Length: 4\r\n\r\nbody",
        )
        .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/estimate");
        assert_eq!(req.header("x-swact-client"), Some("tokeN"));
        assert_eq!(req.body, b"body");
        assert_eq!(req.body_utf8().unwrap(), "body");
    }

    #[test]
    fn parses_get_without_body() {
        let req = exchange(b"GET /healthz HTTP/1.1\r\n\r\n").expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            exchange(b"NONSENSE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            exchange(b"GET / SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            exchange(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            exchange(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_duplicate_content_length() {
        // Conflicting lengths are ambiguous framing.
        assert!(matches!(
            exchange(b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nbody"),
            Err(HttpError::BadRequest(_))
        ));
        // Even agreeing duplicates are rejected: an intermediary may have
        // seen different values than we do.
        assert!(matches!(
            exchange(b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_transfer_encoding_requests() {
        assert!(matches!(
            exchange(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nbody\r\n0\r\n\r\n"
            ),
            Err(HttpError::BadRequest(_))
        ));
        // Transfer-Encoding alongside Content-Length is the smuggling
        // shape proper; it must not fall back to the Content-Length.
        assert!(matches!(
            exchange(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 4\r\n\r\nbody"
            ),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            exchange(huge.as_bytes()),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn chunked_writer_emits_well_formed_framing() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut w = ChunkedWriter::start(&mut stream, 200, "application/json").expect("start");
            w.chunk(b"{\"i\":0}\n").expect("chunk");
            w.chunk(b"").expect("empty chunk is a no-op");
            w.chunk(b"{\"i\":1}\n").expect("chunk");
            w.finish().expect("finish");
        });
        let mut client = TcpStream::connect(addr).expect("connect");
        let mut raw = String::new();
        client.read_to_string(&mut raw).expect("read");
        server.join().expect("server thread");
        let (head, body) = raw.split_once("\r\n\r\n").expect("head/body split");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("Transfer-Encoding: chunked"));
        assert_eq!(body, "8\r\n{\"i\":0}\n\r\n8\r\n{\"i\":1}\n\r\n0\r\n\r\n");
    }
}
