//! Minimal JSON value model: a recursive-descent parser for request
//! bodies and client-config files, plus a writer for response scaffolding.
//!
//! The workspace is vendored/offline, so this stands in for serde_json.
//! Scope is deliberately small — exactly RFC 8259 minus one liberty taken
//! on output: response *floats* are produced by
//! [`swact::wire`], which guarantees shortest-round-trip
//! formatting; this module only needs to parse what clients send and
//! re-emit small control structures (error bodies, config echoes).
//!
//! Object key order is preserved (`Vec<(String, Value)>`, not a map), so
//! parse → write round-trips byte-identically for non-escaped input —
//! see the round-trip tests.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, like JavaScript).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object in source key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (no fractional part, no overflow).
    pub fn as_usize(&self) -> Option<usize> {
        let x = self.as_f64()?;
        if x.fract() == 0.0 && (0.0..=(u64::MAX as f64)).contains(&x) {
            Some(x as usize)
        } else {
            None
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(elems) => Some(elems),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    /// Compact (no-whitespace) JSON; floats via shortest-round-trip
    /// formatting, matching `swact::wire::number`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(x) => f.write_str(&swact::wire::number(*x)),
            Value::String(s) => write!(f, "\"{}\"", swact::wire::escape(s)),
            Value::Array(elems) => {
                f.write_str("[")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("]")
            }
            Value::Object(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", swact::wire::escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Why a document failed to parse, with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (one value plus trailing whitespace).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

/// Nesting depth limit: request bodies are flat (depth ≤ 4), so a deeply
/// nested document is hostile input, not a real client.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII subset of valid UTF-8 input");
        let x: f64 = text
            .parse()
            .map_err(|_| self.err(format!("bad number `{text}`")))?;
        Ok(Value::Number(x))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than
                            // combined; no client of this API emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("input was a valid &str");
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Value::String("a\nbA".into())
        );
    }

    #[test]
    fn structures_parse_and_lookup() {
        let v = parse(r#"{"circuit":"c17","p1":[0.1,0.2],"n":3}"#).unwrap();
        assert_eq!(v.get("circuit").and_then(Value::as_str), Some("c17"));
        assert_eq!(v.get("n").and_then(Value::as_usize), Some(3));
        let p1: Vec<f64> = v
            .get("p1")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(p1, vec![0.1, 0.2]);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn compact_documents_round_trip_byte_identically() {
        for doc in [
            "null",
            "true",
            "[1.5,2.25,[]]",
            r#"{"a":1.5,"b":{"c":[true,null]},"d":"x"}"#,
            r#"{"z":1.0,"a":2.0}"#, // key order preserved, not sorted
        ] {
            let v = parse(doc).unwrap();
            assert_eq!(v.to_string(), doc);
            // And the writer's output re-parses to the same value.
            assert_eq!(parse(&v.to_string()).unwrap(), v);
        }
    }

    #[test]
    fn floats_survive_the_round_trip_bit_exactly() {
        let v = Value::Array(vec![
            Value::Number(1.0 / 3.0),
            Value::Number(f64::MIN_POSITIVE),
            Value::Number(0.1 + 0.2),
        ]);
        let reparsed = parse(&v.to_string()).unwrap();
        let (a, b) = (v.as_array().unwrap(), reparsed.as_array().unwrap());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.as_f64().unwrap().to_bits(), y.as_f64().unwrap().to_bits());
        }
    }

    #[test]
    fn malformed_documents_are_rejected_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
        let err = parse("[1, oops]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn hostile_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"));
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }
}
