//! Per-client admission control: token → resource [`Budget`] plus an
//! in-flight request quota.
//!
//! Clients identify themselves with the `X-Swact-Client` header. Each
//! configured token maps to a [`ClientPolicy`]; unknown or anonymous
//! clients share the `default` policy (and its quota counter, so a fleet
//! of anonymous callers competes for one allowance rather than each
//! minting their own). Admission is a single atomic increment guarded by
//! the quota; the returned [`AdmissionGuard`] decrements on drop, so
//! every exit path — success, error, panic unwinding through the handler
//! — releases the slot.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use swact::Budget;

use crate::json::{self, Value};

/// What one client token is allowed to do.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientPolicy {
    /// Concurrent requests this token may have in flight; `None` is
    /// unlimited, `Some(0)` rejects every request (useful for revoking a
    /// token without editing it out of the config).
    pub max_in_flight: Option<usize>,
    /// Resource budget applied to every estimate this client runs,
    /// merged over any per-request options.
    pub budget: Budget,
}

/// A client's policy plus its live in-flight counter.
#[derive(Debug)]
pub(crate) struct ClientState {
    pub(crate) policy: ClientPolicy,
    in_flight: AtomicUsize,
}

/// The admission table: configured clients plus the shared default.
#[derive(Debug)]
pub struct ClientTable {
    clients: HashMap<String, Arc<ClientState>>,
    default: Arc<ClientState>,
}

impl Default for ClientTable {
    /// A table that admits everyone with no quota and no budget.
    fn default() -> ClientTable {
        ClientTable::with_default(ClientPolicy::default())
    }
}

impl ClientTable {
    /// An empty table with the given default (anonymous/unknown) policy.
    pub fn with_default(default: ClientPolicy) -> ClientTable {
        ClientTable {
            clients: HashMap::new(),
            default: Arc::new(ClientState {
                policy: default,
                in_flight: AtomicUsize::new(0),
            }),
        }
    }

    /// Adds (or replaces) a client token's policy.
    pub fn insert(&mut self, token: impl Into<String>, policy: ClientPolicy) {
        self.clients.insert(
            token.into(),
            Arc::new(ClientState {
                policy,
                in_flight: AtomicUsize::new(0),
            }),
        );
    }

    /// Parses the `--clients-config` JSON document:
    ///
    /// ```json
    /// {
    ///   "default": {"max_in_flight": 8},
    ///   "clients": {
    ///     "alice":   {"max_in_flight": 2, "deadline_ms": 5000},
    ///     "batch":   {"max_states": 1e6, "max_factor_bytes": 8000000},
    ///     "revoked": {"max_in_flight": 0}
    ///   }
    /// }
    /// ```
    ///
    /// Every field is optional; omitted fields mean "unlimited".
    pub fn from_json(source: &str) -> Result<ClientTable, String> {
        let doc = json::parse(source).map_err(|e| e.to_string())?;
        if !matches!(doc, Value::Object(_)) {
            return Err("clients config must be a JSON object".into());
        }
        let default = match doc.get("default") {
            Some(v) => parse_policy(v)?,
            None => ClientPolicy::default(),
        };
        let mut table = ClientTable::with_default(default);
        if let Some(clients) = doc.get("clients") {
            let Value::Object(members) = clients else {
                return Err("`clients` must be an object".into());
            };
            for (token, policy) in members {
                table.insert(token.clone(), parse_policy(policy)?);
            }
        }
        Ok(table)
    }

    /// The policy a token resolves to (the default for `None`/unknown).
    pub fn policy(&self, token: Option<&str>) -> ClientPolicy {
        self.state(token).policy
    }

    fn state(&self, token: Option<&str>) -> &Arc<ClientState> {
        token
            .and_then(|t| self.clients.get(t))
            .unwrap_or(&self.default)
    }

    /// Tries to admit one request for `token`. `Err` means the client is
    /// at its in-flight quota (HTTP 429); otherwise the guard holds the
    /// slot until dropped.
    pub fn try_admit(&self, token: Option<&str>) -> Result<AdmissionGuard, ClientPolicy> {
        let state = Arc::clone(self.state(token));
        let quota = state.policy.max_in_flight;
        let prev = state.in_flight.fetch_add(1, Ordering::SeqCst);
        if quota.is_some_and(|q| prev >= q) {
            let policy = state.policy;
            state.in_flight.fetch_sub(1, Ordering::SeqCst);
            return Err(policy);
        }
        Ok(AdmissionGuard { state })
    }

    /// Total requests currently admitted across all clients.
    pub fn total_in_flight(&self) -> usize {
        self.clients
            .values()
            .chain(std::iter::once(&self.default))
            .map(|s| s.in_flight.load(Ordering::SeqCst))
            .sum()
    }
}

/// RAII token for one admitted request; dropping releases the slot.
#[derive(Debug)]
pub struct AdmissionGuard {
    state: Arc<ClientState>,
}

impl AdmissionGuard {
    /// The budget the admitted client's work must run under.
    pub fn budget(&self) -> Budget {
        self.state.policy.budget
    }
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        self.state.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn parse_policy(v: &Value) -> Result<ClientPolicy, String> {
    let Value::Object(members) = v else {
        return Err("client policy must be an object".into());
    };
    let mut policy = ClientPolicy::default();
    for (key, value) in members {
        match key.as_str() {
            "max_in_flight" => {
                policy.max_in_flight =
                    Some(value.as_usize().ok_or("`max_in_flight` must be a count")?);
            }
            "deadline_ms" => {
                let ms = value.as_usize().ok_or("`deadline_ms` must be a count")?;
                policy.budget.deadline = Some(Duration::from_millis(ms as u64));
            }
            "max_states" => {
                policy.budget.max_states =
                    Some(value.as_f64().ok_or("`max_states` must be a number")?);
            }
            "max_factor_bytes" => {
                policy.budget.max_factor_bytes = Some(
                    value
                        .as_usize()
                        .ok_or("`max_factor_bytes` must be a count")?,
                );
            }
            other => return Err(format!("unknown client-policy field `{other}`")),
        }
    }
    Ok(policy)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn quota_admits_up_to_the_limit_and_releases_on_drop() {
        let mut table = ClientTable::default();
        table.insert(
            "alice",
            ClientPolicy {
                max_in_flight: Some(2),
                budget: Budget::UNLIMITED,
            },
        );
        let a = table.try_admit(Some("alice")).expect("slot 1");
        let _b = table.try_admit(Some("alice")).expect("slot 2");
        assert!(table.try_admit(Some("alice")).is_err(), "over quota");
        assert_eq!(table.total_in_flight(), 2);
        drop(a);
        assert!(table.try_admit(Some("alice")).is_ok(), "slot freed");
    }

    #[test]
    fn zero_quota_rejects_and_unknown_tokens_use_the_default() {
        let mut table = ClientTable::with_default(ClientPolicy {
            max_in_flight: Some(1),
            budget: Budget::UNLIMITED,
        });
        table.insert(
            "revoked",
            ClientPolicy {
                max_in_flight: Some(0),
                budget: Budget::UNLIMITED,
            },
        );
        assert!(table.try_admit(Some("revoked")).is_err());
        // Anonymous and unknown tokens share the default policy's counter.
        let _anon = table.try_admit(None).expect("default slot");
        assert!(table.try_admit(Some("never-configured")).is_err());
    }

    #[test]
    fn config_json_parses_policies_and_budgets() {
        let table = ClientTable::from_json(
            r#"{
                "default": {"max_in_flight": 8},
                "clients": {
                    "alice": {"max_in_flight": 2, "deadline_ms": 5000},
                    "batch": {"max_states": 1e6, "max_factor_bytes": 8000000}
                }
            }"#,
        )
        .expect("valid config");
        assert_eq!(table.policy(None).max_in_flight, Some(8));
        let alice = table.policy(Some("alice"));
        assert_eq!(alice.max_in_flight, Some(2));
        assert_eq!(alice.budget.deadline, Some(Duration::from_millis(5000)));
        let batch = table.policy(Some("batch"));
        assert_eq!(batch.max_in_flight, None);
        assert_eq!(batch.budget.max_states, Some(1e6));
        assert_eq!(batch.budget.max_factor_bytes, Some(8_000_000));
    }

    #[test]
    fn config_rejects_unknown_fields_and_bad_shapes() {
        assert!(ClientTable::from_json("[]").is_err());
        assert!(ClientTable::from_json(r#"{"clients": []}"#).is_err());
        assert!(ClientTable::from_json(r#"{"clients": {"a": {"max_inflight": 1}}}"#).is_err());
        assert!(ClientTable::from_json(r#"{"default": {"deadline_ms": -3}}"#).is_err());
    }
}
