//! Server-side observability: connection/request counters and
//! per-endpoint latency histograms, rendered — together with the engine's
//! [`MetricsSnapshot`] — in the Prometheus text exposition format.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use swact_engine::MetricsSnapshot;

/// The endpoints the server tracks individually; everything else (404s,
/// bad requests) lands in `Other`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/estimate`
    Estimate,
    /// `POST /v1/batch`
    Batch,
    /// `POST /v1/sweep`
    Sweep,
    /// `GET /metrics`
    Metrics,
    /// `GET /healthz`
    Healthz,
    /// `POST /admin/shutdown`
    Shutdown,
    /// Anything unrouted.
    Other,
}

/// All tracked endpoints in rendering order.
const ENDPOINTS: [(Endpoint, &str); 7] = [
    (Endpoint::Estimate, "estimate"),
    (Endpoint::Batch, "batch"),
    (Endpoint::Sweep, "sweep"),
    (Endpoint::Metrics, "metrics"),
    (Endpoint::Healthz, "healthz"),
    (Endpoint::Shutdown, "shutdown"),
    (Endpoint::Other, "other"),
];

impl Endpoint {
    fn index(self) -> usize {
        ENDPOINTS
            .iter()
            .position(|(e, _)| *e == self)
            .expect("every endpoint variant is listed in ENDPOINTS")
    }
}

/// Cumulative histogram bucket upper bounds, in seconds. Spans the
/// service's realistic range: sub-millisecond health checks up to
/// multi-second compiles of large netlists.
const LATENCY_BUCKETS_SECONDS: [f64; 10] =
    [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0];

/// One endpoint's latency histogram plus request/response counters.
#[derive(Debug, Default)]
struct EndpointStats {
    requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    latency_sum_nanos: AtomicU64,
    latency_count: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_SECONDS.len()],
}

/// Server-wide counters, updated lock-free from handler threads.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted since startup.
    connections: AtomicU64,
    /// Requests currently being handled (gauge).
    in_flight: AtomicUsize,
    /// Requests rejected by admission control (subset of 4xx).
    throttled: AtomicU64,
    per_endpoint: [EndpointStats; ENDPOINTS.len()],
}

impl ServerMetrics {
    pub(crate) fn connection_accepted(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn request_started(&self, endpoint: Endpoint) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        self.per_endpoint[endpoint.index()]
            .requests
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn throttled(&self) {
        self.throttled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn request_finished(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        let stats = &self.per_endpoint[endpoint.index()];
        let class = match status {
            200..=299 => &stats.responses_2xx,
            400..=499 => &stats.responses_4xx,
            _ => &stats.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        let secs = elapsed.as_secs_f64();
        stats
            .latency_sum_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        stats.latency_count.fetch_add(1, Ordering::Relaxed);
        for (i, &bound) in LATENCY_BUCKETS_SECONDS.iter().enumerate() {
            if secs <= bound {
                stats.latency_buckets[i].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Connections accepted since startup.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Requests rejected by admission control.
    pub fn throttled_total(&self) -> u64 {
        self.throttled.load(Ordering::Relaxed)
    }

    /// Renders every server counter plus the engine snapshot in the
    /// Prometheus text exposition format (version 0.0.4).
    ///
    /// Engine counters appear as `swact_engine_<field>` straight from
    /// [`MetricsSnapshot::fields`]; server counters as `swact_server_*`
    /// with per-endpoint labels.
    pub fn render_prometheus(&self, engine: &MetricsSnapshot) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str("# TYPE swact_server_connections_total counter\n");
        out.push_str(&format!(
            "swact_server_connections_total {}\n",
            self.connections()
        ));
        out.push_str("# TYPE swact_server_in_flight gauge\n");
        out.push_str(&format!(
            "swact_server_in_flight {}\n",
            self.in_flight.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE swact_server_throttled_total counter\n");
        out.push_str(&format!(
            "swact_server_throttled_total {}\n",
            self.throttled_total()
        ));

        out.push_str("# TYPE swact_server_requests_total counter\n");
        for (endpoint, name) in ENDPOINTS {
            let stats = &self.per_endpoint[endpoint.index()];
            out.push_str(&format!(
                "swact_server_requests_total{{endpoint=\"{name}\"}} {}\n",
                stats.requests.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE swact_server_responses_total counter\n");
        for (endpoint, name) in ENDPOINTS {
            let stats = &self.per_endpoint[endpoint.index()];
            for (class, counter) in [
                ("2xx", &stats.responses_2xx),
                ("4xx", &stats.responses_4xx),
                ("5xx", &stats.responses_5xx),
            ] {
                out.push_str(&format!(
                    "swact_server_responses_total{{endpoint=\"{name}\",class=\"{class}\"}} {}\n",
                    counter.load(Ordering::Relaxed)
                ));
            }
        }

        out.push_str("# TYPE swact_server_latency_seconds histogram\n");
        for (endpoint, name) in ENDPOINTS {
            let stats = &self.per_endpoint[endpoint.index()];
            for (i, bound) in LATENCY_BUCKETS_SECONDS.iter().enumerate() {
                out.push_str(&format!(
                    "swact_server_latency_seconds_bucket{{endpoint=\"{name}\",le=\"{bound}\"}} {}\n",
                    stats.latency_buckets[i].load(Ordering::Relaxed)
                ));
            }
            let count = stats.latency_count.load(Ordering::Relaxed);
            out.push_str(&format!(
                "swact_server_latency_seconds_bucket{{endpoint=\"{name}\",le=\"+Inf\"}} {count}\n"
            ));
            out.push_str(&format!(
                "swact_server_latency_seconds_sum{{endpoint=\"{name}\"}} {}\n",
                stats.latency_sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
            ));
            out.push_str(&format!(
                "swact_server_latency_seconds_count{{endpoint=\"{name}\"}} {count}\n"
            ));
        }

        for (field, value) in engine.fields() {
            out.push_str(&format!("swact_engine_{field} {value}\n"));
        }
        out
    }
}

/// Maps a request to its tracked endpoint.
pub fn classify(method: &str, path: &str) -> Endpoint {
    match (method, path) {
        ("POST", "/v1/estimate") => Endpoint::Estimate,
        ("POST", "/v1/batch") => Endpoint::Batch,
        ("POST", "/v1/sweep") => Endpoint::Sweep,
        ("GET", "/metrics") => Endpoint::Metrics,
        ("GET", "/healthz") => Endpoint::Healthz,
        ("POST", "/admin/shutdown") => Endpoint::Shutdown,
        _ => Endpoint::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_routes_known_endpoints() {
        assert_eq!(classify("POST", "/v1/estimate"), Endpoint::Estimate);
        assert_eq!(classify("GET", "/healthz"), Endpoint::Healthz);
        // Wrong method ⇒ unrouted.
        assert_eq!(classify("GET", "/v1/estimate"), Endpoint::Other);
        assert_eq!(classify("POST", "/nope"), Endpoint::Other);
    }

    #[test]
    fn counters_accumulate_and_render() {
        let m = ServerMetrics::default();
        m.connection_accepted();
        m.request_started(Endpoint::Estimate);
        m.request_finished(Endpoint::Estimate, 200, Duration::from_millis(3));
        m.request_started(Endpoint::Estimate);
        m.request_finished(Endpoint::Estimate, 429, Duration::from_micros(50));
        m.throttled();

        let text = m.render_prometheus(&swact_engine::Engine::with_jobs(1).metrics());
        assert!(text.contains("swact_server_connections_total 1\n"));
        assert!(text.contains("swact_server_in_flight 0\n"));
        assert!(text.contains("swact_server_throttled_total 1\n"));
        assert!(text.contains("swact_server_requests_total{endpoint=\"estimate\"} 2\n"));
        assert!(
            text.contains("swact_server_responses_total{endpoint=\"estimate\",class=\"2xx\"} 1\n")
        );
        assert!(
            text.contains("swact_server_responses_total{endpoint=\"estimate\",class=\"4xx\"} 1\n")
        );
        // 3ms lands in the 5ms bucket but not the 1ms one.
        assert!(text.contains(
            "swact_server_latency_seconds_bucket{endpoint=\"estimate\",le=\"0.001\"} 1\n"
        ));
        assert!(text.contains(
            "swact_server_latency_seconds_bucket{endpoint=\"estimate\",le=\"0.005\"} 2\n"
        ));
        assert!(text.contains(
            "swact_server_latency_seconds_bucket{endpoint=\"estimate\",le=\"+Inf\"} 2\n"
        ));
        assert!(text.contains("swact_server_latency_seconds_count{endpoint=\"estimate\"} 2\n"));
        // Engine counters ride along under their own prefix.
        assert!(text.contains("swact_engine_compile_hits 0\n"));
        assert!(text.contains("swact_engine_jobs_cancelled 0\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = ServerMetrics::default();
        m.request_started(Endpoint::Batch);
        m.request_finished(Endpoint::Batch, 200, Duration::from_secs(2));
        let text = m.render_prometheus(&swact_engine::Engine::with_jobs(1).metrics());
        // 2s misses every bucket up to 1.0 but lands in 5.0 and above.
        assert!(
            text.contains("swact_server_latency_seconds_bucket{endpoint=\"batch\",le=\"1\"} 0\n")
        );
        assert!(
            text.contains("swact_server_latency_seconds_bucket{endpoint=\"batch\",le=\"5\"} 1\n")
        );
        assert!(
            text.contains("swact_server_latency_seconds_bucket{endpoint=\"batch\",le=\"60\"} 1\n")
        );
    }
}
