//! Minimal SIGINT/SIGTERM hookup without external crates.
//!
//! The handler only sets a process-global flag — the single
//! async-signal-safe thing a handler may do — which the server's acceptor
//! loop polls every ~10 ms ([`signalled`]). On non-Unix targets
//! installation is a no-op and shutdown relies on `/admin/shutdown` or
//! [`ServerHandle::shutdown`](crate::ServerHandle::shutdown).

use std::sync::atomic::{AtomicBool, Ordering};

/// Flipped by the signal handler; never cleared.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT or SIGTERM has arrived since
/// [`install_signal_handler`] was called.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

#[cfg(test)]
pub(crate) fn raise_for_test() {
    SIGNALLED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
pub(crate) fn clear_for_test() {
    SIGNALLED.store(false, Ordering::SeqCst);
}

/// Routes SIGINT (ctrl-c) and SIGTERM to the shutdown flag. Idempotent;
/// affects every server in the process (they all drain on signal).
#[cfg(unix)]
pub fn install_signal_handler() {
    // `signal(2)` via a direct libc binding: the vendored workspace has
    // no libc crate, but every Unix target links libc itself.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` only performs an atomic store, which is
    // async-signal-safe; the handler pointer outlives the process.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// No-op off Unix: use `/admin/shutdown` or
/// [`ServerHandle::shutdown`](crate::ServerHandle::shutdown) instead.
#[cfg(not(unix))]
pub fn install_signal_handler() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_latches() {
        clear_for_test();
        assert!(!signalled());
        raise_for_test();
        assert!(signalled());
        clear_for_test();
    }

    #[cfg(unix)]
    #[test]
    fn installing_the_handler_is_idempotent() {
        install_signal_handler();
        install_signal_handler();
    }
}
