use swact_circuit::{Circuit, Driver, LineId};

/// A zero-delay, 64-way bit-parallel evaluator for a combinational circuit.
///
/// Each `u64` word carries 64 independent simulation lanes; one call to
/// [`eval_words`](Simulator::eval_words) therefore evaluates 64 input
/// vectors. The evaluation order is precomputed once.
///
/// # Example
///
/// ```
/// use swact_circuit::catalog;
/// use swact_sim::Simulator;
///
/// let c17 = catalog::c17();
/// let sim = Simulator::new(&c17);
/// // Lane k of each input word is input bit for vector k.
/// let inputs = vec![u64::MAX, 0, u64::MAX, 0, u64::MAX];
/// let lines = sim.eval_words(&inputs);
/// assert_eq!(lines.len(), c17.num_lines());
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'c> {
    circuit: &'c Circuit,
    order: Vec<LineId>,
}

impl<'c> Simulator<'c> {
    /// Prepares a simulator for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Simulator<'c> {
        Simulator {
            circuit,
            order: circuit.topo_order(),
        }
    }

    /// The circuit this simulator evaluates.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// Evaluates 64 vectors at once. `inputs[i]` is the word for the *i*-th
    /// primary input (declaration order); the result holds one word per
    /// line, indexed by `LineId::index`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the circuit's input count.
    pub fn eval_words(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(
            inputs.len(),
            self.circuit.num_inputs(),
            "one input word per primary input"
        );
        let mut values = vec![0u64; self.circuit.num_lines()];
        for (i, &pi) in self.circuit.inputs().iter().enumerate() {
            values[pi.index()] = inputs[i];
        }
        let mut gate_inputs: Vec<u64> = Vec::with_capacity(8);
        for &line in &self.order {
            if let Driver::Gate(g) = self.circuit.driver(line) {
                gate_inputs.clear();
                gate_inputs.extend(g.inputs.iter().map(|&l| values[l.index()]));
                values[line.index()] = g.kind.eval_words(&gate_inputs);
            }
        }
        values
    }

    /// Evaluates a single Boolean vector; returns one value per line.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the circuit's input count.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        self.eval_words(&words)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_circuit::{catalog, CircuitBuilder, GateKind};

    #[test]
    fn word_eval_agrees_with_scalar_eval_on_c17() {
        let c17 = catalog::c17();
        let sim = Simulator::new(&c17);
        // Pack all 32 input combinations into lanes 0..32.
        let mut words = vec![0u64; 5];
        for case in 0..32u64 {
            for (i, w) in words.iter_mut().enumerate() {
                if case >> i & 1 == 1 {
                    *w |= 1 << case;
                }
            }
        }
        let packed = sim.eval_words(&words);
        for case in 0..32u64 {
            let scalar: Vec<bool> =
                sim.eval(&(0..5).map(|i| case >> i & 1 == 1).collect::<Vec<_>>());
            for line in c17.line_ids() {
                assert_eq!(
                    packed[line.index()] >> case & 1 == 1,
                    scalar[line.index()],
                    "line {} case {case}",
                    c17.line_name(line)
                );
            }
        }
    }

    #[test]
    fn constants_and_buffers() {
        let mut b = CircuitBuilder::new("konst");
        b.input("a").unwrap();
        b.gate("k1", GateKind::Const1, &[]).unwrap();
        b.gate("k0", GateKind::Const0, &[]).unwrap();
        b.gate("pass", GateKind::Buf, &["a"]).unwrap();
        b.gate("y", GateKind::And, &["k1", "pass"]).unwrap();
        b.output("y").unwrap();
        let c = b.finish().unwrap();
        let sim = Simulator::new(&c);
        let out = sim.eval_words(&[0b1010]);
        let y = c.find_line("y").unwrap();
        assert_eq!(out[y.index()], 0b1010);
        let k0 = c.find_line("k0").unwrap();
        assert_eq!(out[k0.index()], 0);
    }

    #[test]
    #[should_panic(expected = "one input word")]
    fn wrong_input_count_panics() {
        let c17 = catalog::c17();
        let sim = Simulator::new(&c17);
        let _ = sim.eval_words(&[0, 0]);
    }
}
