use swact_circuit::Circuit;

use crate::{Simulator, StreamModel, StreamSampler};

/// Result of a switching-activity measurement.
#[derive(Debug, Clone)]
pub struct ActivityMeasurement {
    /// Per line (indexed by `LineId::index`): fraction of clock pairs in
    /// which the line toggled.
    pub switching: Vec<f64>,
    /// Per line: fraction of clocks at logic 1.
    pub signal_probability: Vec<f64>,
    /// Number of consecutive vector pairs observed (across all lanes).
    pub pairs: usize,
}

impl ActivityMeasurement {
    /// Mean switching activity over all lines.
    pub fn mean_switching(&self) -> f64 {
        self.switching.iter().sum::<f64>() / self.switching.len() as f64
    }
}

/// Measures per-line switching activity and signal probability by
/// simulating `pairs` consecutive vector pairs drawn from `model`
/// (rounded up to a multiple of 64; lanes are independent stream
/// realizations, transitions are counted *within* each lane).
///
/// This is the paper's ground-truth procedure: zero-delay logic simulation
/// under random input streams.
///
/// # Panics
///
/// Panics if the model's input count differs from the circuit's or if
/// `pairs` is zero.
///
/// # Example
///
/// ```
/// use swact_circuit::catalog;
/// use swact_sim::{measure_activity, StreamModel};
///
/// let c17 = catalog::c17();
/// let m = measure_activity(&c17, &StreamModel::uniform(5), 64_000, 1);
/// let out = c17.outputs()[0];
/// // Under uniform inputs every c17 line toggles a nontrivial fraction
/// // of cycles.
/// assert!(m.switching[out.index()] > 0.2 && m.switching[out.index()] < 0.6);
/// ```
pub fn measure_activity(
    circuit: &Circuit,
    model: &StreamModel,
    pairs: usize,
    seed: u64,
) -> ActivityMeasurement {
    assert_eq!(
        model.num_inputs(),
        circuit.num_inputs(),
        "model must cover every primary input"
    );
    assert!(pairs > 0, "need at least one vector pair");
    let steps = pairs.div_ceil(64);
    let sim = Simulator::new(circuit);
    let mut sampler = StreamSampler::new(model, seed);
    let n = circuit.num_lines();
    let mut toggle_counts = vec![0u64; n];
    let mut one_counts = vec![0u64; n];

    let mut prev_lines = sim.eval_words(sampler.current());
    for line in 0..n {
        one_counts[line] += prev_lines[line].count_ones() as u64;
    }
    for _ in 0..steps {
        sampler.step();
        let next_lines = sim.eval_words(sampler.current());
        for line in 0..n {
            toggle_counts[line] += (next_lines[line] ^ prev_lines[line]).count_ones() as u64;
            one_counts[line] += next_lines[line].count_ones() as u64;
        }
        prev_lines = next_lines;
    }
    let total_pairs = (steps * 64) as f64;
    let total_clocks = ((steps + 1) * 64) as f64;
    ActivityMeasurement {
        switching: toggle_counts
            .into_iter()
            .map(|c| c as f64 / total_pairs)
            .collect(),
        signal_probability: one_counts
            .into_iter()
            .map(|c| c as f64 / total_clocks)
            .collect(),
        pairs: steps * 64,
    }
}

/// Measures switching activity by replaying an explicit vector sequence
/// (a captured testbench trace): vector `k` is applied at clock `k`, and
/// transitions are counted between consecutive clocks.
///
/// # Panics
///
/// Panics if fewer than two vectors are supplied or any vector's length
/// differs from the circuit's input count.
///
/// # Example
///
/// ```
/// use swact_circuit::catalog;
/// use swact_sim::replay_vectors;
///
/// let c17 = catalog::c17();
/// let trace = vec![
///     vec![false; 5],
///     vec![true; 5],
///     vec![false, true, false, true, false],
/// ];
/// let m = replay_vectors(&c17, &trace);
/// assert_eq!(m.pairs, 2);
/// // Every input toggled on the first edge, so activity is positive.
/// assert!(m.switching[c17.inputs()[0].index()] > 0.0);
/// ```
pub fn replay_vectors(circuit: &Circuit, vectors: &[Vec<bool>]) -> ActivityMeasurement {
    assert!(vectors.len() >= 2, "need at least two vectors for one pair");
    let sim = Simulator::new(circuit);
    let n = circuit.num_lines();
    let mut toggles = vec![0u64; n];
    let mut ones = vec![0u64; n];
    let mut prev: Option<Vec<bool>> = None;
    for vector in vectors {
        assert_eq!(
            vector.len(),
            circuit.num_inputs(),
            "vector width must match the input count"
        );
        let values = sim.eval(vector);
        for line in 0..n {
            ones[line] += u64::from(values[line]);
            if let Some(prev) = &prev {
                toggles[line] += u64::from(values[line] != prev[line]);
            }
        }
        prev = Some(values);
    }
    let pairs = vectors.len() - 1;
    ActivityMeasurement {
        switching: toggles
            .into_iter()
            .map(|c| c as f64 / pairs as f64)
            .collect(),
        signal_probability: ones
            .into_iter()
            .map(|c| c as f64 / vectors.len() as f64)
            .collect(),
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalModel;
    use swact_circuit::{catalog, CircuitBuilder, GateKind};

    #[test]
    fn inverter_matches_input_statistics() {
        let mut b = CircuitBuilder::new("inv");
        b.input("a").unwrap();
        b.gate("y", GateKind::Not, &["a"]).unwrap();
        b.output("y").unwrap();
        let c = b.finish().unwrap();
        let model = StreamModel {
            signals: vec![SignalModel::new(0.3, 0.25)],
            groups: Vec::new(),
        };
        let m = measure_activity(&c, &model, 256_000, 17);
        let a = c.find_line("a").unwrap();
        let y = c.find_line("y").unwrap();
        // The inverter output toggles exactly when the input does.
        assert!((m.switching[a.index()] - 0.25).abs() < 0.01);
        assert!((m.switching[y.index()] - 0.25).abs() < 0.01);
        assert!((m.signal_probability[y.index()] - 0.7).abs() < 0.01);
    }

    #[test]
    fn and_gate_analytic_activity() {
        // For independent uniform inputs, an AND output has P(1)=1/4 and
        // temporally independent sampling gives activity 2·(1/4)·(3/4)=3/8.
        let mut b = CircuitBuilder::new("and2");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate("y", GateKind::And, &["a", "b"]).unwrap();
        b.output("y").unwrap();
        let c = b.finish().unwrap();
        let m = measure_activity(&c, &StreamModel::uniform(2), 256_000, 23);
        let y = c.find_line("y").unwrap();
        assert!((m.signal_probability[y.index()] - 0.25).abs() < 0.01);
        assert!((m.switching[y.index()] - 0.375).abs() < 0.01);
    }

    #[test]
    fn xor_activity_is_half_under_uniform() {
        let mut b = CircuitBuilder::new("xor2");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate("y", GateKind::Xor, &["a", "b"]).unwrap();
        b.output("y").unwrap();
        let c = b.finish().unwrap();
        let m = measure_activity(&c, &StreamModel::uniform(2), 256_000, 29);
        let y = c.find_line("y").unwrap();
        assert!((m.switching[y.index()] - 0.5).abs() < 0.01);
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let c17 = catalog::c17();
        let model = StreamModel::uniform(5);
        let a = measure_activity(&c17, &model, 6400, 5);
        let b = measure_activity(&c17, &model, 6400, 5);
        assert_eq!(a.switching, b.switching);
        let c = measure_activity(&c17, &model, 6400, 6);
        assert_ne!(a.switching, c.switching);
    }

    #[test]
    fn pairs_rounded_up_to_lanes() {
        let c17 = catalog::c17();
        let m = measure_activity(&c17, &StreamModel::uniform(5), 100, 1);
        assert_eq!(m.pairs, 128);
    }

    #[test]
    fn replay_counts_exact_transitions() {
        let mut b = CircuitBuilder::new("buf");
        b.input("a").unwrap();
        b.gate("y", GateKind::Not, &["a"]).unwrap();
        b.output("y").unwrap();
        let c = b.finish().unwrap();
        let trace = vec![vec![false], vec![true], vec![true], vec![false], vec![true]];
        let m = replay_vectors(&c, &trace);
        // a toggles on pairs 0,2,3 → 3 of 4.
        let a = c.find_line("a").unwrap();
        let y = c.find_line("y").unwrap();
        assert!((m.switching[a.index()] - 0.75).abs() < 1e-12);
        assert!((m.switching[y.index()] - 0.75).abs() < 1e-12);
        assert!((m.signal_probability[a.index()] - 0.6).abs() < 1e-12);
        assert!((m.signal_probability[y.index()] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn replay_converges_to_stream_measurement() {
        // A long random trace replayed vector-by-vector must agree with
        // the bit-parallel stream measurement statistically.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let c17 = catalog::c17();
        let mut rng = SmallRng::seed_from_u64(77);
        let trace: Vec<Vec<bool>> = (0..40_000)
            .map(|_| (0..5).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let replayed = replay_vectors(&c17, &trace);
        let streamed = measure_activity(&c17, &StreamModel::uniform(5), 256_000, 5);
        for line in c17.line_ids() {
            assert!(
                (replayed.switching[line.index()] - streamed.switching[line.index()]).abs() < 0.02,
                "line {}",
                c17.line_name(line)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two vectors")]
    fn replay_needs_two_vectors() {
        let c17 = catalog::c17();
        let _ = replay_vectors(&c17, &[vec![false; 5]]);
    }

    #[test]
    fn mean_switching_sane_on_benchmark() {
        let c = catalog::benchmark("pcler8").unwrap();
        let m = measure_activity(&c, &StreamModel::uniform(c.num_inputs()), 64_00, 2);
        let mean = m.mean_switching();
        assert!(mean > 0.0 && mean < 1.0, "mean {mean}");
    }
}
