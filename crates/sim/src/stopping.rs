//! The Burch/Najm normal-approximation stopping rule as a reusable type.
//!
//! [`MonteCarloEstimator`](crate::MonteCarloEstimator) historically inlined
//! this arithmetic; it now drives the same rule through this type, and the
//! anytime sampling backend in `swact` reuses it for per-segment confidence
//! intervals. Batch means are treated as i.i.d. normal samples: after `k ≥ 2`
//! batches the half-width of the confidence interval on their mean is
//! `z · sqrt(s² / k)` with `s²` the unbiased sample variance.
//!
//! The arithmetic (summation order included) is kept exactly as the original
//! estimator computed it, so the refactor is bit-identical.

/// Running confidence-interval tracker over a stream of batch means.
#[derive(Debug, Clone)]
pub struct StoppingRule {
    z_score: f64,
    samples: Vec<f64>,
    mean: f64,
    half_width: f64,
}

impl StoppingRule {
    /// Creates a rule for the given confidence z-score (1.96 ≈ 95 %).
    pub fn new(z_score: f64) -> StoppingRule {
        StoppingRule {
            z_score,
            samples: Vec::new(),
            mean: 0.0,
            half_width: f64::INFINITY,
        }
    }

    /// Records one batch mean and updates the interval.
    pub fn push(&mut self, sample: f64) {
        self.samples.push(sample);
        let k = self.samples.len() as f64;
        self.mean = self.samples.iter().sum::<f64>() / k;
        if self.samples.len() >= 2 {
            let mean = self.mean;
            let var: f64 = self
                .samples
                .iter()
                .map(|x| (x - mean) * (x - mean))
                .sum::<f64>()
                / (k - 1.0);
            self.half_width = self.z_score * (var / k).sqrt();
        }
    }

    /// Number of batch means recorded so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no batch means have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Running mean of the recorded batch means (0 before the first push).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current half-width of the confidence interval on the mean
    /// (infinite until two batches are in).
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// The configured z-score.
    pub fn z_score(&self) -> f64 {
        self.z_score
    }

    /// Relative convergence: half-width within `relative_error · mean`
    /// (requires a strictly positive mean, matching Burch/Najm).
    pub fn within_relative(&self, relative_error: f64) -> bool {
        self.samples.len() >= 2 && self.mean > 0.0 && self.half_width <= relative_error * self.mean
    }

    /// Absolute convergence: half-width within `target`.
    pub fn within_absolute(&self, target: f64) -> bool {
        self.samples.len() >= 2 && self.half_width <= target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_tightens_with_samples() {
        let mut rule = StoppingRule::new(1.96);
        assert!(rule.is_empty());
        assert!(!rule.within_absolute(1.0));
        rule.push(0.5);
        assert_eq!(rule.len(), 1);
        assert!(rule.half_width().is_infinite());
        // A second identical sample collapses the variance to zero.
        rule.push(0.5);
        assert_eq!(rule.half_width(), 0.0);
        assert!(rule.within_absolute(1e-12));
        assert!(rule.within_relative(1e-12));
        assert!((rule.mean() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn relative_rule_requires_positive_mean() {
        let mut rule = StoppingRule::new(1.96);
        rule.push(0.0);
        rule.push(0.0);
        assert_eq!(rule.half_width(), 0.0);
        assert!(!rule.within_relative(0.02));
        assert!(rule.within_absolute(0.0));
    }

    #[test]
    fn matches_hand_computed_interval() {
        let mut rule = StoppingRule::new(2.0);
        for x in [1.0, 2.0, 3.0] {
            rule.push(x);
        }
        // mean 2, var 1, half-width = 2 * sqrt(1/3)
        assert!((rule.mean() - 2.0).abs() < 1e-15);
        assert!((rule.half_width() - 2.0 * (1.0f64 / 3.0).sqrt()).abs() < 1e-15);
        assert!(rule.within_relative(0.6));
        assert!(!rule.within_relative(0.5));
    }
}
