//! Bit-parallel simulation of sequential circuits: the combinational core
//! is evaluated frame by frame with register outputs fed back.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swact_circuit::sequential::SequentialCircuit;

use crate::{ActivityMeasurement, Simulator, StreamModel, StreamSampler};

/// Measures per-line switching activity of a sequential circuit over
/// `frames` clock frames (rounded up to a multiple of 64 lanes), with the
/// true primary inputs driven by `model` and registers fed back each
/// frame. The first `warmup` frames are discarded so measurements reflect
/// the stationary regime, not the random initial state.
///
/// Line indices in the result are those of the combinational
/// [`core`](SequentialCircuit::core); a register's output activity is its
/// state-input line's activity.
///
/// # Panics
///
/// Panics if the model's input count differs from the circuit's primary
/// input count or `frames` is zero.
///
/// # Example
///
/// ```
/// use swact_circuit::sequential::parse_bench_sequential;
/// use swact_sim::{measure_activity_sequential, StreamModel};
///
/// # fn main() -> Result<(), swact_circuit::CircuitError> {
/// let seq = parse_bench_sequential(
///     "toggle",
///     "INPUT(en)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, en)\n",
/// )?;
/// let m = measure_activity_sequential(&seq, &StreamModel::uniform(1), 64_000, 64, 7);
/// // The toggle FF flips whenever `en` is high: activity ≈ P(en) = ½.
/// let q = seq.state_line(0);
/// assert!((m.switching[q.index()] - 0.5).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
pub fn measure_activity_sequential(
    seq: &SequentialCircuit,
    model: &StreamModel,
    frames: usize,
    warmup: usize,
    seed: u64,
) -> ActivityMeasurement {
    assert_eq!(
        model.num_inputs(),
        seq.num_primary_inputs(),
        "model must cover every true primary input"
    );
    assert!(frames > 0, "need at least one frame");
    let core = seq.core();
    let sim = Simulator::new(core);
    let mut sampler = StreamSampler::new(model, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5e9_0055);
    // Random initial state, one word (64 lanes) per register.
    let mut state: Vec<u64> = (0..seq.registers().len())
        .map(|_| rng.gen::<u64>())
        .collect();

    let n = core.num_lines();
    let mut toggle_counts = vec![0u64; n];
    let mut one_counts = vec![0u64; n];
    let mut prev_lines: Option<Vec<u64>> = None;
    let steps = frames.div_ceil(64) + warmup.div_ceil(64);
    let measured_from = warmup.div_ceil(64);
    let mut measured_steps = 0u64;

    for step in 0..steps {
        let mut inputs = sampler.current().to_vec();
        inputs.extend_from_slice(&state);
        let lines = sim.eval_words(&inputs);
        if step >= measured_from {
            if let Some(prev) = &prev_lines {
                for line in 0..n {
                    toggle_counts[line] += (lines[line] ^ prev[line]).count_ones() as u64;
                    one_counts[line] += lines[line].count_ones() as u64;
                }
                measured_steps += 1;
            }
        }
        for (s, reg) in state.iter_mut().zip(seq.registers()) {
            *s = lines[reg.next_state.index()];
        }
        prev_lines = Some(lines);
        sampler.step();
    }
    let total = (measured_steps * 64).max(1) as f64;
    ActivityMeasurement {
        switching: toggle_counts
            .into_iter()
            .map(|c| c as f64 / total)
            .collect(),
        signal_probability: one_counts.into_iter().map(|c| c as f64 / total).collect(),
        pairs: (measured_steps * 64) as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_circuit::sequential::parse_bench_sequential;

    const COUNTER2: &str = "
        INPUT(en)
        OUTPUT(q1)
        q0 = DFF(d0)
        q1 = DFF(d1)
        d0 = XOR(q0, en)
        t1 = AND(q0, en)
        d1 = XOR(q1, t1)
    ";

    #[test]
    fn ripple_counter_bit_activities() {
        // With enable probability p, bit 0 toggles at rate p and bit 1 at
        // rate p/2 in the stationary regime.
        let seq = parse_bench_sequential("counter2", COUNTER2).unwrap();
        let model = StreamModel::uniform(1);
        let m = measure_activity_sequential(&seq, &model, 256_000, 512, 3);
        let q0 = seq.state_line(0);
        let q1 = seq.state_line(1);
        assert!(
            (m.switching[q0.index()] - 0.5).abs() < 0.02,
            "{}",
            m.switching[q0.index()]
        );
        assert!(
            (m.switching[q1.index()] - 0.25).abs() < 0.02,
            "{}",
            m.switching[q1.index()]
        );
        // Counter bits are uniform in steady state.
        assert!((m.signal_probability[q0.index()] - 0.5).abs() < 0.02);
    }

    #[test]
    fn frozen_enable_freezes_the_machine() {
        let seq = parse_bench_sequential("counter2", COUNTER2).unwrap();
        let model = StreamModel {
            signals: vec![crate::SignalModel::new(0.0, 0.0)],
            groups: Vec::new(),
        };
        let m = measure_activity_sequential(&seq, &model, 64_000, 64, 5);
        for line in seq.core().line_ids() {
            assert!(
                m.switching[line.index()] < 1e-12,
                "line {} moved",
                seq.core().line_name(line)
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let seq = parse_bench_sequential("counter2", COUNTER2).unwrap();
        let model = StreamModel::uniform(1);
        let a = measure_activity_sequential(&seq, &model, 6400, 64, 9);
        let b = measure_activity_sequential(&seq, &model, 6400, 64, 9);
        assert_eq!(a.switching, b.switching);
    }
}
