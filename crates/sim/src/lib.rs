//! Bit-parallel gate-level logic simulation — the ground-truth engine.
//!
//! The paper validates its Bayesian-network estimates against logic
//! simulation under (pseudo-)random input streams; this crate plays that
//! role for the whole workspace:
//!
//! * [`Simulator`] — a 64-way bit-parallel zero-delay evaluator over a
//!   [`Circuit`](swact_circuit::Circuit);
//! * [`SignalModel`] / [`StreamModel`] — per-input stochastic models
//!   (Bernoulli signal probability, lag-1 Markov temporal correlation,
//!   optional spatially correlated input groups);
//! * [`measure_activity`] — switching-activity and signal-probability
//!   measurement over a generated stream;
//! * [`MonteCarloEstimator`] — sequential estimation with a Burch/Najm-style
//!   normal-approximation stopping rule.
//!
//! # Example
//!
//! ```
//! use swact_circuit::catalog;
//! use swact_sim::{measure_activity, StreamModel};
//!
//! let c17 = catalog::c17();
//! let model = StreamModel::uniform(c17.num_inputs());
//! let activity = measure_activity(&c17, &model, 64_000, 7);
//! // Every line of c17 switches sometimes under random inputs.
//! assert!(activity.switching.iter().all(|&s| s > 0.0 && s < 1.0));
//! ```

mod activity;
mod montecarlo;
mod sequential;
mod simulator;
mod stopping;
mod stream;

pub use activity::{measure_activity, replay_vectors, ActivityMeasurement};
pub use montecarlo::{MonteCarloEstimator, MonteCarloOptions, MonteCarloResult};
pub use sequential::measure_activity_sequential;
pub use simulator::Simulator;
pub use stopping::StoppingRule;
pub use stream::{SignalModel, SpatialGroup, StreamModel, StreamSampler};
