//! Sequential Monte-Carlo estimation with a stopping rule.
//!
//! Burch, Najm & Trick (1993) made statistical power estimation practical
//! by running simulation in batches until a normal-approximation confidence
//! interval on the quantity of interest is tight enough. This module
//! implements that loop for average switching activity; it doubles as the
//! "statistically simulative" comparison class discussed in the paper's §2.

use swact_circuit::Circuit;

use crate::{measure_activity, StoppingRule, StreamModel};

/// Options for [`MonteCarloEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloOptions {
    /// Vector pairs per batch (rounded up to 64).
    pub batch_pairs: usize,
    /// Required half-width of the confidence interval on the *mean* node
    /// activity, relative to the running mean (e.g. 0.02 = ±2 %).
    pub relative_error: f64,
    /// z-score of the confidence level (1.96 ≈ 95 %, 2.576 ≈ 99 %).
    pub z_score: f64,
    /// Hard cap on batches, so degenerate circuits terminate.
    pub max_batches: usize,
}

impl Default for MonteCarloOptions {
    fn default() -> MonteCarloOptions {
        MonteCarloOptions {
            batch_pairs: 4096,
            relative_error: 0.02,
            z_score: 1.96,
            max_batches: 256,
        }
    }
}

/// Result of a Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct MonteCarloResult {
    /// Per-line switching activity averaged over all batches.
    pub switching: Vec<f64>,
    /// Mean node activity (the convergence target).
    pub mean_activity: f64,
    /// Half-width of the final confidence interval on the mean activity.
    pub half_width: f64,
    /// Batches executed.
    pub batches: usize,
    /// Total vector pairs simulated.
    pub pairs: usize,
    /// Whether the stopping criterion was met (vs. hitting `max_batches`).
    pub converged: bool,
}

/// Batch-sequential Monte-Carlo switching estimator.
///
/// # Example
///
/// ```
/// use swact_circuit::catalog;
/// use swact_sim::{MonteCarloEstimator, MonteCarloOptions, StreamModel};
///
/// let c17 = catalog::c17();
/// let mc = MonteCarloEstimator::new(MonteCarloOptions::default());
/// let result = mc.run(&c17, &StreamModel::uniform(5), 99);
/// assert!(result.converged);
/// assert!(result.mean_activity > 0.1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MonteCarloEstimator {
    options: MonteCarloOptions,
}

impl MonteCarloEstimator {
    /// Creates an estimator with the given options.
    pub fn new(options: MonteCarloOptions) -> MonteCarloEstimator {
        MonteCarloEstimator { options }
    }

    /// Runs batches until the confidence interval on the mean node activity
    /// is within the configured relative error (or `max_batches` is hit).
    ///
    /// # Panics
    ///
    /// Panics if the model's input count differs from the circuit's.
    pub fn run(&self, circuit: &Circuit, model: &StreamModel, seed: u64) -> MonteCarloResult {
        let opts = self.options;
        let n = circuit.num_lines();
        let mut per_line_sum = vec![0.0; n];
        let mut rule = StoppingRule::new(opts.z_score);
        let mut pairs = 0usize;
        let mut converged = false;

        for batch in 0..opts.max_batches {
            let m = measure_activity(
                circuit,
                model,
                opts.batch_pairs,
                seed.wrapping_add(batch as u64 * 0x9e37_79b9),
            );
            pairs += m.pairs;
            for (acc, s) in per_line_sum.iter_mut().zip(&m.switching) {
                *acc += s;
            }
            rule.push(m.mean_switching());
            if rule.within_relative(opts.relative_error) {
                converged = true;
            }
            if converged {
                break;
            }
        }
        let half_width = rule.half_width();
        let batches = rule.len();
        let switching: Vec<f64> = per_line_sum
            .into_iter()
            .map(|s| s / batches as f64)
            .collect();
        let mean_activity = switching.iter().sum::<f64>() / n as f64;
        MonteCarloResult {
            switching,
            mean_activity,
            half_width,
            batches,
            pairs,
            converged,
        }
    }
}

impl MonteCarloEstimator {
    /// The configured options.
    pub fn options(&self) -> MonteCarloOptions {
        self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_circuit::catalog;

    #[test]
    fn converges_on_c17() {
        let c17 = catalog::c17();
        let mc = MonteCarloEstimator::new(MonteCarloOptions::default());
        let r = mc.run(&c17, &StreamModel::uniform(5), 1);
        assert!(r.converged);
        assert!(r.batches >= 2);
        assert!(r.half_width.is_finite());
        assert_eq!(r.switching.len(), c17.num_lines());
    }

    #[test]
    fn tighter_tolerance_needs_more_samples() {
        let c = catalog::benchmark("pcler8").unwrap();
        let model = StreamModel::uniform(c.num_inputs());
        let loose = MonteCarloEstimator::new(MonteCarloOptions {
            relative_error: 0.1,
            ..MonteCarloOptions::default()
        })
        .run(&c, &model, 7);
        let tight = MonteCarloEstimator::new(MonteCarloOptions {
            relative_error: 0.005,
            ..MonteCarloOptions::default()
        })
        .run(&c, &model, 7);
        assert!(tight.pairs >= loose.pairs);
    }

    #[test]
    fn max_batches_caps_work() {
        let c17 = catalog::c17();
        let mc = MonteCarloEstimator::new(MonteCarloOptions {
            relative_error: 1e-9, // unreachable
            max_batches: 3,
            batch_pairs: 64,
            ..MonteCarloOptions::default()
        });
        let r = mc.run(&c17, &StreamModel::uniform(5), 2);
        assert!(!r.converged);
        assert_eq!(r.batches, 3);
    }

    #[test]
    fn estimate_close_to_long_measurement() {
        let c17 = catalog::c17();
        let model = StreamModel::uniform(5);
        let mc = MonteCarloEstimator::new(MonteCarloOptions::default()).run(&c17, &model, 3);
        let long = measure_activity(&c17, &model, 512_000, 4);
        assert!((mc.mean_activity - long.mean_switching()).abs() < 0.02);
    }
}
