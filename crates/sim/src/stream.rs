//! Stochastic input-stream models.
//!
//! Each primary input is a stationary binary process described by a
//! [`SignalModel`]: a signal probability `P(1)` plus a *switching activity*
//! `P(xₜ ≠ xₜ₋₁)`, realized as a stationary lag-1 Markov chain. Optional
//! [`SpatialGroup`]s correlate inputs with a shared latent stream — the
//! input-correlation regime the paper lists as its model's strength (§1,
//! advantage 2).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Stationary binary-signal model: `P(1) = p1`, toggling between
/// consecutive clocks with probability `activity`.
///
/// The pair `(p1, activity)` fully determines the stationary lag-1 Markov
/// chain. `activity = 2·p1·(1−p1)` recovers temporal independence;
/// `activity = 0` freezes the signal.
///
/// # Example
///
/// ```
/// use swact_sim::SignalModel;
///
/// let fair = SignalModel::independent(0.5);
/// assert!((fair.activity() - 0.5).abs() < 1e-12);
/// let sticky = SignalModel::new(0.5, 0.1);
/// assert!((sticky.joint()[1] - 0.05).abs() < 1e-12); // P(0→1)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalModel {
    p1: f64,
    activity: f64,
}

impl SignalModel {
    /// A model with explicit signal probability and switching activity.
    ///
    /// # Panics
    ///
    /// Panics if `p1 ∉ [0,1]`, `activity ∉ [0,1]`, or the combination is
    /// infeasible (a stationary chain at `p1` can toggle at most
    /// `2·min(p1, 1−p1)` of the time).
    pub fn new(p1: f64, activity: f64) -> SignalModel {
        assert!((0.0..=1.0).contains(&p1), "p1 out of range");
        assert!((0.0..=1.0).contains(&activity), "activity out of range");
        let max_activity = 2.0 * p1.min(1.0 - p1);
        assert!(
            activity <= max_activity + 1e-12,
            "activity {activity} infeasible at p1={p1} (max {max_activity})"
        );
        SignalModel { p1, activity }
    }

    /// A temporally independent model: `activity = 2·p1·(1−p1)`.
    pub fn independent(p1: f64) -> SignalModel {
        SignalModel::new(p1, 2.0 * p1 * (1.0 - p1))
    }

    /// The stationary signal probability `P(1)`.
    pub fn p1(&self) -> f64 {
        self.p1
    }

    /// The switching activity `P(xₜ ≠ xₜ₋₁)`.
    pub fn activity(&self) -> f64 {
        self.activity
    }

    /// Joint distribution over a `(prev, next)` pair, ordered
    /// `[p00, p01, p10, p11]`.
    pub fn joint(&self) -> [f64; 4] {
        let p01 = self.activity / 2.0 * 1.0; // stationarity ⇒ P(0→1)=P(1→0)
        let p10 = p01;
        let p00 = (1.0 - self.p1) - p01;
        let p11 = self.p1 - p10;
        [p00.max(0.0), p01, p10, p11.max(0.0)]
    }

    /// `P(next = 1 | prev)`, 0 when the conditioning event has no mass.
    pub fn next_one_given(&self, prev: bool) -> f64 {
        let j = self.joint();
        let (zero, one) = if prev { (j[2], j[3]) } else { (j[0], j[1]) };
        let mass = zero + one;
        if mass == 0.0 {
            0.0
        } else {
            one / mass
        }
    }
}

/// A spatially correlated input group: every member copies the group's
/// latent stream with probability `copy_prob`, otherwise draws from its own
/// model. `copy_prob = 1` makes members identical; `0` leaves them
/// independent.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialGroup {
    /// Input indices (positions in the circuit's input list) in the group.
    pub members: Vec<usize>,
    /// The latent stream's own model.
    pub latent: SignalModel,
    /// Per-clock probability that a member copies the latent value.
    pub copy_prob: f64,
}

/// The joint input model: one [`SignalModel`] per primary input plus
/// optional spatial groups.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamModel {
    /// Per-input models, aligned with the circuit's input declaration order.
    pub signals: Vec<SignalModel>,
    /// Spatially correlated groups (may be empty).
    pub groups: Vec<SpatialGroup>,
}

impl StreamModel {
    /// All inputs i.i.d. uniform (`P(1) = 0.5`, temporally independent) —
    /// the paper's "random input streams".
    pub fn uniform(num_inputs: usize) -> StreamModel {
        StreamModel {
            signals: vec![SignalModel::independent(0.5); num_inputs],
            groups: Vec::new(),
        }
    }

    /// Independent inputs with per-input signal probabilities.
    pub fn independent(p1: impl IntoIterator<Item = f64>) -> StreamModel {
        StreamModel {
            signals: p1.into_iter().map(SignalModel::independent).collect(),
            groups: Vec::new(),
        }
    }

    /// Number of inputs modeled.
    pub fn num_inputs(&self) -> usize {
        self.signals.len()
    }
}

/// Samples word-packed input streams from a [`StreamModel`]: 64 independent
/// lanes, each a stationary realization of the model.
///
/// # Example
///
/// ```
/// use swact_sim::{StreamModel, StreamSampler};
///
/// let model = StreamModel::uniform(3);
/// let mut sampler = StreamSampler::new(&model, 42);
/// let first = sampler.current().to_vec();
/// sampler.step();
/// assert_eq!(first.len(), 3);
/// assert_eq!(sampler.current().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct StreamSampler<'m> {
    model: &'m StreamModel,
    rng: SmallRng,
    /// Current word per input.
    current: Vec<u64>,
    /// Current word per group latent.
    latents: Vec<u64>,
}

impl<'m> StreamSampler<'m> {
    /// Creates a sampler and draws the initial (stationary) vector.
    pub fn new(model: &'m StreamModel, seed: u64) -> StreamSampler<'m> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let latents = model
            .groups
            .iter()
            .map(|g| bernoulli_word(&mut rng, g.latent.p1()))
            .collect::<Vec<u64>>();
        let mut current: Vec<u64> = model
            .signals
            .iter()
            .map(|s| bernoulli_word(&mut rng, s.p1()))
            .collect();
        let mut sampler_groups_applied = current.clone();
        apply_groups(model, &mut rng, &latents, &mut sampler_groups_applied);
        current = sampler_groups_applied;
        StreamSampler {
            model,
            rng,
            current,
            latents,
        }
    }

    /// The current input words (one per input; 64 lanes each).
    pub fn current(&self) -> &[u64] {
        &self.current
    }

    /// Advances every lane one clock according to the Markov models and
    /// group structure.
    pub fn step(&mut self) {
        // Advance latents.
        for (g, latent) in self.model.groups.iter().zip(self.latents.iter_mut()) {
            *latent = markov_step(&mut self.rng, *latent, &g.latent);
        }
        // Advance signals.
        let mut next: Vec<u64> = self
            .model
            .signals
            .iter()
            .zip(&self.current)
            .map(|(s, &prev)| markov_step(&mut self.rng, prev, s))
            .collect();
        apply_groups(self.model, &mut self.rng, &self.latents, &mut next);
        self.current = next;
    }
}

fn apply_groups(model: &StreamModel, rng: &mut SmallRng, latents: &[u64], words: &mut [u64]) {
    for (g, &latent) in model.groups.iter().zip(latents) {
        for &member in &g.members {
            let copy_mask = bernoulli_word(rng, g.copy_prob);
            words[member] = (latent & copy_mask) | (words[member] & !copy_mask);
        }
    }
}

/// A word whose 64 bits are i.i.d. Bernoulli(`p`).
fn bernoulli_word(rng: &mut SmallRng, p: f64) -> u64 {
    if p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return u64::MAX;
    }
    let mut w = 0u64;
    for bit in 0..64 {
        if rng.gen::<f64>() < p {
            w |= 1 << bit;
        }
    }
    w
}

/// One Markov step for all 64 lanes of a signal.
fn markov_step(rng: &mut SmallRng, prev: u64, model: &SignalModel) -> u64 {
    let up = bernoulli_word(rng, model.next_one_given(false)); // used where prev=0
    let stay = bernoulli_word(rng, model.next_one_given(true)); // used where prev=1
    (!prev & up) | (prev & stay)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_model_joint_is_a_distribution() {
        for (p1, act) in [(0.5, 0.5), (0.3, 0.2), (0.9, 0.1), (0.5, 0.0), (0.5, 1.0)] {
            let m = SignalModel::new(p1, act);
            let j = m.joint();
            assert!((j.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(j.iter().all(|&p| p >= 0.0));
            assert!((j[2] + j[3] - p1).abs() < 1e-12, "stationary P(1)");
            assert!((j[1] + j[2] - act).abs() < 1e-12, "activity");
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_activity_panics() {
        let _ = SignalModel::new(0.9, 0.5);
    }

    #[test]
    fn sampled_stream_matches_model_statistics() {
        let model = StreamModel {
            signals: vec![SignalModel::new(0.3, 0.2), SignalModel::independent(0.7)],
            groups: Vec::new(),
        };
        let mut sampler = StreamSampler::new(&model, 11);
        let steps = 4000;
        let mut ones = [0u64; 2];
        let mut toggles = [0u64; 2];
        let mut prev = sampler.current().to_vec();
        for _ in 0..steps {
            sampler.step();
            let cur = sampler.current();
            for i in 0..2 {
                ones[i] += cur[i].count_ones() as u64;
                toggles[i] += (cur[i] ^ prev[i]).count_ones() as u64;
            }
            prev = cur.to_vec();
        }
        let total = (steps * 64) as f64;
        for i in 0..2 {
            let p1 = ones[i] as f64 / total;
            let act = toggles[i] as f64 / total;
            assert!(
                (p1 - model.signals[i].p1()).abs() < 0.02,
                "input {i} p1 {p1}"
            );
            assert!(
                (act - model.signals[i].activity()).abs() < 0.02,
                "input {i} activity {act}"
            );
        }
    }

    #[test]
    fn frozen_signal_never_toggles() {
        let model = StreamModel {
            signals: vec![SignalModel::new(0.5, 0.0)],
            groups: Vec::new(),
        };
        let mut sampler = StreamSampler::new(&model, 3);
        let first = sampler.current()[0];
        for _ in 0..100 {
            sampler.step();
            assert_eq!(sampler.current()[0], first);
        }
    }

    #[test]
    fn full_copy_group_makes_members_identical() {
        let latent = SignalModel::independent(0.5);
        let model = StreamModel {
            signals: vec![SignalModel::independent(0.5); 3],
            groups: vec![SpatialGroup {
                members: vec![0, 2],
                latent,
                copy_prob: 1.0,
            }],
        };
        let mut sampler = StreamSampler::new(&model, 9);
        for _ in 0..50 {
            sampler.step();
            let w = sampler.current();
            assert_eq!(w[0], w[2], "grouped inputs identical");
        }
    }

    #[test]
    fn grouped_inputs_are_correlated() {
        let model = StreamModel {
            signals: vec![SignalModel::independent(0.5); 2],
            groups: vec![SpatialGroup {
                members: vec![0, 1],
                latent: SignalModel::independent(0.5),
                copy_prob: 0.8,
            }],
        };
        let mut sampler = StreamSampler::new(&model, 21);
        let mut agree = 0u64;
        let steps = 2000;
        for _ in 0..steps {
            sampler.step();
            let w = sampler.current();
            agree += (!(w[0] ^ w[1])).count_ones() as u64;
        }
        let agreement = agree as f64 / (steps * 64) as f64;
        assert!(agreement > 0.7, "agreement {agreement} too low");
    }

    #[test]
    fn deterministic_given_seed() {
        let model = StreamModel::uniform(4);
        let mut a = StreamSampler::new(&model, 5);
        let mut b = StreamSampler::new(&model, 5);
        for _ in 0..10 {
            a.step();
            b.step();
            assert_eq!(a.current(), b.current());
        }
    }
}
