//! Compiled-model cache keyed by circuit structure, options, and input-spec
//! signature, with LRU eviction weighted by the junction trees' nonzero
//! potential entries (nnz) — the memory a compiled model actually retains
//! and the work its propagations actually do once zero-compressed cliques
//! skip structural zeros.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use swact::{CompiledEstimator, InputSpec, Options};
use swact_circuit::Circuit;

/// Cache key: a structural fingerprint of everything that determines a
/// compiled model. Collisions would silently reuse the wrong model, so
/// every structural input — topology, gate kinds, line names, options, and
/// the spec's group/pair signature — feeds the hash.
pub(crate) fn model_key(circuit: &Circuit, spec: &InputSpec, options: &Options) -> u64 {
    let mut h = DefaultHasher::new();

    // Circuit structure.
    circuit.num_lines().hash(&mut h);
    circuit.num_inputs().hash(&mut h);
    for line in circuit.line_ids() {
        circuit.line_name(line).hash(&mut h);
        match circuit.gate(line) {
            None => 0u8.hash(&mut h),
            Some(gate) => {
                1u8.hash(&mut h);
                gate.kind.hash(&mut h);
                gate.inputs.len().hash(&mut h);
                for input in &gate.inputs {
                    input.index().hash(&mut h);
                }
            }
        }
    }
    for output in circuit.outputs() {
        output.index().hash(&mut h);
    }

    // Compilation options.
    options.heuristic.hash(&mut h);
    options.max_fanin.hash(&mut h);
    options.segment_budget.hash(&mut h);
    options.check_interval.hash(&mut h);
    options.single_bn.hash(&mut h);
    options.boundary_correlation.hash(&mut h);
    options.sparse.hash(&mut h);
    // Backends produce different artifacts (and different numbers): a
    // cached jtree model must never serve a bdd/twostate request.
    options.backend.hash(&mut h);
    // Resource governance is compiled in: a degraded model must never
    // serve a request with a looser budget (or vice versa). f64 limits
    // hash by bit pattern; the deadline only governs runtime but still
    // keys the model so per-batch deadlines never alias.
    options.budget.max_states.map(f64::to_bits).hash(&mut h);
    options.budget.max_factor_bytes.hash(&mut h);
    options.budget.deadline.hash(&mut h);
    options.no_fallback.hash(&mut h);
    // Incremental and cold-baseline models are distinct cache entries:
    // a cold-mode batch measuring the baseline must never warm (or be
    // served by) an incremental model's message caches and memos.
    options.incremental.hash(&mut h);

    // Spec signature: group membership and pairwise-joint edges become part
    // of the compiled structure (probabilities do not).
    spec.groups().len().hash(&mut h);
    for group in spec.groups() {
        group.members.hash(&mut h);
    }
    spec.pairwise_joints().len().hash(&mut h);
    for pair in spec.pairwise_joints() {
        pair.a.hash(&mut h);
        pair.b.hash(&mut h);
    }

    h.finish()
}

struct Entry {
    model: Arc<CompiledEstimator>,
    /// Nonzero junction-tree potential entries — the model's memory cost
    /// proxy (equals the full state-space size for uncompressed models).
    cost: f64,
    last_used: u64,
}

/// LRU cache of compiled estimators, bounded by total nnz cost rather than
/// entry count, so one huge model counts for what it weighs.
pub(crate) struct ModelCache {
    entries: HashMap<u64, Entry>,
    budget: f64,
    total_cost: f64,
    tick: u64,
}

impl ModelCache {
    pub(crate) fn new(budget_states: f64) -> ModelCache {
        ModelCache {
            entries: HashMap::new(),
            budget: budget_states.max(0.0),
            total_cost: 0.0,
            tick: 0,
        }
    }

    pub(crate) fn get(&mut self, key: u64) -> Option<Arc<CompiledEstimator>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.model)
        })
    }

    /// Inserts a freshly compiled model, evicting least-recently-used
    /// entries until the nnz budget holds again. The new entry is
    /// never evicted (a model bigger than the whole budget still gets
    /// cached — evicting it immediately would defeat the batch that needs
    /// it). Returns the number of evictions.
    pub(crate) fn insert(&mut self, key: u64, model: Arc<CompiledEstimator>) -> u64 {
        self.tick += 1;
        let cost = model.nnz() as f64;
        if let Some(old) = self.entries.insert(
            key,
            Entry {
                model,
                cost,
                last_used: self.tick,
            },
        ) {
            self.total_cost -= old.cost;
        }
        self.total_cost += cost;

        let mut evictions = 0;
        while self.total_cost > self.budget && self.entries.len() > 1 {
            let oldest = self
                .entries
                .iter()
                .filter(|(&k, _)| k != key)
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(&k, _)| k);
            match oldest {
                Some(victim) => {
                    let entry = self.entries.remove(&victim).expect("victim present");
                    self.total_cost -= entry.cost;
                    evictions += 1;
                }
                None => break,
            }
        }
        evictions
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    #[cfg(test)]
    pub(crate) fn total_cost(&self) -> f64 {
        self.total_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_circuit::parse::parse_bench;

    fn tiny_circuit(tag: &str) -> Circuit {
        let text = format!("INPUT(a)\nINPUT(b)\n{tag} = NAND(a, b)\nOUTPUT({tag})\n");
        parse_bench("tiny", &text).expect("parse tiny circuit")
    }

    fn compiled(circuit: &Circuit) -> Arc<CompiledEstimator> {
        Arc::new(CompiledEstimator::compile(circuit, &Options::default()).expect("compile"))
    }

    #[test]
    fn key_is_stable_and_structure_sensitive() {
        let c1 = tiny_circuit("y");
        let c2 = tiny_circuit("y");
        let c3 = tiny_circuit("z");
        let spec = InputSpec::uniform(c1.num_inputs());
        let options = Options::default();
        assert_eq!(
            model_key(&c1, &spec, &options),
            model_key(&c2, &spec, &options)
        );
        assert_ne!(
            model_key(&c1, &spec, &options),
            model_key(&c3, &spec, &options)
        );

        let other_options = Options {
            max_fanin: 2,
            ..Options::default()
        };
        assert_ne!(
            model_key(&c1, &spec, &options),
            model_key(&c1, &spec, &other_options)
        );

        let sparse_off = Options {
            sparse: swact::SparseMode::Off,
            ..Options::default()
        };
        assert_ne!(
            model_key(&c1, &spec, &options),
            model_key(&c1, &spec, &sparse_off)
        );

        // Same circuit and spec under a different backend must be a
        // different model — the cache may never mix backends.
        for backend in [swact::Backend::Bdd, swact::Backend::TwoState] {
            assert_ne!(
                model_key(&c1, &spec, &options),
                model_key(&c1, &spec, &Options::with_backend(backend))
            );
        }

        // A budget-governed model must not alias the unlimited one.
        let budgeted = Options::with_resource_budget(swact::Budget::states(1e4));
        assert_ne!(
            model_key(&c1, &spec, &options),
            model_key(&c1, &spec, &budgeted)
        );
        let strict = Options {
            no_fallback: true,
            ..budgeted
        };
        assert_ne!(
            model_key(&c1, &spec, &budgeted),
            model_key(&c1, &spec, &strict)
        );
        let deadlined = Options {
            budget: swact::Budget::deadline(std::time::Duration::from_millis(50)),
            ..Options::default()
        };
        assert_ne!(
            model_key(&c1, &spec, &options),
            model_key(&c1, &spec, &deadlined)
        );
    }

    #[test]
    fn lru_evicts_by_nnz_budget() {
        let circuit = tiny_circuit("y");
        let model = compiled(&circuit);
        let cost = model.nnz() as f64;
        assert!(cost > 0.0);
        // Budget fits exactly two models of this size.
        let mut cache = ModelCache::new(2.0 * cost);

        cache.insert(1, Arc::clone(&model));
        cache.insert(2, Arc::clone(&model));
        assert_eq!(cache.len(), 2);

        // Touch key 1 so key 2 is the LRU victim.
        assert!(cache.get(1).is_some());
        let evicted = cache.insert(3, Arc::clone(&model));
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert!(cache.total_cost() <= 2.0 * cost + 1e-9);
    }

    #[test]
    fn oversized_model_still_cached() {
        let circuit = tiny_circuit("y");
        let model = compiled(&circuit);
        let mut cache = ModelCache::new(0.0);
        let evicted = cache.insert(7, Arc::clone(&model));
        assert_eq!(evicted, 0);
        assert!(cache.get(7).is_some());
    }
}
