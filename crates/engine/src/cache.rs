//! Compiled-model cache keyed by circuit structure, options, and input-spec
//! signature, with LRU eviction weighted by the junction trees' nonzero
//! potential entries (nnz) — the memory a compiled model actually retains
//! and the work its propagations actually do once zero-compressed cliques
//! skip structural zeros.

use std::collections::HashMap;
use std::sync::Arc;

use swact::{CompiledEstimator, InputSpec, Options};
use swact_circuit::Circuit;

/// Cache key: a structural fingerprint of everything that determines a
/// compiled model — topology, gate kinds, line names, options, and the
/// spec's group/pair signature. Collisions would silently reuse the wrong
/// model, so all of it feeds the hash.
///
/// Delegates to [`swact::artifact::model_key`]: the same key names on-disk
/// artifacts, so the in-memory and disk tiers of the cache agree on
/// identity across processes (a `DefaultHasher` key would be randomized
/// per process and could never address a shared cache directory).
pub(crate) fn model_key(circuit: &Circuit, spec: &InputSpec, options: &Options) -> u128 {
    swact::artifact::model_key(circuit, Some(spec), options)
}

struct Entry {
    model: Arc<CompiledEstimator>,
    /// Nonzero junction-tree potential entries — the model's memory cost
    /// proxy (equals the full state-space size for uncompressed models).
    cost: f64,
    last_used: u64,
}

/// LRU cache of compiled estimators, bounded by total nnz cost rather than
/// entry count, so one huge model counts for what it weighs.
pub(crate) struct ModelCache {
    entries: HashMap<u128, Entry>,
    budget: f64,
    total_cost: f64,
    tick: u64,
}

impl ModelCache {
    pub(crate) fn new(budget_states: f64) -> ModelCache {
        ModelCache {
            entries: HashMap::new(),
            budget: budget_states.max(0.0),
            total_cost: 0.0,
            tick: 0,
        }
    }

    pub(crate) fn get(&mut self, key: u128) -> Option<Arc<CompiledEstimator>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.model)
        })
    }

    /// Inserts a freshly compiled model, evicting least-recently-used
    /// entries until the nnz budget holds again. The new entry is
    /// never evicted (a model bigger than the whole budget still gets
    /// cached — evicting it immediately would defeat the batch that needs
    /// it). Returns the number of evictions.
    pub(crate) fn insert(&mut self, key: u128, model: Arc<CompiledEstimator>) -> u64 {
        self.tick += 1;
        let cost = model.nnz() as f64;
        if let Some(old) = self.entries.insert(
            key,
            Entry {
                model,
                cost,
                last_used: self.tick,
            },
        ) {
            self.total_cost -= old.cost;
        }
        self.total_cost += cost;

        let mut evictions = 0;
        while self.total_cost > self.budget && self.entries.len() > 1 {
            let oldest = self
                .entries
                .iter()
                .filter(|(&k, _)| k != key)
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(&k, _)| k);
            match oldest {
                Some(victim) => {
                    let entry = self.entries.remove(&victim).expect("victim present");
                    self.total_cost -= entry.cost;
                    evictions += 1;
                }
                None => break,
            }
        }
        evictions
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    #[cfg(test)]
    pub(crate) fn total_cost(&self) -> f64 {
        self.total_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_circuit::parse::parse_bench;

    fn tiny_circuit(tag: &str) -> Circuit {
        let text = format!("INPUT(a)\nINPUT(b)\n{tag} = NAND(a, b)\nOUTPUT({tag})\n");
        parse_bench("tiny", &text).expect("parse tiny circuit")
    }

    fn compiled(circuit: &Circuit) -> Arc<CompiledEstimator> {
        Arc::new(CompiledEstimator::compile(circuit, &Options::default()).expect("compile"))
    }

    #[test]
    fn key_is_stable_and_structure_sensitive() {
        let c1 = tiny_circuit("y");
        let c2 = tiny_circuit("y");
        let c3 = tiny_circuit("z");
        let spec = InputSpec::uniform(c1.num_inputs());
        let options = Options::default();
        assert_eq!(
            model_key(&c1, &spec, &options),
            model_key(&c2, &spec, &options)
        );
        assert_ne!(
            model_key(&c1, &spec, &options),
            model_key(&c3, &spec, &options)
        );

        let other_options = Options {
            max_fanin: 2,
            ..Options::default()
        };
        assert_ne!(
            model_key(&c1, &spec, &options),
            model_key(&c1, &spec, &other_options)
        );

        let sparse_off = Options {
            sparse: swact::SparseMode::Off,
            ..Options::default()
        };
        assert_ne!(
            model_key(&c1, &spec, &options),
            model_key(&c1, &spec, &sparse_off)
        );

        // The simd kernel reassociates reductions, so its results are not
        // bit-identical to scalar ones: a simd request must never be served
        // a scalar cache entry (or vice versa).
        let simd = Options {
            kernel: swact::KernelMode::Simd,
            ..Options::default()
        };
        assert_ne!(
            model_key(&c1, &spec, &options),
            model_key(&c1, &spec, &simd)
        );

        // Same circuit and spec under a different backend must be a
        // different model — the cache may never mix backends.
        for backend in [
            swact::Backend::Bdd,
            swact::Backend::TwoState,
            swact::Backend::Sampling,
        ] {
            assert_ne!(
                model_key(&c1, &spec, &options),
                model_key(&c1, &spec, &Options::with_backend(backend))
            );
        }

        // The sampling seed and CI targets shape sampled posteriors, so
        // they must key the cache too — a warm entry under another seed
        // would silently serve a different random stream.
        let seeded = Options {
            seed: 7,
            ..Options::default()
        };
        assert_ne!(
            model_key(&c1, &spec, &options),
            model_key(&c1, &spec, &seeded)
        );
        let tighter = Options {
            ci_half_width: 0.001,
            ..Options::default()
        };
        assert_ne!(
            model_key(&c1, &spec, &options),
            model_key(&c1, &spec, &tighter)
        );

        // A budget-governed model must not alias the unlimited one.
        let budgeted = Options::with_resource_budget(swact::Budget::states(1e4));
        assert_ne!(
            model_key(&c1, &spec, &options),
            model_key(&c1, &spec, &budgeted)
        );
        let strict = Options {
            no_fallback: true,
            ..budgeted
        };
        assert_ne!(
            model_key(&c1, &spec, &budgeted),
            model_key(&c1, &spec, &strict)
        );
        let deadlined = Options {
            budget: swact::Budget::deadline(std::time::Duration::from_millis(50)),
            ..Options::default()
        };
        assert_ne!(
            model_key(&c1, &spec, &options),
            model_key(&c1, &spec, &deadlined)
        );

        // Every structure-strategy combination is its own model: the cache
        // may never serve a greedy-ordered artifact to a FORCE request (or
        // vice versa) — their compiled potentials differ.
        let combos = [
            swact::StructureStrategy::GREEDY,
            swact::StructureStrategy::force(),
            swact::StructureStrategy::balanced_cut(),
            swact::StructureStrategy {
                ordering: swact::OrderingStrategy::Force,
                segmentation: swact::SegmentationStrategy::BalancedCut,
            },
        ];
        for (i, &a) in combos.iter().enumerate() {
            for &b in &combos[i + 1..] {
                assert_ne!(
                    model_key(&c1, &spec, &Options::with_strategy(a)),
                    model_key(&c1, &spec, &Options::with_strategy(b)),
                    "strategies {a} and {b} must not share a cache entry"
                );
            }
        }
    }

    #[test]
    fn lru_evicts_by_nnz_budget() {
        let circuit = tiny_circuit("y");
        let model = compiled(&circuit);
        let cost = model.nnz() as f64;
        assert!(cost > 0.0);
        // Budget fits exactly two models of this size.
        let mut cache = ModelCache::new(2.0 * cost);

        cache.insert(1, Arc::clone(&model));
        cache.insert(2, Arc::clone(&model));
        assert_eq!(cache.len(), 2);

        // Touch key 1 so key 2 is the LRU victim.
        assert!(cache.get(1).is_some());
        let evicted = cache.insert(3, Arc::clone(&model));
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert!(cache.total_cost() <= 2.0 * cost + 1e-9);
    }

    #[test]
    fn oversized_model_still_cached() {
        let circuit = tiny_circuit("y");
        let model = compiled(&circuit);
        let mut cache = ModelCache::new(0.0);
        let evicted = cache.insert(7, Arc::clone(&model));
        assert_eq!(evicted, 0);
        assert!(cache.get(7).is_some());
    }
}
