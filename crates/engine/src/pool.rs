//! A from-scratch fixed-size worker pool over `std::thread`.
//!
//! Deliberately minimal — a `Mutex<VecDeque>` of boxed jobs, a `Condvar`,
//! and N parked threads — because the engine's jobs are coarse (one full
//! propagation each), so queue overhead is irrelevant and determinism and
//! debuggability win over cleverness.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// Fixed-size worker pool; dropped pools finish queued jobs and join.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `jobs` worker threads (at least one).
    pub(crate) fn new(jobs: usize) -> WorkerPool {
        let shared = Arc::new(Shared::default());
        let workers = (0..jobs.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("swact-engine-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn engine worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub(crate) fn jobs(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; some idle worker will pick it up.
    ///
    /// Recovers from a poisoned queue mutex: the queue is a plain
    /// `VecDeque` whose every mutation is a single non-panicking push/pop,
    /// so a poison mark only means some *job* panicked while a worker
    /// held an unrelated lock — the queue itself is still consistent.
    pub(crate) fn submit(&self, job: Job) {
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        queue.push_back(job);
        drop(queue);
        self.shared.available.notify_one();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            // Poison recovery (see `submit`): one panicked job must not
            // wedge every subsequent batch behind a poisoned queue lock.
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Defense in depth: the engine already converts panics to
        // per-scenario errors at the job boundary, but a raw job that
        // slips a panic through must kill neither this worker nor the
        // process (abort on double panic during unwind).
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.jobs(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let (count, signal) = &*done;
                *count.lock().unwrap() += 1;
                signal.notify_all();
            }));
        }
        let (count, signal) = &*done;
        let mut finished = count.lock().unwrap();
        while *finished < 64 {
            finished = signal.wait(finished).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn drop_finishes_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..16 {
                let counter = Arc::clone(&counter);
                pool.submit(Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }));
            }
        }
        // Drop joined the worker, which drains the queue before exiting.
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn zero_requested_workers_still_runs() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.jobs(), 1);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker_or_wedge_the_pool() {
        let pool = WorkerPool::new(1);
        pool.submit(Box::new(|| panic!("job blows up")));
        // The same single worker must survive to run the next job, and
        // submit must not find a poisoned queue.
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let done2 = Arc::clone(&done);
        pool.submit(Box::new(move || {
            let (flag, signal) = &*done2;
            *flag.lock().unwrap() = true;
            signal.notify_all();
        }));
        let (flag, signal) = &*done;
        let mut ran = flag.lock().unwrap();
        while !*ran {
            ran = signal.wait(ran).unwrap();
        }
    }
}
