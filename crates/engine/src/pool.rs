//! A from-scratch fixed-size worker pool over `std::thread`.
//!
//! Deliberately minimal — a `Mutex<VecDeque>` of boxed jobs, a `Condvar`,
//! and N parked threads — because the engine's jobs are coarse (one full
//! propagation each), so queue overhead is irrelevant and determinism and
//! debuggability win over cleverness.
//!
//! Shutdown is explicit and deterministic: [`WorkerPool::shutdown`] either
//! **drains** (workers finish every queued job, the default and the `Drop`
//! behavior) or **cancels** (queued jobs are pulled off the queue and their
//! cancel thunks run, so waiting submitters observe a typed cancellation
//! instead of hanging). Both modes then wait until every in-flight job has
//! finished, so after `shutdown` returns no worker is touching shared
//! state.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

type Thunk = Box<dyn FnOnce() + Send + 'static>;

/// A queued unit of work: `run` executes on a worker; `cancel` (when
/// present) runs instead if the job is evicted by a cancelling shutdown —
/// it must unblock whoever is waiting on the job's result.
struct Job {
    run: Thunk,
    cancel: Option<Thunk>,
}

/// How a shutdown (pool- or [`Engine`](crate::Engine)-level) treats jobs
/// still sitting in the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Workers finish every queued job before exiting.
    Drain,
    /// Queued jobs never run; their cancel thunks execute instead.
    /// In-flight jobs still finish (jobs are not interruptible).
    CancelQueued,
}

#[derive(Default)]
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Signalled whenever a worker finishes a job and the queue is empty;
    /// paired with `queue` for idle waits.
    idle: Condvar,
    shutdown: AtomicBool,
    /// Jobs currently executing on a worker.
    busy: AtomicUsize,
}

/// Fixed-size worker pool; dropped pools drain queued jobs and join.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `jobs` worker threads (at least one).
    pub(crate) fn new(jobs: usize) -> WorkerPool {
        let shared = Arc::new(Shared::default());
        let workers = (0..jobs.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("swact-engine-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn engine worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub(crate) fn jobs(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job with no cancellation path; a cancelling shutdown
    /// silently discards it if it never started.
    #[cfg(test)]
    pub(crate) fn submit(&self, run: Thunk) {
        self.submit_job(Job { run, cancel: None });
    }

    /// Enqueues a job with a cancel thunk that runs (on the shutting-down
    /// thread) if the job is evicted before a worker picks it up.
    pub(crate) fn submit_cancellable(&self, run: Thunk, cancel: Thunk) {
        self.submit_job(Job {
            run,
            cancel: Some(cancel),
        });
    }

    /// Recovers from a poisoned queue mutex: the queue is a plain
    /// `VecDeque` whose every mutation is a single non-panicking push/pop,
    /// so a poison mark only means some *job* panicked while a worker
    /// held an unrelated lock — the queue itself is still consistent.
    fn submit_job(&self, job: Job) {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            // The workers are gone (or going): queued work would never
            // run. Cancel immediately so submitters never hang.
            if let Some(cancel) = job.cancel {
                let _ = catch_unwind(AssertUnwindSafe(cancel));
            }
            return;
        }
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Re-check under the lock: a concurrent cancelling shutdown drains
        // the queue exactly once, so a job slipping in after that drain
        // must cancel itself.
        if self.shared.shutdown.load(Ordering::SeqCst) {
            drop(queue);
            if let Some(cancel) = job.cancel {
                let _ = catch_unwind(AssertUnwindSafe(cancel));
            }
            return;
        }
        queue.push_back(job);
        drop(queue);
        self.shared.available.notify_one();
    }

    /// Stops the pool: queued jobs drain or cancel per `mode`, then the
    /// call blocks until every in-flight job has finished. Idempotent —
    /// later calls (and `Drop`) find an empty queue and return
    /// immediately. Does not join the worker threads (that happens in
    /// `Drop`); after this returns the workers are exiting or parked.
    pub(crate) fn shutdown(&self, mode: ShutdownMode) {
        let cancelled: Vec<Job> = {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            self.shared.shutdown.store(true, Ordering::SeqCst);
            match mode {
                ShutdownMode::Drain => Vec::new(),
                ShutdownMode::CancelQueued => queue.drain(..).collect(),
            }
        };
        self.shared.available.notify_all();
        for job in cancelled {
            if let Some(cancel) = job.cancel {
                // A panicking cancel thunk must not abort the shutdown of
                // every job behind it.
                let _ = catch_unwind(AssertUnwindSafe(cancel));
            }
        }
        // Wait for in-flight jobs (and, in drain mode, the queue) to
        // finish so callers observe a quiescent pool.
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while !queue.is_empty() || self.shared.busy.load(Ordering::SeqCst) > 0 {
            queue = self
                .shared
                .idle
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Whether `shutdown` has been initiated.
    pub(crate) fn is_shut_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown(ShutdownMode::Drain);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            // Poison recovery (see `submit_job`): one panicked job must
            // not wedge every subsequent batch behind a poisoned queue
            // lock.
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    // Marked busy *before* releasing the lock so an idle
                    // waiter never sees empty-queue + zero-busy while this
                    // job is in limbo.
                    shared.busy.fetch_add(1, Ordering::SeqCst);
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Defense in depth: the engine already converts panics to
        // per-scenario errors at the job boundary, but a raw job that
        // slips a panic through must kill neither this worker nor the
        // process (abort on double panic during unwind).
        let _ = catch_unwind(AssertUnwindSafe(job.run));
        // Take the queue lock before signalling idle so the busy decrement
        // can't race between an idle waiter's check and its wait.
        let queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        shared.busy.fetch_sub(1, Ordering::SeqCst);
        if queue.is_empty() {
            shared.idle.notify_all();
        }
        drop(queue);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.jobs(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let (count, signal) = &*done;
                *count.lock().unwrap() += 1;
                signal.notify_all();
            }));
        }
        let (count, signal) = &*done;
        let mut finished = count.lock().unwrap();
        while *finished < 64 {
            finished = signal.wait(finished).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn drop_finishes_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..16 {
                let counter = Arc::clone(&counter);
                pool.submit(Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }));
            }
        }
        // Drop drains the queue (and joins) before returning.
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn cancelling_shutdown_runs_cancel_thunks_for_queued_jobs() {
        let ran = Arc::new(AtomicUsize::new(0));
        let cancelled = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(1);
        // Plug the single worker so everything behind the plug stays
        // queued until shutdown.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            pool.submit(Box::new(move || {
                let (open, signal) = &*gate;
                let mut open = open.lock().unwrap();
                while !*open {
                    open = signal.wait(open).unwrap();
                }
            }));
        }
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            let cancelled = Arc::clone(&cancelled);
            pool.submit_cancellable(
                Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                }),
                Box::new(move || {
                    cancelled.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        // Unplug the worker from another thread once shutdown is under
        // way, then cancel the queue. Ordering here is deterministic: the
        // queue is drained before shutdown() waits for the in-flight job.
        let unplug = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                let (open, signal) = &*gate;
                *open.lock().unwrap() = true;
                signal.notify_all();
            })
        };
        pool.shutdown(ShutdownMode::CancelQueued);
        unplug.join().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 0, "queued jobs must not run");
        assert_eq!(cancelled.load(Ordering::SeqCst), 8);
        assert!(pool.is_shut_down());
    }

    #[test]
    fn submit_after_shutdown_cancels_immediately() {
        let pool = WorkerPool::new(1);
        pool.shutdown(ShutdownMode::Drain);
        let cancelled = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&cancelled);
        pool.submit_cancellable(
            Box::new(|| panic!("must not run")),
            Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert_eq!(cancelled.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn shutdown_is_idempotent_and_waits_for_in_flight() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let counter = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(5));
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown(ShutdownMode::Drain);
        // All jobs finished *before* shutdown returned.
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        pool.shutdown(ShutdownMode::Drain);
        pool.shutdown(ShutdownMode::CancelQueued);
    }

    #[test]
    fn zero_requested_workers_still_runs() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.jobs(), 1);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker_or_wedge_the_pool() {
        let pool = WorkerPool::new(1);
        pool.submit(Box::new(|| panic!("job blows up")));
        // The same single worker must survive to run the next job, and
        // submit must not find a poisoned queue.
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let done2 = Arc::clone(&done);
        pool.submit(Box::new(move || {
            let (flag, signal) = &*done2;
            *flag.lock().unwrap() = true;
            signal.notify_all();
        }));
        let (flag, signal) = &*done;
        let mut ran = flag.lock().unwrap();
        while !*ran {
            ran = signal.wait(ran).unwrap();
        }
    }
}
