//! swact-engine: concurrent batch-inference engine over shared compiled
//! junction trees.
//!
//! The paper's central economics (Table 1) are *compile once, propagate
//! many*: junction-tree compilation dominates total runtime while each
//! evidence update runs in milliseconds. This crate turns that asymmetry
//! into a service-shaped API — an [`Engine`] owns
//!
//! 1. a **compiled-model cache** keyed by (circuit structure, [`Options`],
//!    input-spec signature), LRU-evicted by the models' nonzero
//!    clique-potential entries (nnz — what a model actually costs once
//!    zero-compressed cliques drop their structural zeros), so repeated
//!    batches over the same circuit never recompile;
//! 2. a **fixed worker pool** of plain `std::thread`s sharing each
//!    `Arc<CompiledEstimator>` — the `&self` propagation API introduced
//!    alongside this crate lets one compiled model serve all workers
//!    concurrently, each borrowing pooled `PropagationState` scratch; and
//! 3. **observability counters** ([`MetricsSnapshot`]): cache hits/misses,
//!    evictions, per-stage compile/propagate/queue-wait timings, and queue
//!    depth.
//!
//! Results are returned in *submission order* regardless of worker count:
//! [`Engine::estimate_batch`] with `jobs = 1` and `jobs = N` produce
//! bit-identical estimates.
//!
//! # Example
//!
//! ```
//! use swact::{InputSpec, Options};
//! use swact_circuit::catalog;
//! use swact_engine::Engine;
//!
//! let engine = Engine::with_jobs(2);
//! let circuit = catalog::c17();
//! let specs: Vec<InputSpec> = (1..=4)
//!     .map(|i| {
//!         InputSpec::independent(vec![0.1 * i as f64; circuit.num_inputs()])
//!     })
//!     .collect();
//!
//! let report = engine
//!     .estimate_batch(&circuit, &specs, &Options::default())
//!     .unwrap();
//! assert_eq!(report.items.len(), 4);
//! assert!(!report.cache_hit); // first batch compiles ...
//!
//! let again = engine
//!     .estimate_batch(&circuit, &specs, &Options::default())
//!     .unwrap();
//! assert!(again.cache_hit); // ... later batches reuse the junction trees
//! ```

// A panic reaching `.unwrap()` in engine code takes a worker (and its
// batch) down; failures must flow through `EstimateError` instead.
// Invariant-protected `.expect()`s remain allowed, each documented.
#![deny(clippy::unwrap_used)]

mod cache;
mod metrics;
mod pool;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use swact::artifact;
use swact::{CompiledEstimator, Estimate, EstimateError, InputSpec, Options, StageTimings};
use swact_circuit::Circuit;

use cache::{model_key, ModelCache};
use metrics::EngineMetrics;
pub use metrics::MetricsSnapshot;
pub use pool::ShutdownMode;
use pool::WorkerPool;

/// Default cache budget: total junction-tree states the cache may hold
/// (2²⁴ ≈ 16.7M states ≈ 134 MB of f64 potentials).
pub const DEFAULT_CACHE_BUDGET_STATES: f64 = (1u64 << 24) as f64;

/// Result of one scenario in a batch, tagged with its submission index.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Position of the scenario in the submitted spec slice.
    pub index: usize,
    /// The estimate, or the per-scenario error (other scenarios still run).
    pub result: Result<Estimate, EstimateError>,
    /// Time the scenario sat in the queue before a worker picked it up.
    pub queue_wait: Duration,
    /// Time the worker spent propagating this scenario.
    pub run_time: Duration,
}

/// Outcome of [`Engine::estimate_batch`]: per-scenario results in
/// submission order plus batch-level accounting.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One entry per submitted spec, sorted by `index` (submission order).
    pub items: Vec<BatchItem>,
    /// Whether the compiled model came from the cache.
    pub cache_hit: bool,
    /// Time spent compiling for this batch (zero on a cache hit).
    pub compile_time: Duration,
    /// Wall-clock time of the whole batch, compile included.
    pub wall_time: Duration,
    /// Worker threads used.
    pub jobs: usize,
    /// Per-stage breakdown: `plan`/`model`/`compile` cover this batch's
    /// compile pass (zero on a cache hit), while `propagate`/`forward` sum
    /// over the batch's successful scenarios — so with multiple workers
    /// they can exceed `wall_time`.
    pub stages: StageTimings,
}

impl BatchReport {
    /// Successful estimates in submission order.
    pub fn estimates(&self) -> impl Iterator<Item = &Estimate> {
        self.items
            .iter()
            .filter_map(|item| item.result.as_ref().ok())
    }

    /// Whether every scenario succeeded.
    pub fn all_ok(&self) -> bool {
        self.items.iter().all(|item| item.result.is_ok())
    }

    /// Number of successful scenarios whose estimate carries
    /// budget-degradation reports (see
    /// [`Estimate::degradations`](swact::Estimate::degradations)).
    pub fn degraded_scenarios(&self) -> usize {
        self.estimates().filter(|e| e.is_degraded()).count()
    }

    /// Scenario throughput: scenarios per wall-clock second.
    pub fn scenarios_per_sec(&self) -> f64 {
        if self.wall_time.is_zero() {
            return 0.0;
        }
        self.items.len() as f64 / self.wall_time.as_secs_f64()
    }
}

/// Concurrent batch-inference engine over shared compiled junction trees.
///
/// Cheap to keep around: workers sleep on a condvar between batches, and
/// the cache holds `Arc`s that batches in flight also share. Dropping the
/// engine drains queued jobs and joins the workers.
pub struct Engine {
    pool: WorkerPool,
    cache: Mutex<ModelCache>,
    /// Disk tier of the model cache: memory misses consult this directory
    /// before compiling, and fresh compiles are persisted back. `None`
    /// keeps the cache memory-only.
    cache_dir: Option<PathBuf>,
    metrics: Arc<EngineMetrics>,
    /// Set by [`shutdown`](Engine::shutdown); batches submitted afterwards
    /// fail fast with [`EstimateError::Cancelled`].
    closed: AtomicBool,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// Engine with one worker per available CPU and the default cache
    /// budget ([`DEFAULT_CACHE_BUDGET_STATES`]).
    pub fn new() -> Engine {
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Engine::with_jobs(jobs)
    }

    /// Engine with an explicit worker count (`0` means one worker),
    /// clamped to the host's available parallelism: the workers are plain
    /// compute-bound threads, so oversubscribing CPUs only adds
    /// context-switch overhead (measured as a 0.43× throughput *loss* at
    /// `jobs = 8` on one CPU). Use
    /// [`with_jobs_forced`](Engine::with_jobs_forced) to bypass the clamp.
    pub fn with_jobs(jobs: usize) -> Engine {
        Engine::with_jobs_and_cache(jobs, DEFAULT_CACHE_BUDGET_STATES)
    }

    /// Engine with exactly `jobs` workers (`0` means one worker), without
    /// the available-parallelism clamp — for benchmarking scheduler
    /// behavior or when the host reports its CPU count wrong.
    pub fn with_jobs_forced(jobs: usize) -> Engine {
        Engine::with_jobs_forced_and_cache(jobs, DEFAULT_CACHE_BUDGET_STATES)
    }

    /// Engine with explicit worker count (clamped to available
    /// parallelism) and cache budget (total junction-tree states the
    /// compiled-model cache may retain).
    pub fn with_jobs_and_cache(jobs: usize, cache_budget_states: f64) -> Engine {
        Engine::with_jobs_forced_and_cache(Engine::clamp_jobs(jobs), cache_budget_states)
    }

    /// Engine with exactly `jobs` workers (no clamp) and an explicit cache
    /// budget.
    pub fn with_jobs_forced_and_cache(jobs: usize, cache_budget_states: f64) -> Engine {
        Engine {
            pool: WorkerPool::new(jobs),
            cache: Mutex::new(ModelCache::new(cache_budget_states)),
            cache_dir: None,
            metrics: Arc::new(EngineMetrics::default()),
            closed: AtomicBool::new(false),
        }
    }

    /// Adds a disk tier to the compiled-model cache: memory misses consult
    /// `dir` for a persisted artifact before compiling, and every fresh
    /// compile is written back (atomically) for other — and future —
    /// processes. Corrupt, stale-version, or foreign artifacts are counted
    /// in [`MetricsSnapshot::artifacts_rejected`] and fall through to a
    /// clean compile; they are never an error.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Engine {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The disk tier's directory, when one is configured.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// Loads every readable artifact in the cache directory into the
    /// in-memory tier, so the first request for a known model is a memory
    /// hit instead of a disk read. Returns the number of models loaded;
    /// unreadable or invalid artifacts count as
    /// [`MetricsSnapshot::artifacts_rejected`] and are skipped. A no-op
    /// without a cache directory (returns 0).
    pub fn prewarm(&self) -> usize {
        use std::sync::atomic::Ordering;

        let Some(dir) = self.cache_dir.as_deref() else {
            return 0;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        let mut loaded = 0;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(key) = name.to_str().and_then(artifact::parse_artifact_file_name) else {
                continue;
            };
            match artifact::read_artifact(&entry.path(), Some(key)) {
                Ok((_, model)) => {
                    self.metrics
                        .artifacts_loaded
                        .fetch_add(1, Ordering::Relaxed);
                    let evicted = self
                        .cache
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .insert(key, Arc::new(model));
                    if evicted > 0 {
                        self.metrics.evictions.fetch_add(evicted, Ordering::Relaxed);
                    }
                    loaded += 1;
                }
                Err(_) => {
                    self.metrics
                        .artifacts_rejected
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        loaded
    }

    /// Shuts the engine down deterministically and blocks until workers
    /// are quiescent.
    ///
    /// * [`ShutdownMode::Drain`] — every queued scenario still runs;
    ///   in-flight batches complete normally.
    /// * [`ShutdownMode::CancelQueued`] — scenarios still in the queue are
    ///   resolved as [`EstimateError::Cancelled`] items (their batch
    ///   returns instead of hanging); scenarios already on a worker
    ///   finish.
    ///
    /// After shutdown, [`estimate_batch`](Engine::estimate_batch) fails
    /// fast with [`EstimateError::Cancelled`]. Idempotent and callable
    /// from any thread (e.g. while another thread is blocked inside
    /// `estimate_batch`). `Drop` performs a draining shutdown, so merely
    /// dropping an engine with a full queue neither hangs nor loses the
    /// deterministic drain.
    pub fn shutdown(&self, mode: ShutdownMode) {
        self.closed.store(true, std::sync::atomic::Ordering::SeqCst);
        self.pool.shutdown(mode);
    }

    /// Whether [`shutdown`](Engine::shutdown) has been called.
    pub fn is_shut_down(&self) -> bool {
        self.closed.load(std::sync::atomic::Ordering::SeqCst) || self.pool.is_shut_down()
    }

    /// Requested worker count clamped to `[1, available_parallelism]`.
    fn clamp_jobs(jobs: usize) -> usize {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        jobs.clamp(1, cpus)
    }

    /// Number of worker threads.
    pub fn jobs(&self) -> usize {
        self.pool.jobs()
    }

    /// A point-in-time copy of the engine's counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of compiled models currently cached.
    pub fn cached_models(&self) -> usize {
        // Cache-lock poison recovery: every critical section in
        // `compiled_model` is a lookup or insert on an LRU map that keeps
        // its invariants on panic, so the data is safe to keep using.
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Estimates every spec in `specs` against `circuit`, reusing one
    /// compiled model across all of them and across calls.
    ///
    /// All specs in a batch must share the same group/pairwise *signature*
    /// (the same sets of correlated inputs — probabilities are free to
    /// differ), because the signature is compiled into the model: the
    /// model is compiled for `specs[0]`, and scenarios whose signature
    /// differs fail individually with
    /// [`EstimateError::GroupStructureMismatch`] in their [`BatchItem`].
    ///
    /// # Errors
    ///
    /// Returns an error only if *compilation* fails (e.g.
    /// [`EstimateError::TooLarge`] in single-BN mode). Per-scenario
    /// propagation errors are reported in the items, not here.
    pub fn estimate_batch(
        &self,
        circuit: &Circuit,
        specs: &[InputSpec],
        options: &Options,
    ) -> Result<BatchReport, EstimateError> {
        let wall_start = Instant::now();
        if self.is_shut_down() {
            return Err(EstimateError::Cancelled);
        }
        if specs.is_empty() {
            return Ok(BatchReport {
                items: Vec::new(),
                cache_hit: true,
                compile_time: Duration::ZERO,
                wall_time: wall_start.elapsed(),
                jobs: self.pool.jobs(),
                stages: StageTimings::default(),
            });
        }

        let (model, cache_hit, compile_time) = self.compiled_model(circuit, &specs[0], options)?;
        let mut stages = if cache_hit {
            StageTimings::default()
        } else {
            model.stage_timings()
        };

        // One slot per scenario, filled by workers in arbitrary order and
        // read back by index — submission order survives any scheduling.
        let slots: Arc<Vec<Mutex<Option<BatchItem>>>> =
            Arc::new((0..specs.len()).map(|_| Mutex::new(None)).collect());
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));

        for (index, spec) in specs.iter().enumerate() {
            let model = Arc::clone(&model);
            let spec = spec.clone();
            let slots = Arc::clone(&slots);
            let done = Arc::clone(&done);
            let metrics = Arc::clone(&self.metrics);
            let opts = *options;
            let enqueued_at = Instant::now();
            self.metrics.enqueue();
            // A cancelling shutdown runs this instead of the job: the slot
            // still fills and the done count still bumps, so this batch's
            // wait loop below terminates with a typed per-scenario error
            // rather than hanging on a job that will never run.
            let cancel = {
                let slots = Arc::clone(&slots);
                let done = Arc::clone(&done);
                let metrics = Arc::clone(&self.metrics);
                Box::new(move || {
                    use std::sync::atomic::Ordering;
                    metrics.dequeue();
                    metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                    metrics.requests_completed.fetch_add(1, Ordering::Relaxed);
                    metrics.requests_failed.fetch_add(1, Ordering::Relaxed);
                    *slots[index].lock().unwrap_or_else(PoisonError::into_inner) =
                        Some(BatchItem {
                            index,
                            result: Err(EstimateError::Cancelled),
                            queue_wait: enqueued_at.elapsed(),
                            run_time: Duration::ZERO,
                        });
                    let (count, signal) = &*done;
                    *count.lock().unwrap_or_else(PoisonError::into_inner) += 1;
                    signal.notify_all();
                })
            };
            self.pool.submit_cancellable(
                Box::new(move || {
                    let queue_wait = enqueued_at.elapsed();
                    metrics.dequeue();

                    let run_start = Instant::now();
                    let result = run_scenario(&model, &spec, index, &opts, queue_wait, &metrics);
                    let run_time = run_start.elapsed();

                    EngineMetrics::add_nanos(&metrics.queue_wait_nanos, queue_wait);
                    EngineMetrics::add_nanos(&metrics.propagate_nanos, run_time);
                    if let Ok(estimate) = &result {
                        EngineMetrics::add_nanos(
                            &metrics.forward_nanos,
                            estimate.stage_timings().forward,
                        );
                        let reuse = estimate.reuse_stats();
                        metrics
                            .messages_reused
                            .fetch_add(reuse.messages_reused, std::sync::atomic::Ordering::Relaxed);
                        metrics.messages_recomputed.fetch_add(
                            reuse.messages_recomputed,
                            std::sync::atomic::Ordering::Relaxed,
                        );
                        metrics.segments_skipped.fetch_add(
                            reuse.segments_skipped,
                            std::sync::atomic::Ordering::Relaxed,
                        );
                        if let Some(accuracy) = estimate.accuracy() {
                            metrics
                                .samples_drawn
                                .fetch_add(accuracy.samples, std::sync::atomic::Ordering::Relaxed);
                            let outcome = if accuracy.converged {
                                &metrics.sampling_converged
                            } else {
                                &metrics.sampling_timed_out
                            };
                            outcome.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                    metrics
                        .requests_completed
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if result.is_err() {
                        metrics
                            .requests_failed
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }

                    // Slot/done-lock poison recovery: each critical section is
                    // a single assignment, so poisoned state is still valid —
                    // and refusing to fill the slot would hang `wait` forever.
                    *slots[index].lock().unwrap_or_else(PoisonError::into_inner) =
                        Some(BatchItem {
                            index,
                            result,
                            queue_wait,
                            run_time,
                        });
                    let (count, signal) = &*done;
                    *count.lock().unwrap_or_else(PoisonError::into_inner) += 1;
                    signal.notify_all();
                }),
                cancel,
            );
        }

        let (count, signal) = &*done;
        let mut finished = count.lock().unwrap_or_else(PoisonError::into_inner);
        while *finished < specs.len() {
            finished = signal
                .wait(finished)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(finished);

        let items: Vec<BatchItem> = slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    // Invariant: the wait loop above returned only after
                    // every job bumped the done count, and each job fills
                    // its slot before doing so.
                    .expect("every slot filled before the batch returns")
            })
            .collect();

        for item in &items {
            if let Ok(estimate) = &item.result {
                let run = estimate.stage_timings();
                stages.propagate += run.propagate;
                stages.forward += run.forward;
            }
        }

        Ok(BatchReport {
            items,
            cache_hit,
            compile_time,
            wall_time: wall_start.elapsed(),
            jobs: self.pool.jobs(),
            stages,
        })
    }

    /// Looks the model up in the cache, compiling (and inserting) on miss.
    ///
    /// Compilation happens *outside* the cache lock so a slow compile for
    /// one circuit never blocks cache hits for others; if two threads race
    /// to compile the same key, the loser discards its copy and both count
    /// as misses (they both did the work).
    fn compiled_model(
        &self,
        circuit: &Circuit,
        spec: &InputSpec,
        options: &Options,
    ) -> Result<(Arc<CompiledEstimator>, bool, Duration), EstimateError> {
        use std::sync::atomic::Ordering;

        let key = model_key(circuit, spec, options);
        if let Some(model) = self
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
        {
            self.metrics.compile_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((model, true, Duration::ZERO));
        }

        // Disk tier: a sibling (or earlier) process may have persisted this
        // exact model. Any rejection — missing, corrupt, stale version,
        // foreign key — falls through to a clean compile.
        if let Some(dir) = self.cache_dir.as_deref() {
            let path = dir.join(artifact::artifact_file_name(key));
            match artifact::read_artifact(&path, Some(key)) {
                Ok((_, model)) => {
                    self.metrics
                        .artifacts_loaded
                        .fetch_add(1, Ordering::Relaxed);
                    self.metrics.compile_hits.fetch_add(1, Ordering::Relaxed);
                    let model = Arc::new(model);
                    let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
                    let model = match cache.get(key) {
                        Some(existing) => existing,
                        None => {
                            let evicted = cache.insert(key, Arc::clone(&model));
                            if evicted > 0 {
                                self.metrics.evictions.fetch_add(evicted, Ordering::Relaxed);
                            }
                            model
                        }
                    };
                    return Ok((model, true, Duration::ZERO));
                }
                Err(artifact::ArtifactError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                }
                Err(_) => {
                    self.metrics
                        .artifacts_rejected
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        let compile_start = Instant::now();
        let model = Arc::new(CompiledEstimator::compile_for(circuit, spec, options)?);
        let compile_time = compile_start.elapsed();
        self.metrics.compile_misses.fetch_add(1, Ordering::Relaxed);
        EngineMetrics::add_nanos(&self.metrics.compile_nanos, compile_time);
        let stages = model.stage_timings();
        EngineMetrics::add_nanos(&self.metrics.plan_nanos, stages.plan);
        EngineMetrics::add_nanos(&self.metrics.model_nanos, stages.model);
        self.metrics
            .compiled_nnz
            .fetch_add(model.nnz() as u64, Ordering::Relaxed);
        self.metrics
            .compiled_states
            .fetch_add(model.total_states() as u64, Ordering::Relaxed);
        self.metrics
            .degraded_segments
            .fetch_add(model.degradations().len() as u64, Ordering::Relaxed);
        self.metrics
            .force_ordered_segments
            .fetch_add(model.force_ordered_segments() as u64, Ordering::Relaxed);
        self.metrics
            .sampled_segments
            .fetch_add(model.sampled_segments() as u64, Ordering::Relaxed);
        self.metrics
            .compiled_max_clique_states
            .fetch_max(model.max_clique_states() as u64, Ordering::Relaxed);

        // Write-back to the disk tier (outside the cache lock — disk i/o
        // must not block memory hits). A failed write is not an error for
        // this batch; the model simply is not shared.
        if let Some(dir) = self.cache_dir.as_deref() {
            if artifact::write_artifact(dir, key, &model).is_ok() {
                self.metrics
                    .artifacts_persisted
                    .fetch_add(1, Ordering::Relaxed);
            }
        }

        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        let model = match cache.get(key) {
            // Lost a compile race — reuse the winner's model so the whole
            // engine shares one set of junction trees per key.
            Some(existing) => existing,
            None => {
                let evicted = cache.insert(key, Arc::clone(&model));
                if evicted > 0 {
                    self.metrics.evictions.fetch_add(evicted, Ordering::Relaxed);
                }
                model
            }
        };
        Ok((model, false, compile_time))
    }
}

/// Bounded number of re-executions of a scenario after a retryable error.
const MAX_RETRIES: u32 = 2;

/// Runs one scenario with the engine's fault envelope: a per-job queue
/// deadline, panic containment at the job boundary, and bounded
/// retry-with-backoff for errors classified retryable
/// ([`EstimateError::retryable`]).
fn run_scenario(
    model: &CompiledEstimator,
    spec: &InputSpec,
    index: usize,
    options: &Options,
    queue_wait: Duration,
    metrics: &EngineMetrics,
) -> Result<Estimate, EstimateError> {
    use std::sync::atomic::Ordering;

    // A scenario that already overshot its deadline in the queue is shed
    // immediately instead of occupying a worker.
    if let Some(deadline) = options.budget.deadline {
        if queue_wait > deadline {
            return Err(EstimateError::DeadlineExceeded {
                stage: "queue",
                deadline,
            });
        }
    }
    let attempt = || {
        catch_unwind(AssertUnwindSafe(|| {
            swact::faults::hit("engine:job", Some(index));
            model.estimate(spec)
        }))
        .unwrap_or_else(|payload| {
            metrics.jobs_panicked.fetch_add(1, Ordering::Relaxed);
            Err(EstimateError::from_panic(payload.as_ref()))
        })
    };
    let mut result = attempt();
    let mut retries = 0u32;
    while retries < MAX_RETRIES && result.as_ref().err().is_some_and(EstimateError::retryable) {
        retries += 1;
        metrics.retries.fetch_add(1, Ordering::Relaxed);
        // Deterministic bounded backoff; transient faults (another
        // tenant's memory spike, a caught panic) often clear immediately.
        std::thread::sleep(Duration::from_millis(1 << retries));
        result = attempt();
    }
    result
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use swact_circuit::catalog;

    fn specs_for(circuit: &Circuit, n: usize) -> Vec<InputSpec> {
        (0..n)
            .map(|i| {
                let p = 0.05 + 0.9 * (i as f64) / (n.max(2) - 1) as f64;
                InputSpec::independent(vec![p; circuit.num_inputs()])
            })
            .collect()
    }

    #[test]
    fn batch_results_keep_submission_order_and_match_direct_estimation() {
        let circuit = catalog::c17();
        let options = Options::default();
        let specs = specs_for(&circuit, 6);
        let engine = Engine::with_jobs_forced(3);

        let report = engine.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(report.all_ok());
        assert_eq!(report.jobs, 3);
        assert_eq!(
            report.items.iter().map(|i| i.index).collect::<Vec<_>>(),
            (0..specs.len()).collect::<Vec<_>>()
        );

        let direct = CompiledEstimator::compile_for(&circuit, &specs[0], &options).unwrap();
        for (item, spec) in report.items.iter().zip(&specs) {
            let expected = direct.estimate(spec).unwrap();
            let got = item.result.as_ref().unwrap();
            assert_eq!(got.switching_all(), expected.switching_all());
        }
    }

    #[test]
    fn single_and_multi_worker_batches_are_bit_identical() {
        let circuit = catalog::c17();
        let options = Options::default();
        let specs = specs_for(&circuit, 8);

        let serial = Engine::with_jobs(1)
            .estimate_batch(&circuit, &specs, &options)
            .unwrap();
        let parallel = Engine::with_jobs_forced(4)
            .estimate_batch(&circuit, &specs, &options)
            .unwrap();

        for (a, b) in serial.items.iter().zip(&parallel.items) {
            assert_eq!(a.index, b.index);
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            // Bit-identical, not approximately equal.
            for (x, y) in a.switching_all().iter().zip(b.switching_all().iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// The sampling backend's seeded streams must make it exactly as
    /// deterministic as the exact backends: same seed ⇒ bit-identical
    /// results whether one worker or four ran the batch. (No deadline is
    /// set, so every stop is convergence- or cap-driven — timing never
    /// influences the sample count.)
    #[test]
    fn sampling_batches_are_bit_identical_across_job_counts() {
        let circuit = catalog::c17();
        let options = Options {
            backend: swact::Backend::Sampling,
            seed: 42,
            ..Options::default()
        };
        let specs = specs_for(&circuit, 6);

        let serial = Engine::with_jobs(1)
            .estimate_batch(&circuit, &specs, &options)
            .unwrap();
        let parallel = Engine::with_jobs_forced(4)
            .estimate_batch(&circuit, &specs, &options)
            .unwrap();

        for (a, b) in serial.items.iter().zip(&parallel.items) {
            assert_eq!(a.index, b.index);
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert!(a.accuracy().is_some(), "sampled estimates carry accuracy");
            assert_eq!(a.accuracy(), b.accuracy());
            for (x, y) in a.switching_all().iter().zip(b.switching_all().iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn sampling_metrics_count_segments_samples_and_outcomes() {
        let circuit = catalog::c17();
        let options = Options {
            backend: swact::Backend::Sampling,
            seed: 1,
            ..Options::default()
        };
        let engine = Engine::with_jobs(1);
        let report = engine
            .estimate_batch(&circuit, &specs_for(&circuit, 2), &options)
            .unwrap();
        assert!(report.all_ok());
        let metrics = engine.metrics();
        assert!(metrics.sampled_segments > 0);
        assert!(metrics.samples_drawn > 0);
        assert_eq!(metrics.sampling_converged + metrics.sampling_timed_out, 2);
    }

    fn temp_cache_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("swact-engine-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_tier_warm_starts_a_fresh_engine_bit_identically() {
        let dir = temp_cache_dir("warm");
        let circuit = catalog::c17();
        let options = Options::default();
        let specs = specs_for(&circuit, 3);

        // First engine compiles and persists.
        let cold = Engine::with_jobs(1).with_cache_dir(&dir);
        let first = cold.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(!first.cache_hit);
        let cold_metrics = cold.metrics();
        assert_eq!(cold_metrics.artifacts_persisted, 1);
        assert_eq!(cold_metrics.artifacts_loaded, 0);
        drop(cold);

        // A fresh engine (new process stand-in: empty memory tier) loads
        // the artifact instead of compiling.
        let warm = Engine::with_jobs(1).with_cache_dir(&dir);
        let second = warm.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(second.cache_hit, "disk hit must skip the compile");
        let warm_metrics = warm.metrics();
        assert_eq!(warm_metrics.artifacts_loaded, 1);
        assert_eq!(
            warm_metrics.compile_misses, 0,
            "zero compiles on warm start"
        );

        for (a, b) in first.items.iter().zip(&second.items) {
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            for (x, y) in a.switching_all().iter().zip(b.switching_all().iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The sampling stream seed is computed at compile time and travels
    /// inside the persisted artifact, so a warm-started engine must draw
    /// the exact same samples a cold compile would.
    #[test]
    fn sampling_warm_start_is_bit_identical_to_cold_compile() {
        let dir = temp_cache_dir("warm-sampling");
        let circuit = catalog::c17();
        let options = Options {
            backend: swact::Backend::Sampling,
            seed: 9,
            ..Options::default()
        };
        let specs = specs_for(&circuit, 3);

        let cold = Engine::with_jobs(1).with_cache_dir(&dir);
        let first = cold.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(!first.cache_hit);
        drop(cold);

        let warm = Engine::with_jobs(1).with_cache_dir(&dir);
        let second = warm.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(second.cache_hit, "disk hit must skip the compile");

        for (a, b) in first.items.iter().zip(&second.items) {
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(a.accuracy(), b.accuracy());
            for (x, y) in a.switching_all().iter().zip(b.switching_all().iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_artifacts_are_rejected_and_recompiled() {
        let dir = temp_cache_dir("corrupt");
        let circuit = catalog::c17();
        let options = Options::default();
        let specs = specs_for(&circuit, 2);

        let writer = Engine::with_jobs(1).with_cache_dir(&dir);
        writer.estimate_batch(&circuit, &specs, &options).unwrap();
        drop(writer);

        // Truncate the artifact in place.
        let artifact_path = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "swact"))
            .expect("one artifact persisted");
        let bytes = std::fs::read(&artifact_path).unwrap();
        std::fs::write(&artifact_path, &bytes[..bytes.len() / 2]).unwrap();

        let reader = Engine::with_jobs(1).with_cache_dir(&dir);
        let report = reader.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(report.all_ok());
        assert!(!report.cache_hit, "rejected artifact must recompile");
        let metrics = reader.metrics();
        assert_eq!(metrics.artifacts_rejected, 1);
        assert_eq!(metrics.artifacts_loaded, 0);
        assert_eq!(metrics.compile_misses, 1);
        // The recompile overwrote the corrupt file with a good one.
        assert_eq!(metrics.artifacts_persisted, 1);
        assert!(swact::artifact::verify_artifact(&artifact_path).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prewarm_fills_the_memory_tier() {
        let dir = temp_cache_dir("prewarm");
        let circuit = catalog::c17();
        let options = Options::default();
        let specs = specs_for(&circuit, 2);

        let writer = Engine::with_jobs(1).with_cache_dir(&dir);
        writer.estimate_batch(&circuit, &specs, &options).unwrap();
        drop(writer);
        // A stray non-artifact file is ignored, a corrupt artifact is
        // rejected without failing the scan.
        std::fs::write(dir.join("notes.txt"), b"not an artifact").unwrap();
        std::fs::write(
            dir.join(swact::artifact::artifact_file_name(99)),
            b"garbage",
        )
        .unwrap();

        let engine = Engine::with_jobs(1).with_cache_dir(&dir);
        assert_eq!(engine.prewarm(), 1);
        assert_eq!(engine.cached_models(), 1);
        let report = engine.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(report.cache_hit, "prewarmed model must be a memory hit");
        let metrics = engine.metrics();
        assert_eq!(metrics.artifacts_loaded, 1);
        assert_eq!(metrics.artifacts_rejected, 1);
        assert_eq!(metrics.compile_misses, 0);

        // Without a cache dir prewarm is a no-op.
        assert_eq!(Engine::with_jobs(1).prewarm(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_hits_skip_recompilation() {
        let circuit = catalog::c17();
        let options = Options::default();
        let specs = specs_for(&circuit, 3);
        let engine = Engine::with_jobs(2);

        let first = engine.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(!first.cache_hit);
        let second = engine.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.compile_time, Duration::ZERO);

        let metrics = engine.metrics();
        assert_eq!(metrics.compile_misses, 1);
        assert_eq!(metrics.compile_hits, 1);
        assert_eq!(metrics.requests_completed, 2 * specs.len() as u64);
        assert_eq!(metrics.requests_failed, 0);
        assert_eq!(metrics.queue_depth, 0);
        assert_eq!(engine.cached_models(), 1);
        // c17 is all NAND gates, so its deterministic CPTs zero out a large
        // share of the clique tables; one compile must have recorded that.
        assert!(metrics.compiled_nnz > 0);
        assert!(metrics.compiled_nnz < metrics.compiled_states);
        assert!(metrics.zero_fraction() > 0.0);
    }

    #[test]
    fn distinct_options_get_distinct_cache_entries() {
        let circuit = catalog::c17();
        let specs = specs_for(&circuit, 2);
        let engine = Engine::with_jobs(2);

        engine
            .estimate_batch(&circuit, &specs, &Options::default())
            .unwrap();
        engine
            .estimate_batch(&circuit, &specs, &Options::with_budget(1 << 10))
            .unwrap();

        assert_eq!(engine.cached_models(), 2);
        assert_eq!(engine.metrics().compile_misses, 2);
    }

    #[test]
    fn structure_strategies_never_share_a_cache_entry() {
        let circuit = catalog::c17();
        let specs = specs_for(&circuit, 2);
        let engine = Engine::with_jobs(2);

        engine
            .estimate_batch(&circuit, &specs, &Options::default())
            .unwrap();
        engine
            .estimate_batch(
                &circuit,
                &specs,
                &Options::with_strategy(swact::StructureStrategy::force()),
            )
            .unwrap();

        // The FORCE request must compile its own model, never be served
        // the greedy-ordered artifact from the cache.
        assert_eq!(engine.cached_models(), 2);
        assert_eq!(engine.metrics().compile_misses, 2);
        assert_eq!(engine.metrics().compile_hits, 0);
    }

    #[test]
    fn tiny_cache_budget_evicts_older_models() {
        let circuit = catalog::c17();
        let other = catalog::paper_example();
        let specs = specs_for(&circuit, 1);
        let other_specs = specs_for(&other, 1);
        // Budget below one model's state space: each new circuit evicts
        // the previous one.
        let engine = Engine::with_jobs_and_cache(1, 1.0);

        engine
            .estimate_batch(&circuit, &specs, &Options::default())
            .unwrap();
        engine
            .estimate_batch(&other, &other_specs, &Options::default())
            .unwrap();

        assert_eq!(engine.cached_models(), 1);
        assert_eq!(engine.metrics().evictions, 1);

        // The evicted circuit recompiles on return.
        let third = engine
            .estimate_batch(&circuit, &specs, &Options::default())
            .unwrap();
        assert!(!third.cache_hit);
    }

    #[test]
    fn per_scenario_errors_do_not_poison_the_batch() {
        let circuit = catalog::c17();
        let options = Options::default();
        let mut specs = specs_for(&circuit, 3);
        // Wrong input count for the middle scenario only.
        specs[1] = InputSpec::uniform(circuit.num_inputs() + 1);
        let engine = Engine::with_jobs(2);

        let report = engine.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(report.items[0].result.is_ok());
        assert!(report.items[1].result.is_err());
        assert!(report.items[2].result.is_ok());
        assert_eq!(engine.metrics().requests_failed, 1);
        assert_eq!(engine.metrics().requests_completed, 3);
    }

    #[test]
    fn stage_breakdown_reported_per_batch_and_in_metrics() {
        let circuit = catalog::c17();
        let options = Options::default();
        let specs = specs_for(&circuit, 4);
        let engine = Engine::with_jobs(2);

        let miss = engine.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(!miss.cache_hit);
        assert!(miss.stages.model > Duration::ZERO);
        assert!(miss.stages.compile > Duration::ZERO);
        assert!(miss.stages.propagate > Duration::ZERO);

        let hit = engine.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(hit.cache_hit);
        // Cache hits do no compile-side work; propagation still happens.
        assert_eq!(hit.stages.plan, Duration::ZERO);
        assert_eq!(hit.stages.model, Duration::ZERO);
        assert_eq!(hit.stages.compile, Duration::ZERO);
        assert!(hit.stages.propagate > Duration::ZERO);

        let metrics = engine.metrics();
        assert!(metrics.model_time > Duration::ZERO);
        assert!(metrics.model_time <= metrics.compile_time);
        assert!(metrics.plan_time <= metrics.compile_time);
    }

    #[test]
    fn backends_get_distinct_cache_entries_and_both_run() {
        let circuit = catalog::c17();
        let specs = specs_for(&circuit, 2);
        let engine = Engine::with_jobs(2);

        let jtree = engine
            .estimate_batch(&circuit, &specs, &Options::default())
            .unwrap();
        let bdd = engine
            .estimate_batch(
                &circuit,
                &specs,
                &Options::with_backend(swact::Backend::Bdd),
            )
            .unwrap();
        assert!(jtree.all_ok() && bdd.all_ok());
        assert!(!bdd.cache_hit, "bdd batch must not reuse the jtree model");
        assert_eq!(engine.cached_models(), 2);

        // Both exact backends agree on the estimates themselves.
        for (a, b) in jtree.estimates().zip(bdd.estimates()) {
            for (x, y) in a.switching_all().iter().zip(b.switching_all().iter()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn with_jobs_clamps_to_available_parallelism() {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(Engine::with_jobs(cpus * 8).jobs(), cpus);
        assert_eq!(Engine::with_jobs(0).jobs(), 1);
        assert_eq!(Engine::with_jobs_forced(cpus * 8).jobs(), cpus * 8);
        assert_eq!(Engine::new().jobs(), cpus);
    }

    #[test]
    fn repeated_scenarios_hit_the_posterior_memo() {
        let circuit = catalog::c17();
        let options = Options::default();
        // One distinct spec followed by identical repeats: the repeats'
        // root signatures match the memoized posterior, so their segments
        // are skipped outright.
        let spec = InputSpec::independent(vec![0.3; circuit.num_inputs()]);
        let specs = vec![spec; 4];
        let engine = Engine::with_jobs(1);

        let report = engine.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(report.all_ok());
        let metrics = engine.metrics();
        assert!(
            metrics.segments_skipped > 0,
            "identical scenarios must be served from the memo"
        );
        // All items are bit-identical regardless of which were memo-served.
        let first = report.items[0].result.as_ref().unwrap().switching_all();
        for item in &report.items[1..] {
            let got = item.result.as_ref().unwrap().switching_all();
            for (x, y) in first.iter().zip(&got) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn incremental_off_never_reuses_work() {
        let circuit = catalog::c17();
        let options = Options {
            incremental: false,
            ..Options::default()
        };
        let spec = InputSpec::independent(vec![0.3; circuit.num_inputs()]);
        let specs = vec![spec; 3];
        let engine = Engine::with_jobs(1);
        let report = engine.estimate_batch(&circuit, &specs, &options).unwrap();
        assert!(report.all_ok());
        let metrics = engine.metrics();
        assert_eq!(metrics.segments_skipped, 0);
        assert_eq!(metrics.messages_reused, 0);
        // c17 sits below the message cache's break-even point, so the
        // segment bypasses the cache entirely: nothing is recomputed
        // *through the cache* either — both counters pin at zero.
        assert_eq!(metrics.messages_recomputed, 0);
        assert_eq!(metrics.message_reuse_ratio(), 0.0);
    }

    /// Regression for the BENCH_batch.json finding that oversubscribing
    /// workers (jobs=8 on 1 CPU) *lost* 0.43× throughput: with the clamp,
    /// `with_jobs(8)` must be no slower than serial (1.1× tolerance plus
    /// an absolute grace for timer noise on tiny batches).
    #[test]
    fn oversubscribed_jobs_are_no_slower_than_serial() {
        let circuit = catalog::c17();
        let options = Options::default();
        let specs = specs_for(&circuit, 64);
        let serial = Engine::with_jobs(1);
        let over = Engine::with_jobs(8);
        let min_wall = |engine: &Engine| {
            // Min-of-3 after a cache-warming run: measures steady-state
            // propagation, robust to one-off scheduler hiccups.
            let mut best = Duration::MAX;
            for _ in 0..3 {
                let report = engine.estimate_batch(&circuit, &specs, &options).unwrap();
                assert!(report.all_ok());
                best = best.min(report.wall_time);
            }
            best
        };
        serial.estimate_batch(&circuit, &specs, &options).unwrap();
        over.estimate_batch(&circuit, &specs, &options).unwrap();
        let t_serial = min_wall(&serial);
        let t_over = min_wall(&over);
        assert!(
            t_over <= t_serial.mul_f64(1.1) + Duration::from_millis(20),
            "jobs=8 ({t_over:?}) must not be slower than jobs=1 ({t_serial:?})"
        );
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let circuit = catalog::c17();
        let engine = Engine::with_jobs(1);
        let report = engine
            .estimate_batch(&circuit, &[], &Options::default())
            .unwrap();
        assert!(report.items.is_empty());
        assert_eq!(engine.metrics().requests_completed, 0);
    }

    #[test]
    fn estimate_batch_after_shutdown_fails_fast() {
        let circuit = catalog::c17();
        let engine = Engine::with_jobs(1);
        engine.shutdown(ShutdownMode::Drain);
        assert!(engine.is_shut_down());
        // Idempotent: a second shutdown (any mode) is a no-op.
        engine.shutdown(ShutdownMode::CancelQueued);
        let err = engine
            .estimate_batch(&circuit, &specs_for(&circuit, 2), &Options::default())
            .unwrap_err();
        assert!(matches!(err, EstimateError::Cancelled));
        assert_eq!(engine.metrics().requests_completed, 0);
    }

    /// A draining shutdown lets every already-queued scenario run to
    /// completion — only batches *submitted* afterwards are refused.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn draining_shutdown_finishes_in_flight_batch() {
        use swact::faults::{arm, FaultAction, FaultPlan};

        let circuit = catalog::c17();
        let options = Options::default();
        let engine = Arc::new(Engine::with_jobs_forced(1));
        let specs = specs_for(&circuit, 8);

        // Pin the worker inside scenario 0 so the batch thread finishes
        // submitting all scenarios before the drain lands (a drain that
        // races the submit loop cancels the still-unsubmitted tail — see
        // `submit_after_shutdown_cancels_immediately` in the pool tests).
        let _guard = arm(FaultPlan::new().fault_at(
            "engine:job",
            0,
            FaultAction::Delay(Duration::from_millis(300)),
        ));

        let batch = {
            let engine = Arc::clone(&engine);
            let circuit = circuit.clone();
            let specs = specs.clone();
            std::thread::spawn(move || engine.estimate_batch(&circuit, &specs, &options))
        };
        while engine.metrics().queue_depth != specs.len() - 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        engine.shutdown(ShutdownMode::Drain);
        let report = batch.join().unwrap().unwrap();
        assert!(report.all_ok());
        assert_eq!(report.items.len(), specs.len());
        assert_eq!(engine.metrics().jobs_cancelled, 0);
    }

    /// Satellite regression: shutting down (and then dropping) an engine
    /// whose queue is full neither hangs the in-flight batch nor panics —
    /// every queued scenario resolves as [`EstimateError::Cancelled`].
    #[cfg(feature = "fault-inject")]
    #[test]
    fn cancelling_shutdown_resolves_queued_scenarios_and_drop_is_clean() {
        use swact::faults::{arm, FaultAction, FaultPlan};

        let circuit = catalog::c17();
        let options = Options::default();
        let engine = Arc::new(Engine::with_jobs_forced(1));
        let specs = specs_for(&circuit, 8);

        // Pin the single worker inside scenario 0 for long enough that the
        // other seven scenarios are deterministically still queued when the
        // cancelling shutdown lands.
        let _guard = arm(FaultPlan::new().fault_at(
            "engine:job",
            0,
            FaultAction::Delay(Duration::from_millis(500)),
        ));

        let batch = {
            let engine = Arc::clone(&engine);
            let circuit = circuit.clone();
            let specs = specs.clone();
            std::thread::spawn(move || engine.estimate_batch(&circuit, &specs, &options))
        };
        // Scenario 0 dequeues on pickup, so depth 7 means: worker stalled
        // in scenario 0, scenarios 1..8 all queued.
        while engine.metrics().queue_depth != specs.len() - 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        engine.shutdown(ShutdownMode::CancelQueued);

        let report = batch.join().unwrap().unwrap();
        assert_eq!(report.items.len(), specs.len());
        assert!(
            report.items[0].result.is_ok(),
            "in-flight scenario finishes"
        );
        for item in &report.items[1..] {
            assert!(matches!(item.result, Err(EstimateError::Cancelled)));
        }
        let metrics = engine.metrics();
        assert_eq!(metrics.jobs_cancelled, specs.len() as u64 - 1);
        assert_eq!(metrics.queue_depth, 0);
        assert_eq!(metrics.requests_completed, specs.len() as u64);

        let engine = Arc::into_inner(engine).expect("batch thread joined");
        drop(engine); // must not hang in the pool's Drop drain
    }
}
