//! Lock-free observability counters for the engine.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Internal counters, updated with relaxed atomics on the hot path and
/// read out as a coherent-enough [`MetricsSnapshot`]. Monotonic except for
/// `queue_depth`, which is a gauge.
#[derive(Debug, Default)]
pub(crate) struct EngineMetrics {
    pub(crate) compile_hits: AtomicU64,
    pub(crate) compile_misses: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) artifacts_loaded: AtomicU64,
    pub(crate) artifacts_persisted: AtomicU64,
    pub(crate) artifacts_rejected: AtomicU64,
    pub(crate) requests_completed: AtomicU64,
    pub(crate) requests_failed: AtomicU64,
    pub(crate) queue_depth: AtomicUsize,
    pub(crate) max_queue_depth: AtomicUsize,
    pub(crate) compile_nanos: AtomicU64,
    pub(crate) plan_nanos: AtomicU64,
    pub(crate) model_nanos: AtomicU64,
    pub(crate) propagate_nanos: AtomicU64,
    pub(crate) forward_nanos: AtomicU64,
    pub(crate) queue_wait_nanos: AtomicU64,
    pub(crate) compiled_nnz: AtomicU64,
    pub(crate) compiled_states: AtomicU64,
    pub(crate) jobs_panicked: AtomicU64,
    pub(crate) jobs_cancelled: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) degraded_segments: AtomicU64,
    pub(crate) messages_reused: AtomicU64,
    pub(crate) messages_recomputed: AtomicU64,
    pub(crate) segments_skipped: AtomicU64,
    pub(crate) force_ordered_segments: AtomicU64,
    pub(crate) compiled_max_clique_states: AtomicU64,
    pub(crate) sampled_segments: AtomicU64,
    pub(crate) samples_drawn: AtomicU64,
    pub(crate) sampling_converged: AtomicU64,
    pub(crate) sampling_timed_out: AtomicU64,
}

impl EngineMetrics {
    pub(crate) fn enqueue(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn add_nanos(target: &AtomicU64, elapsed: Duration) {
        target.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            compile_hits: self.compile_hits.load(Ordering::Relaxed),
            compile_misses: self.compile_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            artifacts_loaded: self.artifacts_loaded.load(Ordering::Relaxed),
            artifacts_persisted: self.artifacts_persisted.load(Ordering::Relaxed),
            artifacts_rejected: self.artifacts_rejected.load(Ordering::Relaxed),
            requests_completed: self.requests_completed.load(Ordering::Relaxed),
            requests_failed: self.requests_failed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            compile_time: Duration::from_nanos(self.compile_nanos.load(Ordering::Relaxed)),
            plan_time: Duration::from_nanos(self.plan_nanos.load(Ordering::Relaxed)),
            model_time: Duration::from_nanos(self.model_nanos.load(Ordering::Relaxed)),
            propagate_time: Duration::from_nanos(self.propagate_nanos.load(Ordering::Relaxed)),
            forward_time: Duration::from_nanos(self.forward_nanos.load(Ordering::Relaxed)),
            queue_wait: Duration::from_nanos(self.queue_wait_nanos.load(Ordering::Relaxed)),
            compiled_nnz: self.compiled_nnz.load(Ordering::Relaxed),
            compiled_states: self.compiled_states.load(Ordering::Relaxed),
            jobs_panicked: self.jobs_panicked.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded_segments: self.degraded_segments.load(Ordering::Relaxed),
            messages_reused: self.messages_reused.load(Ordering::Relaxed),
            messages_recomputed: self.messages_recomputed.load(Ordering::Relaxed),
            segments_skipped: self.segments_skipped.load(Ordering::Relaxed),
            force_ordered_segments: self.force_ordered_segments.load(Ordering::Relaxed),
            compiled_max_clique_states: self.compiled_max_clique_states.load(Ordering::Relaxed),
            sampled_segments: self.sampled_segments.load(Ordering::Relaxed),
            samples_drawn: self.samples_drawn.load(Ordering::Relaxed),
            sampling_converged: self.sampling_converged.load(Ordering::Relaxed),
            sampling_timed_out: self.sampling_timed_out.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the engine's counters.
///
/// `propagate_time` and `queue_wait` are *sums over requests*, so with `N`
/// workers busy the propagate total grows up to `N`× faster than the wall
/// clock — compare against `wall_time × jobs` for utilization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Batches served from the compiled-model cache.
    pub compile_hits: u64,
    /// Batches that had to compile their model.
    pub compile_misses: u64,
    /// Compiled models evicted to respect the cache budget.
    pub evictions: u64,
    /// Compiled models loaded from the on-disk artifact cache (warm
    /// starts) instead of being compiled.
    pub artifacts_loaded: u64,
    /// Compiled models persisted to the on-disk artifact cache after a
    /// compile.
    pub artifacts_persisted: u64,
    /// On-disk artifacts rejected (corrupt, stale version, foreign key, or
    /// unreadable) and recompiled from scratch.
    pub artifacts_rejected: u64,
    /// Scenario requests finished (successfully or not).
    pub requests_completed: u64,
    /// Scenario requests that returned an error.
    pub requests_failed: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
    /// Total time spent compiling models (cache misses only). This is the
    /// whole compile pass; `plan_time` and `model_time` break out its
    /// planning and BN-construction stages.
    pub compile_time: Duration,
    /// Time spent in the planning stage (fan-in decomposition +
    /// segmentation) of cache-miss compiles.
    pub plan_time: Duration,
    /// Time spent building per-segment Bayesian networks during cache-miss
    /// compiles.
    pub model_time: Duration,
    /// Total propagation time summed over requests.
    pub propagate_time: Duration,
    /// Time spent forwarding boundary distributions between segments,
    /// summed over requests (part of each request's run time).
    pub forward_time: Duration,
    /// Total time requests waited in the queue before a worker picked
    /// them up.
    pub queue_wait: Duration,
    /// Nonzero clique-potential entries summed over compiled models
    /// (cache misses only) — the propagation work actually performed.
    pub compiled_nnz: u64,
    /// Full clique state-space entries summed over compiled models (cache
    /// misses only); `compiled_nnz / compiled_states` under 1.0 means
    /// zero-compression is paying off.
    pub compiled_states: u64,
    /// Worker panics caught at the job boundary and converted to
    /// per-scenario [`Panicked`](swact::EstimateError::Panicked) errors.
    pub jobs_panicked: u64,
    /// Queued scenarios evicted by a cancelling engine shutdown and
    /// resolved as per-scenario
    /// [`Cancelled`](swact::EstimateError::Cancelled) errors.
    pub jobs_cancelled: u64,
    /// Scenario attempts re-executed after a retryable error
    /// (panic/deadline).
    pub retries: u64,
    /// Segments degraded by the compile-time budget ladder, summed over
    /// cache-miss compiles.
    pub degraded_segments: u64,
    /// Collect messages served verbatim from per-edge message caches,
    /// summed over requests.
    pub messages_reused: u64,
    /// Collect messages recomputed (dirty subtree or cold cache), summed
    /// over requests.
    pub messages_recomputed: u64,
    /// Segments served whole from the boundary-marginal posterior memo,
    /// summed over requests.
    pub segments_skipped: u64,
    /// Segments whose compiled artifact came from a FORCE-searched order
    /// that beat the greedy one, summed over cache-miss compiles (always
    /// zero unless a request opted into the `force` ordering strategy).
    pub force_ordered_segments: u64,
    /// High-water mark of a compiled model's largest clique state count
    /// (cache misses only), rounded to the nearest integer — the memory
    /// hot spot the ordering strategies exist to shrink.
    pub compiled_max_clique_states: u64,
    /// Segments compiled for the anytime sampling backend (primary or via
    /// the degradation ladder), summed over cache-miss compiles.
    pub sampled_segments: u64,
    /// Likelihood-weighting samples drawn across all sampled requests.
    pub samples_drawn: u64,
    /// Requests whose sampled estimate met its confidence-interval target.
    pub sampling_converged: u64,
    /// Requests whose sampler stopped on the deadline or batch cap before
    /// reaching the confidence-interval target.
    pub sampling_timed_out: u64,
}

impl MetricsSnapshot {
    /// Fraction of compiled clique-potential entries that were structural
    /// zeros; `0.0` before any model has been compiled.
    pub fn zero_fraction(&self) -> f64 {
        if self.compiled_states == 0 {
            return 0.0;
        }
        1.0 - self.compiled_nnz as f64 / self.compiled_states as f64
    }

    /// Fraction of collect messages served from cache
    /// (`reused / (reused + recomputed)`); `0.0` before any propagation.
    pub fn message_reuse_ratio(&self) -> f64 {
        let total = self.messages_reused + self.messages_recomputed;
        if total == 0 {
            0.0
        } else {
            self.messages_reused as f64 / total as f64
        }
    }

    /// Every counter as a `(name, value)` pair in a stable order, with
    /// durations converted to seconds (`*_seconds` names) — the flat view
    /// scrape endpoints and log sinks consume without matching struct
    /// fields one by one. Names are valid Prometheus metric-name suffixes.
    pub fn fields(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("compile_hits", self.compile_hits as f64),
            ("compile_misses", self.compile_misses as f64),
            ("evictions", self.evictions as f64),
            ("artifacts_loaded", self.artifacts_loaded as f64),
            ("artifacts_persisted", self.artifacts_persisted as f64),
            ("artifacts_rejected", self.artifacts_rejected as f64),
            ("requests_completed", self.requests_completed as f64),
            ("requests_failed", self.requests_failed as f64),
            ("queue_depth", self.queue_depth as f64),
            ("max_queue_depth", self.max_queue_depth as f64),
            ("compile_seconds", self.compile_time.as_secs_f64()),
            ("plan_seconds", self.plan_time.as_secs_f64()),
            ("model_seconds", self.model_time.as_secs_f64()),
            ("propagate_seconds", self.propagate_time.as_secs_f64()),
            ("forward_seconds", self.forward_time.as_secs_f64()),
            ("queue_wait_seconds", self.queue_wait.as_secs_f64()),
            ("compiled_nnz", self.compiled_nnz as f64),
            ("compiled_states", self.compiled_states as f64),
            ("jobs_panicked", self.jobs_panicked as f64),
            ("jobs_cancelled", self.jobs_cancelled as f64),
            ("retries", self.retries as f64),
            ("degraded_segments", self.degraded_segments as f64),
            ("messages_reused", self.messages_reused as f64),
            ("messages_recomputed", self.messages_recomputed as f64),
            ("segments_skipped", self.segments_skipped as f64),
            ("force_ordered_segments", self.force_ordered_segments as f64),
            (
                "compiled_max_clique_states",
                self.compiled_max_clique_states as f64,
            ),
            ("sampled_segments", self.sampled_segments as f64),
            ("samples_drawn", self.samples_drawn as f64),
            ("sampling_converged", self.sampling_converged as f64),
            ("sampling_timed_out", self.sampling_timed_out as f64),
        ]
    }
}
