//! Property tests for the BDD manager: random Boolean expressions checked
//! against direct truth-table evaluation, canonicity, and probability
//! computations.

use proptest::prelude::*;
use swact_bdd::{Bdd, NodeId};

/// A random Boolean expression over `n` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn arb_expr(num_vars: usize) -> impl Strategy<Value = Expr> {
    let leaf = (0..num_vars).prop_map(Expr::Var);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(bdd: &mut Bdd, e: &Expr) -> NodeId {
    match e {
        Expr::Var(i) => bdd.var(*i).expect("in range"),
        Expr::Not(a) => {
            let a = build(bdd, a);
            bdd.not(a).expect("budget")
        }
        Expr::And(a, b) => {
            let (a, b) = (build(bdd, a), build(bdd, b));
            bdd.and(a, b).expect("budget")
        }
        Expr::Or(a, b) => {
            let (a, b) = (build(bdd, a), build(bdd, b));
            bdd.or(a, b).expect("budget")
        }
        Expr::Xor(a, b) => {
            let (a, b) = (build(bdd, a), build(bdd, b));
            bdd.xor(a, b).expect("budget")
        }
    }
}

fn eval_expr(e: &Expr, assignment: &[bool]) -> bool {
    match e {
        Expr::Var(i) => assignment[*i],
        Expr::Not(a) => !eval_expr(a, assignment),
        Expr::And(a, b) => eval_expr(a, assignment) && eval_expr(b, assignment),
        Expr::Or(a, b) => eval_expr(a, assignment) || eval_expr(b, assignment),
        Expr::Xor(a, b) => eval_expr(a, assignment) ^ eval_expr(b, assignment),
    }
}

const N: usize = 5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BDD evaluation equals direct expression evaluation on every
    /// assignment.
    #[test]
    fn bdd_matches_truth_table(e in arb_expr(N)) {
        let mut bdd = Bdd::new(N);
        let f = build(&mut bdd, &e);
        for case in 0..1usize << N {
            let assignment: Vec<bool> = (0..N).map(|i| case >> i & 1 == 1).collect();
            prop_assert_eq!(bdd.eval(f, &assignment), eval_expr(&e, &assignment));
        }
    }

    /// Canonicity: two structurally different expressions with the same
    /// truth table hash-cons to the same node.
    #[test]
    fn canonical_forms_coincide(e in arb_expr(N)) {
        let mut bdd = Bdd::new(N);
        let f = build(&mut bdd, &e);
        // De Morganized double negation of the same expression.
        let nn = Expr::Not(Box::new(Expr::Not(Box::new(e))));
        let g = build(&mut bdd, &nn);
        prop_assert_eq!(f, g);
    }

    /// sat_count equals the truth-table count, and probability at p = ½
    /// everywhere equals sat_count / 2ⁿ.
    #[test]
    fn counting_and_probability_agree(e in arb_expr(N)) {
        let mut bdd = Bdd::new(N);
        let f = build(&mut bdd, &e);
        let mut count = 0u64;
        for case in 0..1usize << N {
            let assignment: Vec<bool> = (0..N).map(|i| case >> i & 1 == 1).collect();
            count += u64::from(eval_expr(&e, &assignment));
        }
        prop_assert!((bdd.sat_count(f) - count as f64).abs() < 1e-9);
        let p = bdd.probability(f, &[0.5; N]);
        prop_assert!((p - count as f64 / 32.0).abs() < 1e-12);
    }

    /// probability equals the weighted truth-table sum for arbitrary
    /// independent input probabilities.
    #[test]
    fn probability_matches_weighted_enumeration(
        e in arb_expr(N),
        probs in proptest::collection::vec(0.0f64..=1.0, N),
    ) {
        let mut bdd = Bdd::new(N);
        let f = build(&mut bdd, &e);
        let mut expected = 0.0;
        for case in 0..1usize << N {
            let assignment: Vec<bool> = (0..N).map(|i| case >> i & 1 == 1).collect();
            if eval_expr(&e, &assignment) {
                let weight: f64 = assignment
                    .iter()
                    .zip(&probs)
                    .map(|(&b, &p)| if b { p } else { 1.0 - p })
                    .product();
                expected += weight;
            }
        }
        prop_assert!((bdd.probability(f, &probs) - expected).abs() < 1e-9);
    }

    /// Shannon expansion: f = (x ∧ f|x=1) ∨ (¬x ∧ f|x=0).
    #[test]
    fn shannon_expansion(e in arb_expr(N), var in 0usize..N) {
        let mut bdd = Bdd::new(N);
        let f = build(&mut bdd, &e);
        let f1 = bdd.restrict(f, var, true).unwrap();
        let f0 = bdd.restrict(f, var, false).unwrap();
        let x = bdd.var(var).unwrap();
        let nx = bdd.nvar(var).unwrap();
        let hi = bdd.and(x, f1).unwrap();
        let lo = bdd.and(nx, f0).unwrap();
        let rebuilt = bdd.or(hi, lo).unwrap();
        prop_assert_eq!(rebuilt, f);
    }
}
