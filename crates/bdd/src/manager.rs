use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Handle to a node inside a [`Bdd`] manager.
///
/// [`Bdd::FALSE`] and [`Bdd::TRUE`] are the two terminals; every other id
/// refers to a decision node. Ids are only meaningful within the manager
/// that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Dense index of the node in the manager's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The inverse of [`index`](NodeId::index), for rebuilding handles from
    /// a serialized node table. The caller is responsible for only using
    /// indices that are in bounds for the manager the handle is given to
    /// (e.g. validated against [`Bdd::num_nodes`]).
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Errors from BDD construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BddError {
    /// The manager's node budget was exhausted; the function being built is
    /// too large under the current variable order.
    NodeLimit {
        /// The configured budget.
        limit: usize,
    },
    /// A variable index ≥ the manager's declared variable count was used.
    VarOutOfRange {
        /// The offending variable index.
        var: usize,
        /// The declared variable count.
        num_vars: usize,
    },
    /// A serialized node table handed to [`Bdd::from_table`] violates the
    /// reduced-ordered invariants (bad level, forward/self reference, or a
    /// redundant node).
    InvalidTable {
        /// What was wrong with the table.
        reason: String,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit { limit } => {
                write!(f, "bdd node limit of {limit} nodes exceeded")
            }
            BddError::VarOutOfRange { var, num_vars } => {
                write!(f, "variable {var} out of range for {num_vars} variables")
            }
            BddError::InvalidTable { reason } => {
                write!(f, "invalid bdd node table: {reason}")
            }
        }
    }
}

impl Error for BddError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    /// Variable level (position in the fixed order); terminals use
    /// `u32::MAX`.
    level: u32,
    lo: NodeId,
    hi: NodeId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// A shared reduced ordered BDD manager over a fixed variable order
/// (variable *i* is at level *i*).
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct Bdd {
    num_vars: usize,
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeId>,
    apply_cache: HashMap<(Op, NodeId, NodeId), NodeId>,
    node_limit: usize,
}

impl Bdd {
    /// The constant-false terminal.
    pub const FALSE: NodeId = NodeId(0);
    /// The constant-true terminal.
    pub const TRUE: NodeId = NodeId(1);

    const TERMINAL_LEVEL: u32 = u32::MAX;
    const DEFAULT_NODE_LIMIT: usize = 4_000_000;

    /// Creates a manager for `num_vars` variables with the default node
    /// budget (4 million nodes).
    pub fn new(num_vars: usize) -> Bdd {
        Bdd::with_node_limit(num_vars, Bdd::DEFAULT_NODE_LIMIT)
    }

    /// Creates a manager with an explicit node budget; operations that
    /// would exceed it fail with [`BddError::NodeLimit`].
    pub fn with_node_limit(num_vars: usize, node_limit: usize) -> Bdd {
        let terminals = vec![
            Node {
                level: Bdd::TERMINAL_LEVEL,
                lo: Bdd::FALSE,
                hi: Bdd::FALSE,
            },
            Node {
                level: Bdd::TERMINAL_LEVEL,
                lo: Bdd::TRUE,
                hi: Bdd::TRUE,
            },
        ];
        Bdd {
            num_vars,
            nodes: terminals,
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            node_limit: node_limit.max(2),
        }
    }

    /// Number of variables in the order.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of live nodes (including the two terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The number of decision nodes reachable from `f` (its BDD size).
    pub fn size(&self, f: NodeId) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n == Bdd::FALSE || n == Bdd::TRUE || !seen.insert(n) {
                continue;
            }
            count += 1;
            let node = self.nodes[n.index()];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        count
    }

    /// The single-variable function `xᵢ`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::VarOutOfRange`] for an invalid index.
    pub fn var(&mut self, var: usize) -> Result<NodeId, BddError> {
        if var >= self.num_vars {
            return Err(BddError::VarOutOfRange {
                var,
                num_vars: self.num_vars,
            });
        }
        self.mk(var as u32, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negated single-variable function `¬xᵢ`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::VarOutOfRange`] for an invalid index.
    pub fn nvar(&mut self, var: usize) -> Result<NodeId, BddError> {
        if var >= self.num_vars {
            return Err(BddError::VarOutOfRange {
                var,
                num_vars: self.num_vars,
            });
        }
        self.mk(var as u32, Bdd::TRUE, Bdd::FALSE)
    }

    fn mk(&mut self, level: u32, lo: NodeId, hi: NodeId) -> Result<NodeId, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        let node = Node { level, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return Ok(id);
        }
        if self.nodes.len() >= self.node_limit {
            return Err(BddError::NodeLimit {
                limit: self.node_limit,
            });
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, id);
        Ok(id)
    }

    fn level(&self, f: NodeId) -> u32 {
        self.nodes[f.index()].level
    }

    fn cofactors(&self, f: NodeId, level: u32) -> (NodeId, NodeId) {
        let node = self.nodes[f.index()];
        if node.level == level {
            (node.lo, node.hi)
        } else {
            (f, f)
        }
    }

    fn apply(&mut self, op: Op, a: NodeId, b: NodeId) -> Result<NodeId, BddError> {
        // Terminal cases.
        match op {
            Op::And => {
                if a == Bdd::FALSE || b == Bdd::FALSE {
                    return Ok(Bdd::FALSE);
                }
                if a == Bdd::TRUE {
                    return Ok(b);
                }
                if b == Bdd::TRUE || a == b {
                    return Ok(a);
                }
            }
            Op::Or => {
                if a == Bdd::TRUE || b == Bdd::TRUE {
                    return Ok(Bdd::TRUE);
                }
                if a == Bdd::FALSE {
                    return Ok(b);
                }
                if b == Bdd::FALSE || a == b {
                    return Ok(a);
                }
            }
            Op::Xor => {
                if a == b {
                    return Ok(Bdd::FALSE);
                }
                if a == Bdd::FALSE {
                    return Ok(b);
                }
                if b == Bdd::FALSE {
                    return Ok(a);
                }
            }
        }
        // Commutative: canonicalize operand order for the cache.
        let key = if a <= b { (op, a, b) } else { (op, b, a) };
        if let Some(&hit) = self.apply_cache.get(&key) {
            return Ok(hit);
        }
        let level = self.level(a).min(self.level(b));
        let (a_lo, a_hi) = self.cofactors(a, level);
        let (b_lo, b_hi) = self.cofactors(b, level);
        let lo = self.apply(op, a_lo, b_lo)?;
        let hi = self.apply(op, a_hi, b_hi)?;
        let result = self.mk(level, lo, hi)?;
        self.apply_cache.insert(key, result);
        Ok(result)
    }

    /// Conjunction `a ∧ b`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, BddError> {
        self.apply(Op::And, a, b)
    }

    /// Disjunction `a ∨ b`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, BddError> {
        self.apply(Op::Or, a, b)
    }

    /// Exclusive or `a ⊕ b`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, BddError> {
        self.apply(Op::Xor, a, b)
    }

    /// Negation `¬a`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn not(&mut self, a: NodeId) -> Result<NodeId, BddError> {
        self.apply(Op::Xor, a, Bdd::TRUE)
    }

    /// If-then-else `f ? g : h`, composed from the binary operators.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> Result<NodeId, BddError> {
        let nf = self.not(f)?;
        let fg = self.and(f, g)?;
        let nfh = self.and(nf, h)?;
        self.or(fg, nfh)
    }

    /// The positive/negative cofactor: `f` with variable `var` fixed to
    /// `value`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::VarOutOfRange`] for an invalid variable.
    pub fn restrict(&mut self, f: NodeId, var: usize, value: bool) -> Result<NodeId, BddError> {
        if var >= self.num_vars {
            return Err(BddError::VarOutOfRange {
                var,
                num_vars: self.num_vars,
            });
        }
        let mut memo: HashMap<NodeId, NodeId> = HashMap::new();
        self.restrict_rec(f, var as u32, value, &mut memo)
    }

    fn restrict_rec(
        &mut self,
        f: NodeId,
        level: u32,
        value: bool,
        memo: &mut HashMap<NodeId, NodeId>,
    ) -> Result<NodeId, BddError> {
        let node = self.nodes[f.index()];
        if node.level > level {
            // Terminals have level MAX; any node past the target level
            // cannot mention the variable.
            return Ok(f);
        }
        if let Some(&hit) = memo.get(&f) {
            return Ok(hit);
        }
        let result = if node.level == level {
            if value {
                node.hi
            } else {
                node.lo
            }
        } else {
            let lo = self.restrict_rec(node.lo, level, value, memo)?;
            let hi = self.restrict_rec(node.hi, level, value, memo)?;
            self.mk(node.level, lo, hi)?
        };
        memo.insert(f, result);
        Ok(result)
    }

    /// Evaluates `f` on a full assignment (`assignment[i]` = value of
    /// variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the variable a path
    /// consults.
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut n = f;
        loop {
            if n == Bdd::FALSE {
                return false;
            }
            if n == Bdd::TRUE {
                return true;
            }
            let node = self.nodes[n.index()];
            n = if assignment[node.level as usize] {
                node.hi
            } else {
                node.lo
            };
        }
    }

    /// Number of satisfying assignments of `f` over all
    /// [`num_vars`](Bdd::num_vars) variables.
    pub fn sat_count(&self, f: NodeId) -> f64 {
        let mut memo: HashMap<NodeId, f64> = HashMap::new();
        self.sat_rec(f, &mut memo) * 2f64.powi(self.level_gap(f, 0) as i32)
    }

    fn level_gap(&self, f: NodeId, from: u32) -> u32 {
        let level = if f == Bdd::FALSE || f == Bdd::TRUE {
            self.num_vars as u32
        } else {
            self.level(f)
        };
        level - from
    }

    fn sat_rec(&self, f: NodeId, memo: &mut HashMap<NodeId, f64>) -> f64 {
        if f == Bdd::FALSE {
            return 0.0;
        }
        if f == Bdd::TRUE {
            return 1.0;
        }
        if let Some(&hit) = memo.get(&f) {
            return hit;
        }
        let node = self.nodes[f.index()];
        let lo =
            self.sat_rec(node.lo, memo) * 2f64.powi(self.level_gap(node.lo, node.level + 1) as i32);
        let hi =
            self.sat_rec(node.hi, memo) * 2f64.powi(self.level_gap(node.hi, node.level + 1) as i32);
        let total = lo + hi;
        memo.insert(f, total);
        total
    }

    /// The support of `f`: the variables it actually depends on, ascending.
    pub fn support(&self, f: NodeId) -> Vec<usize> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n == Bdd::FALSE || n == Bdd::TRUE || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n.index()];
            vars.insert(node.level as usize);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        vars.into_iter().collect()
    }

    /// Renders the BDD rooted at `f` as a Graphviz `digraph` (solid edges
    /// = high branch, dashed = low; boxes for terminals).
    pub fn to_dot(&self, f: NodeId) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph bdd {\n");
        let _ = writeln!(out, "  t0 [shape=box, label=\"0\"];");
        let _ = writeln!(out, "  t1 [shape=box, label=\"1\"];");
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let name = |n: NodeId| -> String {
            if n == Bdd::FALSE {
                "t0".to_string()
            } else if n == Bdd::TRUE {
                "t1".to_string()
            } else {
                format!("v{}", n.index())
            }
        };
        while let Some(n) = stack.pop() {
            if n == Bdd::FALSE || n == Bdd::TRUE || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n.index()];
            let _ = writeln!(out, "  {} [label=\"x{}\"];", name(n), node.level);
            let _ = writeln!(out, "  {} -> {} [style=dashed];", name(n), name(node.lo));
            let _ = writeln!(out, "  {} -> {};", name(n), name(node.hi));
            stack.push(node.lo);
            stack.push(node.hi);
        }
        out.push_str("}\n");
        out
    }

    /// The configured node budget.
    pub fn node_limit(&self) -> usize {
        self.node_limit
    }

    /// Serializes the decision-node table (terminals excluded) as
    /// `[level, lo, hi]` triples in dense index order. Together with
    /// [`num_vars`](Bdd::num_vars) and [`node_limit`](Bdd::node_limit) this
    /// is the manager's complete persistent state — the apply cache is a
    /// pure memo and is deliberately dropped.
    pub fn export_table(&self) -> Vec<[u32; 3]> {
        self.nodes
            .iter()
            .skip(2)
            .map(|n| [n.level, n.lo.0, n.hi.0])
            .collect()
    }

    /// Rebuilds a manager from an [`export_table`](Bdd::export_table)
    /// snapshot, re-deriving the hash-consing table. Node ids from the
    /// exporting manager stay valid verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::InvalidTable`] when the table violates the
    /// reduced-ordered invariants: a level outside the variable order, a
    /// branch referencing the node itself or a later node (BDDs are built
    /// children-first, so references always point backwards), a redundant
    /// node (`lo == hi`), or a duplicate of an earlier node.
    pub fn from_table(
        num_vars: usize,
        node_limit: usize,
        table: &[[u32; 3]],
    ) -> Result<Bdd, BddError> {
        let mut bdd = Bdd::with_node_limit(num_vars, node_limit.max(table.len() + 2));
        for (i, &[level, lo, hi]) in table.iter().enumerate() {
            let id = i + 2;
            if level as usize >= num_vars {
                return Err(BddError::InvalidTable {
                    reason: format!("node @{id} has level {level} outside {num_vars} variables"),
                });
            }
            if lo as usize >= id || hi as usize >= id {
                return Err(BddError::InvalidTable {
                    reason: format!("node @{id} references a node at or past itself"),
                });
            }
            if lo == hi {
                return Err(BddError::InvalidTable {
                    reason: format!("node @{id} is redundant (lo == hi)"),
                });
            }
            // The order must be strictly descending towards the terminals:
            // a decision-node child sits at a deeper level than its parent.
            for child in [lo, hi] {
                if child >= 2 && table[child as usize - 2][0] <= level {
                    return Err(BddError::InvalidTable {
                        reason: format!("node @{id} branches to a node at or above its level"),
                    });
                }
            }
            let node = Node {
                level,
                lo: NodeId(lo),
                hi: NodeId(hi),
            };
            if bdd.unique.contains_key(&node) {
                return Err(BddError::InvalidTable {
                    reason: format!("node @{id} duplicates an earlier node"),
                });
            }
            bdd.nodes.push(node);
            bdd.unique.insert(node, NodeId(id as u32));
        }
        Ok(bdd)
    }

    pub(crate) fn node(&self, f: NodeId) -> (u32, NodeId, NodeId) {
        let n = self.nodes[f.index()];
        (n.level, n.lo, n.hi)
    }

    pub(crate) fn is_terminal(&self, f: NodeId) -> bool {
        f == Bdd::FALSE || f == Bdd::TRUE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0).unwrap();
        assert_ne!(a, Bdd::FALSE);
        assert_ne!(a, Bdd::TRUE);
        // Hash-consing: same variable twice is the same node.
        assert_eq!(bdd.var(0).unwrap(), a);
        assert!(bdd.var(2).is_err());
    }

    #[test]
    fn basic_laws() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0).unwrap();
        let b = bdd.var(1).unwrap();
        // Idempotence, identity, annihilation.
        assert_eq!(bdd.and(a, a).unwrap(), a);
        assert_eq!(bdd.or(a, Bdd::FALSE).unwrap(), a);
        assert_eq!(bdd.and(a, Bdd::FALSE).unwrap(), Bdd::FALSE);
        assert_eq!(bdd.xor(a, a).unwrap(), Bdd::FALSE);
        // Commutativity (canonicity makes it literal equality).
        assert_eq!(bdd.and(a, b).unwrap(), bdd.and(b, a).unwrap());
        // De Morgan.
        let nab = {
            let ab = bdd.and(a, b).unwrap();
            bdd.not(ab).unwrap()
        };
        let na = bdd.not(a).unwrap();
        let nb = bdd.not(b).unwrap();
        assert_eq!(bdd.or(na, nb).unwrap(), nab);
        // Double negation.
        assert_eq!(bdd.not(na).unwrap(), a);
    }

    #[test]
    fn eval_matches_truth_table() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0).unwrap();
        let b = bdd.var(1).unwrap();
        let c = bdd.var(2).unwrap();
        let ab = bdd.and(a, b).unwrap();
        let f = bdd.xor(ab, c).unwrap(); // (a&b)^c
        for case in 0..8 {
            let assignment = [case & 1 == 1, case & 2 == 2, case & 4 == 4];
            let want = (assignment[0] && assignment[1]) ^ assignment[2];
            assert_eq!(bdd.eval(f, &assignment), want, "case {case}");
        }
    }

    #[test]
    fn ite_is_mux() {
        let mut bdd = Bdd::new(3);
        let s = bdd.var(0).unwrap();
        let g = bdd.var(1).unwrap();
        let h = bdd.var(2).unwrap();
        let f = bdd.ite(s, g, h).unwrap();
        for case in 0..8 {
            let assignment = [case & 1 == 1, case & 2 == 2, case & 4 == 4];
            let want = if assignment[0] {
                assignment[1]
            } else {
                assignment[2]
            };
            assert_eq!(bdd.eval(f, &assignment), want);
        }
    }

    #[test]
    fn restrict_cofactors() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0).unwrap();
        let b = bdd.var(1).unwrap();
        let f = bdd.xor(a, b).unwrap();
        let f_a0 = bdd.restrict(f, 0, false).unwrap();
        assert_eq!(f_a0, b);
        let f_a1 = bdd.restrict(f, 0, true).unwrap();
        let nb = bdd.not(b).unwrap();
        assert_eq!(f_a1, nb);
        // Restricting an absent variable is identity.
        assert_eq!(bdd.restrict(b, 0, true).unwrap(), b);
    }

    #[test]
    fn sat_count_parity() {
        // Parity of n variables has exactly 2^(n-1) satisfying assignments.
        for n in 1..6 {
            let mut bdd = Bdd::new(n);
            let mut f = Bdd::FALSE;
            for i in 0..n {
                let v = bdd.var(i).unwrap();
                f = bdd.xor(f, v).unwrap();
            }
            assert_eq!(bdd.sat_count(f), 2f64.powi(n as i32 - 1), "n={n}");
        }
    }

    #[test]
    fn sat_count_with_skipped_levels() {
        let mut bdd = Bdd::new(4);
        // f = x3 alone: half of the 16 assignments satisfy it.
        let f = bdd.var(3).unwrap();
        assert_eq!(bdd.sat_count(f), 8.0);
        assert_eq!(bdd.sat_count(Bdd::TRUE), 16.0);
        assert_eq!(bdd.sat_count(Bdd::FALSE), 0.0);
    }

    #[test]
    fn node_limit_enforced() {
        // Parity needs ~2 nodes per variable; a tiny limit trips quickly.
        let mut bdd = Bdd::with_node_limit(64, 16);
        let mut f = Bdd::FALSE;
        let result = (0..64).try_fold(f, |acc, i| {
            let v = bdd.var(i)?;
            f = bdd.xor(acc, v)?;
            Ok(f)
        });
        assert!(matches!(result, Err(BddError::NodeLimit { limit: 16 })));
    }

    #[test]
    fn reduction_no_redundant_nodes() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0).unwrap();
        // a OR a, a AND TRUE etc. must not allocate anything new.
        let before = bdd.num_nodes();
        let _ = bdd.or(a, a).unwrap();
        let _ = bdd.and(a, Bdd::TRUE).unwrap();
        assert_eq!(bdd.num_nodes(), before);
    }

    #[test]
    fn support_tracks_dependencies() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0).unwrap();
        let c = bdd.var(2).unwrap();
        let f = bdd.and(a, c).unwrap();
        assert_eq!(bdd.support(f), vec![0, 2]);
        // XOR then cancel: x1 drops out of the support.
        let b = bdd.var(1).unwrap();
        let g = bdd.xor(f, b).unwrap();
        let h = bdd.xor(g, b).unwrap();
        assert_eq!(bdd.support(h), vec![0, 2]);
        assert!(bdd.support(Bdd::TRUE).is_empty());
    }

    #[test]
    fn dot_is_well_formed() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0).unwrap();
        let b = bdd.var(1).unwrap();
        let f = bdd.or(a, b).unwrap();
        let dot = bdd.to_dot(f);
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("style=dashed").count(), bdd.size(f));
        assert!(dot.contains("label=\"x0\""));
        assert!(dot.contains("label=\"x1\""));
    }

    #[test]
    fn export_import_round_trips_node_ids() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0).unwrap();
        let b = bdd.var(1).unwrap();
        let c = bdd.var(2).unwrap();
        let ab = bdd.and(a, b).unwrap();
        let f = bdd.xor(ab, c).unwrap();
        let table = bdd.export_table();
        let mut restored = Bdd::from_table(bdd.num_vars(), bdd.node_limit(), &table).unwrap();
        assert_eq!(restored.num_nodes(), bdd.num_nodes());
        // Ids survive verbatim: the same handle evaluates identically.
        for case in 0..16 {
            let assignment = [case & 1 == 1, case & 2 == 2, case & 4 == 4, case & 8 == 8];
            assert_eq!(restored.eval(f, &assignment), bdd.eval(f, &assignment));
        }
        assert_eq!(restored.sat_count(f), bdd.sat_count(f));
        // The unique table was rebuilt: re-deriving the same function
        // allocates nothing and lands on the same id.
        let before = restored.num_nodes();
        let a2 = restored.var(0).unwrap();
        let b2 = restored.var(1).unwrap();
        let c2 = restored.var(2).unwrap();
        let ab2 = restored.and(a2, b2).unwrap();
        assert_eq!(restored.xor(ab2, c2).unwrap(), f);
        assert_eq!(restored.num_nodes(), before);
    }

    #[test]
    fn from_table_rejects_malformed_tables() {
        // Forward reference.
        assert!(matches!(
            Bdd::from_table(2, 16, &[[0, 5, 1]]),
            Err(BddError::InvalidTable { .. })
        ));
        // Level outside the order.
        assert!(matches!(
            Bdd::from_table(2, 16, &[[7, 0, 1]]),
            Err(BddError::InvalidTable { .. })
        ));
        // Redundant node.
        assert!(matches!(
            Bdd::from_table(2, 16, &[[0, 1, 1]]),
            Err(BddError::InvalidTable { .. })
        ));
        // Duplicate node.
        assert!(matches!(
            Bdd::from_table(2, 16, &[[0, 0, 1], [0, 0, 1]]),
            Err(BddError::InvalidTable { .. })
        ));
        // Child at the same level as its parent.
        assert!(matches!(
            Bdd::from_table(2, 16, &[[1, 0, 1], [1, 2, 1]]),
            Err(BddError::InvalidTable { .. })
        ));
    }

    #[test]
    fn size_counts_reachable_decision_nodes() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0).unwrap();
        let b = bdd.var(1).unwrap();
        let ab = bdd.and(a, b).unwrap();
        assert_eq!(bdd.size(ab), 2);
        assert_eq!(bdd.size(Bdd::TRUE), 0);
    }
}
