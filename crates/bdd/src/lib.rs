//! Reduced ordered binary decision diagrams (ROBDDs) with exact signal and
//! switching probabilities.
//!
//! Bryant-style shared BDDs serve two roles in the `swact` workspace:
//!
//! * an **exact reference** for signal probability and switching activity on
//!   small and medium circuits (checking both the Bayesian-network estimator
//!   and the logic simulator);
//! * the substrate of the **transition-density baseline** (Najm 1993), whose
//!   Boolean differences are one `xor` + one `restrict` away.
//!
//! The manager ([`Bdd`]) keeps a unique table (hash-consing) and an apply
//! cache; everything is iterative-friendly recursion with an explicit node
//! budget so runaway circuits fail with [`BddError::NodeLimit`] instead of
//! exhausting memory.
//!
//! # Example
//!
//! ```
//! use swact_bdd::Bdd;
//!
//! # fn main() -> Result<(), swact_bdd::BddError> {
//! let mut bdd = Bdd::new(2);
//! let a = bdd.var(0)?;
//! let b = bdd.var(1)?;
//! let f = bdd.and(a, b)?;
//! // P(a·b) with P(a)=0.5, P(b)=0.25:
//! let p = bdd.probability(f, &[0.5, 0.25]);
//! assert!((p - 0.125).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod circuit;
mod manager;
mod prob;

pub use circuit::{
    apply_gate_nodes, build_circuit_bdds, build_switching_bdds, CircuitBdds, SwitchingBdds,
};
pub use manager::{Bdd, BddError, NodeId};
pub use prob::PairDistribution;
