//! Building BDDs from gate-level circuits.

use swact_circuit::{Circuit, Driver, GateKind, LineId};

use crate::{Bdd, BddError, NodeId};

/// BDDs for every line of a circuit over its primary inputs (variable *i*
/// is the *i*-th primary input in declaration order).
#[derive(Debug, Clone)]
pub struct CircuitBdds {
    /// The shared manager.
    pub bdd: Bdd,
    /// Per line (indexed by `LineId::index`): that line's function.
    pub lines: Vec<NodeId>,
}

impl CircuitBdds {
    /// The function of a specific line.
    pub fn line(&self, line: LineId) -> NodeId {
        self.lines[line.index()]
    }
}

/// Builds a BDD for every line of `circuit` over the primary inputs.
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] if the functions exceed `node_limit`
/// under the input-declaration-order variable ordering.
///
/// # Example
///
/// ```
/// use swact_bdd::build_circuit_bdds;
/// use swact_circuit::catalog;
///
/// # fn main() -> Result<(), swact_bdd::BddError> {
/// let c17 = catalog::c17();
/// let bdds = build_circuit_bdds(&c17, 10_000)?;
/// let out = bdds.line(c17.outputs()[0]);
/// // 22 = NAND(10, 16) is satisfiable but not a tautology.
/// assert!(bdds.bdd.sat_count(out) > 0.0);
/// assert!(bdds.bdd.sat_count(out) < 32.0);
/// # Ok(())
/// # }
/// ```
pub fn build_circuit_bdds(circuit: &Circuit, node_limit: usize) -> Result<CircuitBdds, BddError> {
    let mut bdd = Bdd::with_node_limit(circuit.num_inputs(), node_limit);
    let vars: Vec<NodeId> = (0..circuit.num_inputs())
        .map(|i| bdd.var(i))
        .collect::<Result<_, _>>()?;
    let mut lines = vec![Bdd::FALSE; circuit.num_lines()];
    for (i, &pi) in circuit.inputs().iter().enumerate() {
        lines[pi.index()] = vars[i];
    }
    for line in circuit.topo_order() {
        if let Driver::Gate(g) = circuit.driver(line) {
            lines[line.index()] = apply_gate(
                &mut bdd,
                g.kind,
                |k| lines[g.inputs[k].index()],
                g.inputs.len(),
            )?;
        }
    }
    Ok(CircuitBdds { bdd, lines })
}

/// BDDs for the *switching functions* of every line: over `2n` variables —
/// variable `2i` is primary input *i* at clock *t−1* ("prev") and `2i + 1`
/// the same input at clock *t* ("next") — the function
/// `f(prev inputs) ⊕ f(next inputs)` is one exactly when the line toggles.
///
/// This interleaved ordering keeps each input's (prev, next) pair adjacent,
/// which [`Bdd::pair_probability`] exploits to handle temporally correlated
/// input streams exactly.
#[derive(Debug, Clone)]
pub struct SwitchingBdds {
    /// The shared manager (over `2 × inputs` variables).
    pub bdd: Bdd,
    /// Per line: function at clock *t−1* (over even variables).
    pub prev: Vec<NodeId>,
    /// Per line: function at clock *t* (over odd variables).
    pub next: Vec<NodeId>,
    /// Per line: the toggle indicator `prev ⊕ next`.
    pub switch: Vec<NodeId>,
}

impl SwitchingBdds {
    /// The toggle indicator of a specific line.
    pub fn switch_fn(&self, line: LineId) -> NodeId {
        self.switch[line.index()]
    }
}

/// Builds switching BDDs (see [`SwitchingBdds`]) for all lines.
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] if any function exceeds `node_limit`.
pub fn build_switching_bdds(
    circuit: &Circuit,
    node_limit: usize,
) -> Result<SwitchingBdds, BddError> {
    let n = circuit.num_inputs();
    let mut bdd = Bdd::with_node_limit(2 * n, node_limit);
    let mut prev = vec![Bdd::FALSE; circuit.num_lines()];
    let mut next = vec![Bdd::FALSE; circuit.num_lines()];
    for (i, &pi) in circuit.inputs().iter().enumerate() {
        prev[pi.index()] = bdd.var(2 * i)?;
        next[pi.index()] = bdd.var(2 * i + 1)?;
    }
    for line in circuit.topo_order() {
        if let Driver::Gate(g) = circuit.driver(line) {
            prev[line.index()] = apply_gate(
                &mut bdd,
                g.kind,
                |k| prev[g.inputs[k].index()],
                g.inputs.len(),
            )?;
            next[line.index()] = apply_gate(
                &mut bdd,
                g.kind,
                |k| next[g.inputs[k].index()],
                g.inputs.len(),
            )?;
        }
    }
    let mut switch = vec![Bdd::FALSE; circuit.num_lines()];
    for line in circuit.line_ids() {
        switch[line.index()] = bdd.xor(prev[line.index()], next[line.index()])?;
    }
    Ok(SwitchingBdds {
        bdd,
        prev,
        next,
        switch,
    })
}

/// Applies one logic gate over already-built input functions: the BDD of
/// `kind(inputs[0], …, inputs[n-1])`. This is the single-gate building
/// block behind [`build_circuit_bdds`] / [`build_switching_bdds`], exposed
/// for callers that assemble BDDs over their own variable layout (e.g. the
/// per-segment switching backend in `swact`).
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] if the result would exceed the
/// manager's node budget.
pub fn apply_gate_nodes(
    bdd: &mut Bdd,
    kind: GateKind,
    inputs: &[NodeId],
) -> Result<NodeId, BddError> {
    apply_gate(bdd, kind, |k| inputs[k], inputs.len())
}

fn apply_gate(
    bdd: &mut Bdd,
    kind: GateKind,
    input: impl Fn(usize) -> NodeId,
    arity: usize,
) -> Result<NodeId, BddError> {
    let fold = |bdd: &mut Bdd,
                init: NodeId,
                op: fn(&mut Bdd, NodeId, NodeId) -> Result<NodeId, BddError>|
     -> Result<NodeId, BddError> {
        let mut acc = init;
        for k in 0..arity {
            acc = op(bdd, acc, input(k))?;
        }
        Ok(acc)
    };
    match kind {
        GateKind::And => fold(bdd, Bdd::TRUE, Bdd::and),
        GateKind::Nand => {
            let a = fold(bdd, Bdd::TRUE, Bdd::and)?;
            bdd.not(a)
        }
        GateKind::Or => fold(bdd, Bdd::FALSE, Bdd::or),
        GateKind::Nor => {
            let a = fold(bdd, Bdd::FALSE, Bdd::or)?;
            bdd.not(a)
        }
        GateKind::Xor => fold(bdd, Bdd::FALSE, Bdd::xor),
        GateKind::Xnor => {
            let a = fold(bdd, Bdd::FALSE, Bdd::xor)?;
            bdd.not(a)
        }
        GateKind::Not => {
            let a = input(0);
            bdd.not(a)
        }
        GateKind::Buf => Ok(input(0)),
        GateKind::Const0 => Ok(Bdd::FALSE),
        GateKind::Const1 => Ok(Bdd::TRUE),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_circuit::{catalog, CircuitBuilder};

    fn eval_circuit(circuit: &Circuit, assignment: &[bool]) -> Vec<bool> {
        let mut values = vec![false; circuit.num_lines()];
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            values[pi.index()] = assignment[i];
        }
        for line in circuit.topo_order() {
            if let Some(g) = circuit.gate(line) {
                values[line.index()] = g.kind.eval(g.inputs.iter().map(|&l| values[l.index()]));
            }
        }
        values
    }

    #[test]
    fn c17_bdds_match_exhaustive_simulation() {
        let c17 = catalog::c17();
        let bdds = build_circuit_bdds(&c17, 100_000).unwrap();
        for case in 0..32usize {
            let assignment: Vec<bool> = (0..5).map(|i| case >> i & 1 == 1).collect();
            let values = eval_circuit(&c17, &assignment);
            for line in c17.line_ids() {
                assert_eq!(
                    bdds.bdd.eval(bdds.line(line), &assignment),
                    values[line.index()],
                    "line {} case {case}",
                    c17.line_name(line)
                );
            }
        }
    }

    #[test]
    fn all_gate_kinds_build_correctly() {
        let mut b = CircuitBuilder::new("allkinds");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.input("c").unwrap();
        b.gate("and3", GateKind::And, &["a", "b", "c"]).unwrap();
        b.gate("nor3", GateKind::Nor, &["a", "b", "c"]).unwrap();
        b.gate("xnor3", GateKind::Xnor, &["a", "b", "c"]).unwrap();
        b.gate("inv", GateKind::Not, &["a"]).unwrap();
        b.gate("pass", GateKind::Buf, &["b"]).unwrap();
        b.gate("k1", GateKind::Const1, &[]).unwrap();
        b.gate(
            "top",
            GateKind::Or,
            &["and3", "nor3", "xnor3", "inv", "pass", "k1"],
        )
        .unwrap();
        b.output("top").unwrap();
        let circuit = b.finish().unwrap();
        let bdds = build_circuit_bdds(&circuit, 100_000).unwrap();
        for case in 0..8usize {
            let assignment: Vec<bool> = (0..3).map(|i| case >> i & 1 == 1).collect();
            let values = eval_circuit(&circuit, &assignment);
            for line in circuit.line_ids() {
                assert_eq!(
                    bdds.bdd.eval(bdds.line(line), &assignment),
                    values[line.index()]
                );
            }
        }
    }

    #[test]
    fn switching_bdds_flag_toggles() {
        let c17 = catalog::c17();
        let sw = build_switching_bdds(&c17, 100_000).unwrap();
        // For every (prev, next) input pair, the switch function of each
        // line is 1 exactly when the simulated values differ.
        for prev_case in 0..32usize {
            for next_case in [0usize, 7, 21, 31] {
                let prev_assignment: Vec<bool> = (0..5).map(|i| prev_case >> i & 1 == 1).collect();
                let next_assignment: Vec<bool> = (0..5).map(|i| next_case >> i & 1 == 1).collect();
                let prev_values = eval_circuit(&c17, &prev_assignment);
                let next_values = eval_circuit(&c17, &next_assignment);
                // Interleave into the 2n-variable assignment.
                let mut interleaved = vec![false; 10];
                for i in 0..5 {
                    interleaved[2 * i] = prev_assignment[i];
                    interleaved[2 * i + 1] = next_assignment[i];
                }
                for line in c17.line_ids() {
                    let toggled = prev_values[line.index()] != next_values[line.index()];
                    assert_eq!(
                        sw.bdd.eval(sw.switch_fn(line), &interleaved),
                        toggled,
                        "line {} prev={prev_case} next={next_case}",
                        c17.line_name(line)
                    );
                }
            }
        }
    }

    #[test]
    fn node_limit_propagates() {
        let c = catalog::benchmark("c432").unwrap();
        let result = build_circuit_bdds(&c, 64);
        assert!(matches!(result, Err(BddError::NodeLimit { .. })));
    }
}
