//! Exact probability computations on BDDs.
//!
//! [`Bdd::probability`] assumes all variables independent — the classic
//! signal-probability computation (Parker–McCluskey, exact on a BDD).
//! [`Bdd::pair_probability`] generalizes to the switching setting where
//! consecutive variables `2i` / `2i+1` are one input's value at clocks
//! *t−1* and *t*, jointly distributed per a [`PairDistribution`] — this
//! makes the reference exact even for temporally correlated input streams.

use std::collections::HashMap;

use crate::{Bdd, NodeId};

/// Joint distribution of one signal's `(prev, next)` value pair,
/// states ordered `00, 01, 10, 11`.
///
/// # Example
///
/// ```
/// use swact_bdd::PairDistribution;
///
/// // Temporally independent with P(1) = 0.5.
/// let d = PairDistribution::independent(0.5);
/// assert!((d.p01() + d.p10() - 0.5).abs() < 1e-12);
///
/// // Sticky input: switches only 10% of the time.
/// let sticky = PairDistribution::markov(0.5, 0.1);
/// assert!(sticky.switch_probability() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairDistribution {
    joint: [f64; 4],
}

impl PairDistribution {
    /// From an explicit joint `[p00, p01, p10, p11]`.
    ///
    /// # Panics
    ///
    /// Panics if entries are negative or do not sum to one (±1e-6).
    pub fn new(joint: [f64; 4]) -> PairDistribution {
        assert!(joint.iter().all(|&p| p >= 0.0), "negative probability");
        let sum: f64 = joint.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "joint sums to {sum}, expected 1");
        PairDistribution { joint }
    }

    /// Temporally independent signal with `P(1) = p1` at both clocks.
    pub fn independent(p1: f64) -> PairDistribution {
        let p0 = 1.0 - p1;
        PairDistribution::new([p0 * p0, p0 * p1, p1 * p0, p1 * p1])
    }

    /// Stationary lag-1 Markov signal: stationary `P(1) = p1`, and the
    /// *next* value differs from *prev* with probability `switch_prob`
    /// scaled to preserve stationarity. Concretely
    /// `P(next=1 | prev=0) = switch_prob · p1 / p̄` and
    /// `P(next=0 | prev=1) = switch_prob · (1−p1) / p̄` with
    /// `p̄ = 2·p1·(1−p1)` the independent switching probability — so
    /// `switch_prob` *is* the signal's switching activity.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not yield valid conditionals (e.g.
    /// `switch_prob` too large for the given `p1`).
    pub fn markov(p1: f64, switch_prob: f64) -> PairDistribution {
        let p0 = 1.0 - p1;
        if switch_prob == 0.0 {
            return PairDistribution::new([p0, 0.0, 0.0, p1]);
        }
        let base = 2.0 * p1 * p0;
        assert!(base > 0.0, "degenerate p1 with nonzero switching");
        let q01 = switch_prob * p1 / base * p0; // P(prev=0, next=1)
        let q10 = switch_prob * p0 / base * p1; // P(prev=1, next=0)
        let p00 = p0 - q01;
        let p11 = p1 - q10;
        assert!(
            p00 >= -1e-12 && p11 >= -1e-12,
            "switch probability {switch_prob} unreachable at p1={p1}"
        );
        PairDistribution::new([p00.max(0.0), q01, q10, p11.max(0.0)])
    }

    /// `P(prev=0, next=0)`.
    pub fn p00(&self) -> f64 {
        self.joint[0]
    }
    /// `P(prev=0, next=1)`.
    pub fn p01(&self) -> f64 {
        self.joint[1]
    }
    /// `P(prev=1, next=0)`.
    pub fn p10(&self) -> f64 {
        self.joint[2]
    }
    /// `P(prev=1, next=1)`.
    pub fn p11(&self) -> f64 {
        self.joint[3]
    }

    /// The joint as a `[p00, p01, p10, p11]` array.
    pub fn as_array(&self) -> [f64; 4] {
        self.joint
    }

    /// Marginal `P(prev = 1)`.
    pub fn prev_one(&self) -> f64 {
        self.joint[2] + self.joint[3]
    }

    /// Marginal `P(next = 1)`.
    pub fn next_one(&self) -> f64 {
        self.joint[1] + self.joint[3]
    }

    /// `P(prev ≠ next)` — the signal's own switching activity.
    pub fn switch_probability(&self) -> f64 {
        self.joint[1] + self.joint[2]
    }

    /// `P(next = 1 | prev)`, with the convention 0 when `P(prev)` is 0.
    pub fn next_one_given_prev(&self, prev: bool) -> f64 {
        let (stay_zero, go_one) = if prev {
            (self.joint[2], self.joint[3])
        } else {
            (self.joint[0], self.joint[1])
        };
        let mass = stay_zero + go_one;
        if mass == 0.0 {
            0.0
        } else {
            go_one / mass
        }
    }
}

impl Bdd {
    /// `P(f = 1)` when variable `i` is 1 with probability `p1[i]`, all
    /// variables independent.
    ///
    /// # Panics
    ///
    /// Panics if `p1.len() != num_vars()`.
    pub fn probability(&self, f: NodeId, p1: &[f64]) -> f64 {
        assert_eq!(p1.len(), self.num_vars(), "one probability per variable");
        let mut memo: HashMap<NodeId, f64> = HashMap::new();
        self.prob_rec(f, p1, &mut memo)
    }

    fn prob_rec(&self, f: NodeId, p1: &[f64], memo: &mut HashMap<NodeId, f64>) -> f64 {
        if f == Bdd::FALSE {
            return 0.0;
        }
        if f == Bdd::TRUE {
            return 1.0;
        }
        if let Some(&hit) = memo.get(&f) {
            return hit;
        }
        let (level, lo, hi) = self.node(f);
        let p = p1[level as usize];
        let result = (1.0 - p) * self.prob_rec(lo, p1, memo) + p * self.prob_rec(hi, p1, memo);
        memo.insert(f, result);
        result
    }

    /// `P(f = 1)` for a function over `2n` *interleaved* variables where
    /// variables `2i` and `2i + 1` are input *i*'s (prev, next) pair,
    /// jointly distributed per `pairs[i]`, pairs independent of each other.
    ///
    /// This is exact even for temporally correlated streams, unlike
    /// [`probability`](Bdd::probability). Complexity is O(size(f)) with a
    /// memo keyed on (node, level, pending prev value).
    ///
    /// # Panics
    ///
    /// Panics if `2 * pairs.len() != num_vars()`.
    pub fn pair_probability(&self, f: NodeId, pairs: &[PairDistribution]) -> f64 {
        assert_eq!(
            2 * pairs.len(),
            self.num_vars(),
            "need one pair distribution per interleaved variable pair"
        );
        let mut memo: HashMap<(NodeId, u32, u8), f64> = HashMap::new();
        self.pair_rec(f, 0, None, pairs, &mut memo)
    }

    fn pair_rec(
        &self,
        f: NodeId,
        level: u32,
        carry: Option<bool>,
        pairs: &[PairDistribution],
        memo: &mut HashMap<(NodeId, u32, u8), f64>,
    ) -> f64 {
        if level as usize == self.num_vars() {
            debug_assert!(self.is_terminal(f), "path must end at a terminal");
            return if f == Bdd::TRUE { 1.0 } else { 0.0 };
        }
        if f == Bdd::FALSE {
            return 0.0;
        }
        let carry_key = match carry {
            None => 2u8,
            Some(false) => 0,
            Some(true) => 1,
        };
        if let Some(&hit) = memo.get(&(f, level, carry_key)) {
            return hit;
        }
        let pair = &pairs[(level / 2) as usize];
        let is_prev = level.is_multiple_of(2);
        // Children under each branch value; skipped levels keep the node.
        let (lo, hi) = if !self.is_terminal(f) {
            let (node_level, lo, hi) = self.node(f);
            if node_level == level {
                (lo, hi)
            } else {
                (f, f)
            }
        } else {
            (f, f)
        };
        let result = if is_prev {
            let p_one = pair.prev_one();
            (1.0 - p_one) * self.pair_rec(lo, level + 1, Some(false), pairs, memo)
                + p_one * self.pair_rec(hi, level + 1, Some(true), pairs, memo)
        } else {
            let prev = carry.expect("odd levels always have a pending prev value");
            let p_one = pair.next_one_given_prev(prev);
            (1.0 - p_one) * self.pair_rec(lo, level + 1, None, pairs, memo)
                + p_one * self.pair_rec(hi, level + 1, None, pairs, memo)
        };
        memo.insert((f, level, carry_key), result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_switching_bdds;
    use swact_circuit::catalog;

    #[test]
    fn probability_of_and_or_xor() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0).unwrap();
        let b = bdd.var(1).unwrap();
        let p = [0.3, 0.8];
        let and = bdd.and(a, b).unwrap();
        assert!((bdd.probability(and, &p) - 0.24).abs() < 1e-12);
        let or = bdd.or(a, b).unwrap();
        assert!((bdd.probability(or, &p) - (0.3 + 0.8 - 0.24)).abs() < 1e-12);
        let xor = bdd.xor(a, b).unwrap();
        assert!((bdd.probability(xor, &p) - (0.3 * 0.2 + 0.7 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn probability_of_terminals() {
        let bdd = Bdd::new(1);
        assert_eq!(bdd.probability(Bdd::TRUE, &[0.5]), 1.0);
        assert_eq!(bdd.probability(Bdd::FALSE, &[0.5]), 0.0);
    }

    #[test]
    fn probability_half_matches_sat_count() {
        // At p=0.5 everywhere, probability = sat_count / 2^n.
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0).unwrap();
        let b = bdd.var(1).unwrap();
        let c = bdd.var(2).unwrap();
        let ab = bdd.and(a, b).unwrap();
        let f = bdd.or(ab, c).unwrap();
        let p = bdd.probability(f, &[0.5; 4]);
        assert!((p - bdd.sat_count(f) / 16.0).abs() < 1e-12);
    }

    #[test]
    fn pair_distribution_constructors() {
        let ind = PairDistribution::independent(0.3);
        assert!((ind.prev_one() - 0.3).abs() < 1e-12);
        assert!((ind.next_one() - 0.3).abs() < 1e-12);
        assert!((ind.switch_probability() - 2.0 * 0.3 * 0.7).abs() < 1e-12);

        let frozen = PairDistribution::markov(0.4, 0.0);
        assert_eq!(frozen.switch_probability(), 0.0);
        assert!((frozen.prev_one() - 0.4).abs() < 1e-12);

        let m = PairDistribution::markov(0.5, 0.2);
        assert!((m.switch_probability() - 0.2).abs() < 1e-12);
        assert!((m.prev_one() - 0.5).abs() < 1e-12);
        assert!((m.next_one() - 0.5).abs() < 1e-12);

        // Markov with the independent switching rate reduces to independent.
        let m = PairDistribution::markov(0.3, 2.0 * 0.3 * 0.7);
        let ind = PairDistribution::independent(0.3);
        for (a, b) in m.as_array().iter().zip(ind.as_array()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn invalid_joint_panics() {
        let _ = PairDistribution::new([0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn pair_probability_matches_independent_probability() {
        // With independent pairs, pair_probability == probability with the
        // marginals spelled out.
        let c17 = catalog::c17();
        let sw = build_switching_bdds(&c17, 100_000).unwrap();
        let pairs: Vec<PairDistribution> = (0..5)
            .map(|i| PairDistribution::independent(0.2 + 0.1 * i as f64))
            .collect();
        let mut flat = Vec::new();
        for pair in &pairs {
            flat.push(pair.prev_one());
            flat.push(pair.next_one());
        }
        for line in c17.line_ids() {
            let f = sw.switch_fn(line);
            let a = sw.bdd.pair_probability(f, &pairs);
            let b = sw.bdd.probability(f, &flat);
            assert!((a - b).abs() < 1e-12, "line {}", c17.line_name(line));
        }
    }

    #[test]
    fn pair_probability_exhaustive_check_with_correlation() {
        // Brute-force: enumerate all (prev, next) assignments weighted by
        // the pair joints and compare.
        let c17 = catalog::c17();
        let sw = build_switching_bdds(&c17, 100_000).unwrap();
        let pairs: Vec<PairDistribution> = (0..5)
            .map(|i| PairDistribution::markov(0.5, 0.1 + 0.15 * i as f64))
            .collect();
        for line in [c17.outputs()[0], c17.outputs()[1]] {
            let f = sw.switch_fn(line);
            let mut want = 0.0;
            for assignment_bits in 0..(1u32 << 10) {
                let assignment: Vec<bool> =
                    (0..10).map(|b| assignment_bits >> b & 1 == 1).collect();
                if !sw.bdd.eval(f, &assignment) {
                    continue;
                }
                let mut weight = 1.0;
                for i in 0..5 {
                    let state = (assignment[2 * i] as usize) * 2 + assignment[2 * i + 1] as usize;
                    weight *= pairs[i].as_array()[state];
                }
                want += weight;
            }
            let got = sw.bdd.pair_probability(f, &pairs);
            assert!((got - want).abs() < 1e-10, "want {want}, got {got}");
        }
    }

    #[test]
    fn frozen_inputs_never_switch() {
        let c17 = catalog::c17();
        let sw = build_switching_bdds(&c17, 100_000).unwrap();
        let pairs = vec![PairDistribution::markov(0.5, 0.0); 5];
        for line in c17.line_ids() {
            let p = sw.bdd.pair_probability(sw.switch_fn(line), &pairs);
            assert!(p.abs() < 1e-12, "line {} switched", c17.line_name(line));
        }
    }

    #[test]
    fn next_one_given_prev_degenerate() {
        // P(prev=1) = 0: conditioning on prev=1 returns 0 by convention.
        let d = PairDistribution::new([0.5, 0.5, 0.0, 0.0]);
        assert_eq!(d.next_one_given_prev(true), 0.0);
        assert_eq!(d.next_one_given_prev(false), 0.5);
    }
}
