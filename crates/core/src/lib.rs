//! Dependency-preserving switching-activity estimation with Bayesian
//! networks — a faithful reimplementation of Bhanja & Ranganathan,
//! *"Dependency Preserving Probabilistic Modeling of Switching Activity
//! using Bayesian Networks"*, DAC 2001.
//!
//! # The method
//!
//! Every signal line of a combinational circuit becomes a random variable
//! with four states — the [`Transition`]s `x00, x01, x10, x11` of its value
//! across one clock boundary, so *temporal* correlation lives in the state
//! space itself. The **LIDAG** (Logic-Induced Directed Acyclic Graph) wires
//! each gate output's transition variable to its input lines' variables;
//! the paper's Theorem 3 shows the LIDAG is a minimal I-map of the
//! switching dependency model — i.e. an exact Bayesian network that
//! preserves *all* spatial (reconvergent-fanout) and spatio-temporal
//! dependence. Gate CPTs are deterministic, read off the gate's truth table
//! at clocks *t−1* and *t*.
//!
//! Inference is exact junction-tree propagation (`swact-bayesnet`); large
//! circuits are split into **multiple BNs** processed in topological order
//! with boundary-line marginals forwarded between segments, reproducing the
//! paper's scalability strategy — and its only error source.
//!
//! # Quick start
//!
//! ```
//! use swact::{estimate, InputSpec, Options};
//! use swact_circuit::catalog;
//!
//! # fn main() -> Result<(), swact::EstimateError> {
//! let c17 = catalog::c17();
//! let spec = InputSpec::uniform(c17.num_inputs());
//! let estimate = estimate(&c17, &spec, &Options::default())?;
//!
//! for line in c17.line_ids() {
//!     let sw = estimate.switching(line);
//!     assert!((0.0..=1.0).contains(&sw));
//! }
//! // c17 fits in a single Bayesian network ⇒ the estimate is exact.
//! assert_eq!(estimate.num_segments(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! Re-estimating under different input statistics reuses the compiled
//! junction trees — the paper's precompile-once/propagate-often workflow —
//! via [`CompiledEstimator`].

pub mod artifact;
mod budget;
mod error;
mod estimator;
pub mod faults;
mod input;
mod lidag;
pub mod pipeline;
mod power;
mod report;
mod segment;
pub mod sequential;
mod strategy;
mod transition;
pub mod twostate;
pub mod wire;

pub use artifact::{model_key, ArtifactError, ArtifactHeader};
pub use budget::{Budget, DegradationCause, DegradationReport, Fallback};
pub use error::EstimateError;
pub use estimator::{estimate, CompiledEstimator, Options};
pub use input::{most_likely, InputGroup, InputModel, InputSpec, PairwiseJoint};
pub use lidag::{gate_cpt, gate_family, Lidag};
pub use pipeline::{Backend, SegmentTimings, StageTimings};
pub use power::{PowerModel, PowerReport};
pub use report::{AccuracyReport, ErrorStats, Estimate, ReuseStats};
pub use segment::{RootSource, Segment, SegmentationPlan};
pub use strategy::{OrderingStrategy, SegmentationStrategy, StructureStrategy};
pub use swact_bayesnet::{KernelMode, SparseMode};
pub use transition::{Transition, TransitionDist};
