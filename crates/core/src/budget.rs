//! Resource governance: compile/propagate budgets and degradation
//! provenance.
//!
//! The paper's own escape hatch for intractability is structural — split
//! the circuit into multiple BNs (Section 5) — but the segmentation
//! planner only *estimates* clique growth, and an adversarial netlist can
//! still push a single segment's junction tree past available memory or a
//! stage past its latency envelope. A [`Budget`] caps those resources
//! explicitly; when a segment exceeds it, the pipeline walks a
//! **degradation ladder** instead of aborting:
//!
//! 1. replan the offending segment alone under a tighter
//!    `segment_budget`, splitting it into smaller sub-segments;
//! 2. if a sub-segment still exceeds the budget, evaluate it with the
//!    anytime `sampling` backend — forward sampling over the full
//!    4-state LIDAG with a deterministic seeded stream, stopping on a
//!    confidence half-width target or the remaining deadline, and
//!    reporting the achieved interval
//!    ([`AccuracyReport`](crate::AccuracyReport));
//! 3. if the sampler cannot model the segment (in-segment pairwise
//!    conditioning), evaluate it with the `twostate` backend (exact
//!    signal probabilities under independence, `2p(1−p)` switching) —
//!    linear-cost, never exponential, but blind to temporal correlation.
//!
//! Every rung taken is recorded as a [`DegradationReport`] inside the
//! [`Estimate`](crate::Estimate), so degraded results carry provenance
//! rather than silently losing accuracy. Setting
//! [`Options::no_fallback`](crate::Options::no_fallback) disables the
//! ladder: budget exhaustion then surfaces as
//! [`EstimateError::BudgetExceeded`](crate::EstimateError::BudgetExceeded).

use std::fmt;
use std::time::Duration;

/// Resource limits checked at pipeline stage boundaries.
///
/// All limits default to `None` (unlimited); the pre-existing
/// [`Options::segment_budget`](crate::Options::segment_budget) remains the
/// *planning target*, while `Budget` is the *hard admission check* applied
/// to what the planner actually produced.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Budget {
    /// Maximum estimated junction-tree state count a single segment may
    /// require. Checked with `triangulate::estimate_cost` *before* the
    /// exponential potential is allocated.
    pub max_states: Option<f64>,
    /// Maximum resident bytes of compiled clique potentials across all
    /// segments (8 bytes per stored entry). Checked cumulatively as
    /// segments compile: the segment whose admission estimate would cross
    /// the cap is degraded.
    pub max_factor_bytes: Option<usize>,
    /// Per-stage wall-clock deadline, checked cooperatively at segment
    /// boundaries (compile) and wave boundaries (propagate). Exceeding it
    /// yields [`EstimateError::DeadlineExceeded`](crate::EstimateError::DeadlineExceeded);
    /// deadline checks never alter numerics, so results that complete are
    /// bit-identical to an undeadlined run.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// An unlimited budget (the default).
    pub const UNLIMITED: Budget = Budget {
        max_states: None,
        max_factor_bytes: None,
        deadline: None,
    };

    /// A budget capping per-segment junction-tree states.
    pub fn states(max_states: f64) -> Budget {
        Budget {
            max_states: Some(max_states),
            ..Budget::UNLIMITED
        }
    }

    /// A budget with a per-stage wall-clock deadline.
    pub fn deadline(deadline: Duration) -> Budget {
        Budget {
            deadline: Some(deadline),
            ..Budget::UNLIMITED
        }
    }

    /// Whether any limit is set.
    pub fn is_limited(&self) -> bool {
        self.max_states.is_some() || self.max_factor_bytes.is_some() || self.deadline.is_some()
    }
}

/// Why a segment was degraded.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum DegradationCause {
    /// The segment's estimated junction-tree state count exceeded
    /// [`Budget::max_states`].
    StateBudget {
        /// Estimated state count at admission time.
        estimated: f64,
        /// The configured cap.
        budget: f64,
    },
    /// Admitting the segment would push cumulative resident factor bytes
    /// past [`Budget::max_factor_bytes`].
    FactorBytes {
        /// Estimated resident bytes with this segment admitted.
        bytes: usize,
        /// The configured cap.
        budget: usize,
    },
}

impl fmt::Display for DegradationCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationCause::StateBudget { estimated, budget } => {
                write!(f, "states {estimated:.3e} > budget {budget:.3e}")
            }
            DegradationCause::FactorBytes { bytes, budget } => {
                write!(f, "factor bytes {bytes} > budget {budget}")
            }
        }
    }
}

/// Which rung of the degradation ladder resolved the exhaustion.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Fallback {
    /// The segment was replanned under a tighter `segment_budget` and
    /// split into this many sub-segments, all within budget.
    Replanned {
        /// Number of sub-segments the offending segment became.
        subsegments: usize,
    },
    /// The (sub-)segment is evaluated by the anytime `sampling` backend:
    /// forward sampling over the full 4-state LIDAG, deterministic for a
    /// fixed seed, with a reported confidence interval
    /// ([`AccuracyReport`](crate::AccuracyReport)).
    Sampling,
    /// The (sub-)segment is evaluated by the `twostate` backend: signal
    /// probabilities under root independence with the `2p(1−p)` switching
    /// proxy — approximate, but linear-cost.
    TwoState,
}

impl fmt::Display for Fallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fallback::Replanned { subsegments } => {
                write!(f, "replanned into {subsegments} sub-segments")
            }
            Fallback::Sampling => write!(f, "sampling backend"),
            Fallback::TwoState => write!(f, "twostate backend"),
        }
    }
}

/// Provenance record for one degraded segment, carried inside the
/// [`Estimate`](crate::Estimate) and surfaced by `swact estimate`,
/// `swact batch --stats`, and the engine metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationReport {
    /// Index of the degraded segment **in the final (post-ladder) segment
    /// list** — the numbering [`Estimate::num_segments`](crate::Estimate::num_segments)
    /// reflects.
    pub segment: usize,
    /// The budget violation that triggered the ladder.
    pub cause: DegradationCause,
    /// The rung that resolved it.
    pub fallback: Fallback,
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segment {}: {} -> {}",
            self.segment, self.cause, self.fallback
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        assert_eq!(Budget::default(), Budget::UNLIMITED);
        assert!(!Budget::default().is_limited());
        assert!(Budget::states(1e4).is_limited());
        assert!(Budget::deadline(Duration::from_millis(5)).is_limited());
    }

    #[test]
    fn report_display() {
        let r = DegradationReport {
            segment: 2,
            cause: DegradationCause::StateBudget {
                estimated: 1e8,
                budget: 1e4,
            },
            fallback: Fallback::TwoState,
        };
        let s = r.to_string();
        assert!(s.contains("segment 2"));
        assert!(s.contains("twostate"));
        let r = DegradationReport {
            segment: 0,
            cause: DegradationCause::FactorBytes {
                bytes: 4096,
                budget: 1024,
            },
            fallback: Fallback::Replanned { subsegments: 3 },
        };
        assert!(r.to_string().contains("3 sub-segments"));
    }
}
