//! Serde-free JSON encoding of estimation results for the wire.
//!
//! `swact-serve` speaks HTTP/JSON over a vendored, offline workspace, so
//! this module hand-encodes the result types instead of pulling in serde.
//! Two properties the encoders guarantee:
//!
//! 1. **Round-trip exactness for floats.** Every `f64` is written with
//!    Rust's shortest-round-trip formatting (`{:?}`), so a client parsing
//!    the JSON number back with `str::parse::<f64>` recovers the *bit
//!    pattern* the engine produced — the server's bit-identity contract
//!    extends through the wire format. Non-finite values (which no
//!    estimate produces) encode as `null`.
//! 2. **Deterministic field order.** Objects are emitted in a fixed key
//!    order, so identical results yield byte-identical JSON.

use crate::budget::DegradationReport;
use crate::report::{Estimate, ReuseStats};
use swact_circuit::Circuit;

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON number for `x`: shortest representation that parses back to the
/// identical bit pattern. Non-finite values become `null` (JSON has no
/// NaN/Infinity).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// `[a, b, ...]` over already-encoded element strings.
fn array(elems: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, e) in elems.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e);
    }
    out.push(']');
    out
}

/// Encodes [`ReuseStats`] as
/// `{"messages_reused":N,"messages_recomputed":N,"segments_skipped":N}`.
pub fn reuse_stats_json(reuse: &ReuseStats) -> String {
    format!(
        "{{\"messages_reused\":{},\"messages_recomputed\":{},\"segments_skipped\":{}}}",
        reuse.messages_reused, reuse.messages_recomputed, reuse.segments_skipped
    )
}

/// Encodes a [`DegradationReport`] with its structured cause/fallback plus
/// the human-readable rendering under `"detail"`.
pub fn degradation_json(report: &DegradationReport) -> String {
    use crate::budget::{DegradationCause, Fallback};
    let cause = match report.cause {
        DegradationCause::StateBudget { estimated, budget } => format!(
            "{{\"kind\":\"state_budget\",\"estimated\":{},\"budget\":{}}}",
            number(estimated),
            number(budget)
        ),
        DegradationCause::FactorBytes { bytes, budget } => {
            format!("{{\"kind\":\"factor_bytes\",\"bytes\":{bytes},\"budget\":{budget}}}")
        }
    };
    let fallback = match report.fallback {
        Fallback::Replanned { subsegments } => {
            format!("{{\"kind\":\"replanned\",\"subsegments\":{subsegments}}}")
        }
        Fallback::TwoState => "{\"kind\":\"twostate\"}".to_string(),
        Fallback::Sampling => "{\"kind\":\"sampling\"}".to_string(),
    };
    format!(
        "{{\"segment\":{},\"cause\":{},\"fallback\":{},\"detail\":\"{}\"}}",
        report.segment,
        cause,
        fallback,
        escape(&report.to_string())
    )
}

/// Encodes the per-rung fallback counts of an estimate's degradation
/// reports as `{"replanned":N,"twostate":N,"sampling":N}` — a quick
/// summary clients can read without walking the full report list.
pub fn degradation_counts_json(reports: &[DegradationReport]) -> String {
    use crate::budget::Fallback;
    let mut replanned = 0usize;
    let mut twostate = 0usize;
    let mut sampling = 0usize;
    for report in reports {
        match report.fallback {
            Fallback::Replanned { .. } => replanned += 1,
            Fallback::TwoState => twostate += 1,
            Fallback::Sampling => sampling += 1,
        }
    }
    format!("{{\"replanned\":{replanned},\"twostate\":{twostate},\"sampling\":{sampling}}}")
}

/// Encodes an estimate's [`AccuracyReport`](crate::AccuracyReport) as
/// `{"half_width":..,"z":..,"samples":N,"converged":bool}`, or `null`
/// when every segment ran an exact backend.
pub fn accuracy_json(estimate: &Estimate) -> String {
    match estimate.accuracy() {
        Some(a) => format!(
            "{{\"half_width\":{},\"z\":{},\"samples\":{},\"converged\":{}}}",
            number(a.half_width),
            number(a.z),
            a.samples,
            a.converged
        ),
        None => "null".to_string(),
    }
}

/// Encodes an [`Estimate`] against the circuit it was computed for.
///
/// Layout (fixed key order):
///
/// ```json
/// {
///   "circuit": "c17",
///   "segments": 1,
///   "mean_switching": 0.37,
///   "accuracy": {"half_width":..,"z":..,"samples":N,"converged":true} | null,
///   "lines": [{"name":"G1","dist":[..4 floats..],"switching":..,"p1":..}, ...],
///   "degradations": [...],
///   "degradation_counts": {"replanned":N,"twostate":N,"sampling":N},
///   "reuse": {...}
/// }
/// ```
///
/// # Panics
///
/// Panics if `circuit` is not the circuit the estimate was computed for
/// (same contract as [`Estimate::to_csv`]).
pub fn estimate_json(estimate: &Estimate, circuit: &Circuit) -> String {
    let lines = array(circuit.line_ids().map(|line| {
        let d = estimate.distribution(line);
        let arr = d.as_array();
        format!(
            "{{\"name\":\"{}\",\"dist\":{},\"switching\":{},\"p1\":{}}}",
            escape(circuit.line_name(line)),
            array(arr.iter().map(|&p| number(p))),
            number(d.switching()),
            number(d.p_one_next())
        )
    }));
    format!(
        "{{\"circuit\":\"{}\",\"segments\":{},\"mean_switching\":{},\"accuracy\":{},\"lines\":{},\"degradations\":{},\"degradation_counts\":{},\"reuse\":{}}}",
        escape(circuit.name()),
        estimate.num_segments(),
        number(estimate.mean_switching()),
        accuracy_json(estimate),
        lines,
        array(estimate.degradations().iter().map(degradation_json)),
        degradation_counts_json(estimate.degradations()),
        reuse_stats_json(&estimate.reuse_stats())
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{DegradationCause, Fallback};
    use crate::{estimate, InputSpec, Options};

    #[test]
    fn escape_covers_controls_and_quotes() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_round_trip_bit_exactly() {
        for x in [0.0, 0.1, 1.0 / 3.0, 1e-300, 123456.789, f64::MIN_POSITIVE] {
            let parsed: f64 = number(x).parse().expect("parseable");
            assert_eq!(parsed.to_bits(), x.to_bits());
        }
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn reuse_and_degradation_encodings() {
        let r = ReuseStats {
            messages_reused: 3,
            messages_recomputed: 4,
            segments_skipped: 1,
        };
        assert_eq!(
            reuse_stats_json(&r),
            "{\"messages_reused\":3,\"messages_recomputed\":4,\"segments_skipped\":1}"
        );
        let d = DegradationReport {
            segment: 2,
            cause: DegradationCause::StateBudget {
                estimated: 1e8,
                budget: 1e4,
            },
            fallback: Fallback::TwoState,
        };
        let json = degradation_json(&d);
        assert!(json.contains("\"segment\":2"));
        assert!(json.contains("state_budget"));
        assert!(json.contains("twostate"));
        let s = DegradationReport {
            fallback: Fallback::Sampling,
            ..d
        };
        assert!(degradation_json(&s).contains("{\"kind\":\"sampling\"}"));
        assert_eq!(
            degradation_counts_json(&[d, s]),
            "{\"replanned\":0,\"twostate\":1,\"sampling\":1}"
        );
    }

    #[test]
    fn accuracy_encodes_null_for_exact_and_object_for_sampled() {
        let c17 = swact_circuit::catalog::c17();
        let exact = estimate(&c17, &InputSpec::uniform(5), &Options::default()).expect("estimate");
        assert_eq!(accuracy_json(&exact), "null");
        let sampled = estimate(
            &c17,
            &InputSpec::uniform(5),
            &Options {
                backend: crate::Backend::Sampling,
                ..Options::default()
            },
        )
        .expect("sampled estimate");
        let json = accuracy_json(&sampled);
        assert!(json.starts_with("{\"half_width\":"), "got {json}");
        assert!(json.contains("\"samples\":"));
        assert!(json.contains("\"converged\":"));
        let full = estimate_json(&sampled, &c17);
        assert!(full.contains("\"accuracy\":{\"half_width\":"));
        assert!(full.contains("\"degradation_counts\":{\"replanned\":0"));
    }

    #[test]
    fn estimate_json_has_one_entry_per_line() {
        let c17 = swact_circuit::catalog::c17();
        let est = estimate(&c17, &InputSpec::uniform(5), &Options::default()).expect("estimate");
        let json = estimate_json(&est, &c17);
        assert!(json.starts_with("{\"circuit\":\"c17\""));
        assert_eq!(json.matches("\"name\":").count(), c17.num_lines());
        assert!(json.contains("\"degradations\":[]"));
        // Every emitted switching value parses back bit-exactly.
        let expected = est.switching_all();
        let mut got = Vec::new();
        for chunk in json.split("\"switching\":").skip(1) {
            let end = chunk.find(['}', ',']).expect("delimiter");
            got.push(chunk[..end].parse::<f64>().expect("float"));
        }
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }
}
