use std::fmt;

/// The four switching states of a line across one clock boundary,
/// `(value at t−1, value at t)` — the paper's `x00, x01, x10, x11`.
///
/// The discriminant encodes the pair as `prev·2 + next`, which is also the
/// state index used in every CPT and marginal in this crate.
///
/// # Example
///
/// ```
/// use swact::Transition;
///
/// assert_eq!(Transition::Rise.index(), 1);
/// assert!(Transition::Rise.is_switch());
/// assert!(!Transition::Stable1.is_switch());
/// assert_eq!(Transition::from_values(true, false), Transition::Fall);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Transition {
    /// `x00` — stays at 0.
    Stable0 = 0,
    /// `x01` — rises 0 → 1.
    Rise = 1,
    /// `x10` — falls 1 → 0.
    Fall = 2,
    /// `x11` — stays at 1.
    Stable1 = 3,
}

impl Transition {
    /// All four states, in index order.
    pub const ALL: [Transition; 4] = [
        Transition::Stable0,
        Transition::Rise,
        Transition::Fall,
        Transition::Stable1,
    ];

    /// The state's index (`prev·2 + next`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds the state from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 3`.
    pub fn from_index(index: usize) -> Transition {
        Transition::ALL[index]
    }

    /// The state of a `(prev, next)` value pair.
    pub fn from_values(prev: bool, next: bool) -> Transition {
        Transition::from_index((prev as usize) * 2 + next as usize)
    }

    /// The line's value at clock *t−1*.
    pub fn prev(self) -> bool {
        self.index() >= 2
    }

    /// The line's value at clock *t*.
    pub fn next(self) -> bool {
        self.index() % 2 == 1
    }

    /// Whether this state is a toggle (`x01` or `x10`).
    pub fn is_switch(self) -> bool {
        matches!(self, Transition::Rise | Transition::Fall)
    }

    /// The paper's name for the state: `x00`, `x01`, `x10` or `x11`.
    pub fn paper_name(self) -> &'static str {
        match self {
            Transition::Stable0 => "x00",
            Transition::Rise => "x01",
            Transition::Fall => "x10",
            Transition::Stable1 => "x11",
        }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// A probability distribution over the four [`Transition`] states of one
/// line.
///
/// # Example
///
/// ```
/// use swact::TransitionDist;
///
/// // Temporally independent fair signal.
/// let d = TransitionDist::new([0.25; 4]);
/// assert!((d.switching() - 0.5).abs() < 1e-12);
/// assert!((d.p_one_next() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionDist([f64; 4]);

impl TransitionDist {
    /// From explicit probabilities `[p(x00), p(x01), p(x10), p(x11)]`.
    ///
    /// # Panics
    ///
    /// Panics if entries are negative or do not sum to 1 (±1e-6).
    pub fn new(probabilities: [f64; 4]) -> TransitionDist {
        assert!(
            probabilities.iter().all(|&p| p >= -1e-12),
            "negative probability"
        );
        let sum: f64 = probabilities.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "transition distribution sums to {sum}"
        );
        TransitionDist(probabilities.map(|p| p.max(0.0)))
    }

    /// The probability of a specific state.
    pub fn p(&self, t: Transition) -> f64 {
        self.0[t.index()]
    }

    /// The raw array, indexed by [`Transition::index`].
    pub fn as_array(&self) -> [f64; 4] {
        self.0
    }

    /// The switching activity `P(x01) + P(x10)` — the paper's estimand.
    pub fn switching(&self) -> f64 {
        self.0[1] + self.0[2]
    }

    /// Signal probability at clock *t*: `P(x01) + P(x11)`.
    pub fn p_one_next(&self) -> f64 {
        self.0[1] + self.0[3]
    }

    /// Signal probability at clock *t−1*: `P(x10) + P(x11)`.
    pub fn p_one_prev(&self) -> f64 {
        self.0[2] + self.0[3]
    }

    /// Whether the distribution is stationary (`P(1)` equal at both
    /// clocks) within `tolerance`.
    pub fn is_stationary(&self, tolerance: f64) -> bool {
        (self.p_one_next() - self.p_one_prev()).abs() <= tolerance
    }
}

impl fmt::Display for TransitionDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[x00={:.4}, x01={:.4}, x10={:.4}, x11={:.4}]",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trip() {
        for t in Transition::ALL {
            assert_eq!(Transition::from_index(t.index()), t);
            assert_eq!(Transition::from_values(t.prev(), t.next()), t);
        }
    }

    #[test]
    fn prev_next_bits() {
        assert!(!Transition::Stable0.prev() && !Transition::Stable0.next());
        assert!(!Transition::Rise.prev() && Transition::Rise.next());
        assert!(Transition::Fall.prev() && !Transition::Fall.next());
        assert!(Transition::Stable1.prev() && Transition::Stable1.next());
    }

    #[test]
    fn switch_flags() {
        assert_eq!(
            Transition::ALL.map(|t| t.is_switch()),
            [false, true, true, false]
        );
    }

    #[test]
    fn paper_names_and_display() {
        assert_eq!(Transition::Fall.to_string(), "x10");
        assert_eq!(Transition::Stable1.paper_name(), "x11");
    }

    #[test]
    fn dist_accessors() {
        let d = TransitionDist::new([0.1, 0.2, 0.3, 0.4]);
        assert!((d.switching() - 0.5).abs() < 1e-12);
        assert!((d.p_one_next() - 0.6).abs() < 1e-12);
        assert!((d.p_one_prev() - 0.7).abs() < 1e-12);
        assert!(!d.is_stationary(0.05));
        assert!(d.is_stationary(0.2));
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn bad_distribution_panics() {
        let _ = TransitionDist::new([0.5, 0.5, 0.5, 0.5]);
    }
}
