//! Deterministic fault injection at named pipeline points.
//!
//! Behind the `fault-inject` cargo feature, a test arms a [`FaultPlan`]
//! that injects panics, stage delays, or synthetic budget pressure at
//! named points the pipeline and engine call through [`hit`] /
//! [`budget_pressure`]. With the feature off (the default, and every
//! production build) the hooks compile to inlined no-ops, so the hot path
//! pays nothing.
//!
//! Determinism: injection is driven purely by (point name, index) — never
//! by wall clock, thread identity, or randomness — and every planned
//! fault fires **exactly once** (one-shot consumption), so a faulted run
//! is reproducible and scenarios the plan does not name are untouched.
//! `arm` also takes a process-wide serialization lock, released when the
//! returned `FaultGuard` drops, so concurrent tests cannot observe each
//! other's faults (both items exist only with the feature on, hence the
//! plain code spans).
//!
//! Named points currently wired:
//!
//! | point | index | placed at |
//! |---|---|---|
//! | `pipeline:plan` | – | after segmentation planning |
//! | `pipeline:admission` | segment | budget admission check per planned segment |
//! | `pipeline:compile` | segment | before backend-compiling a segment |
//! | `pipeline:propagate:wave` | wave | before each propagation wave |
//! | `pipeline:sample:batch` | batch | before each sampling-backend batch |
//! | `engine:job` | scenario | inside a batch worker, before estimating |

use std::time::Duration;

/// What an armed fault does when its point is hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Panic with a recognizable message (`"injected fault: <point>"`).
    Panic,
    /// Sleep for the given duration (models a stalled stage; pair with a
    /// [`Budget::deadline`](crate::Budget::deadline) to exercise deadline
    /// handling).
    Delay(Duration),
    /// Make the next [`budget_pressure`] query at the point report
    /// synthetic exhaustion, as if the admission estimate had exceeded
    /// the budget.
    BudgetPressure,
}

/// A deterministic set of one-shot faults keyed by pipeline point.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<(String, Option<usize>, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault firing at the first hit of `point`, whatever its
    /// index.
    pub fn fault(mut self, point: &str, action: FaultAction) -> FaultPlan {
        self.faults.push((point.to_string(), None, action));
        self
    }

    /// Adds a fault firing only when `point` is hit with exactly `index`
    /// (segment, wave, or scenario number depending on the point).
    pub fn fault_at(mut self, point: &str, index: usize, action: FaultAction) -> FaultPlan {
        self.faults.push((point.to_string(), Some(index), action));
        self
    }
}

#[cfg(feature = "fault-inject")]
mod armed {
    use super::{FaultAction, FaultPlan};
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
    /// Serializes tests that arm faults; injected panics poison nothing
    /// here because hooks never panic while holding `PLAN`.
    static SERIAL: Mutex<()> = Mutex::new(());

    /// RAII guard for an armed plan: disarms on drop and holds the
    /// process-wide fault serialization lock.
    pub struct FaultGuard {
        _serial: MutexGuard<'static, ()>,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *PLAN.lock().unwrap_or_else(PoisonError::into_inner) = None;
        }
    }

    /// Arms `plan` process-wide until the returned guard drops.
    pub fn arm(plan: FaultPlan) -> FaultGuard {
        let serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        *PLAN.lock().unwrap_or_else(PoisonError::into_inner) = Some(plan);
        FaultGuard { _serial: serial }
    }

    /// Consumes the first armed fault matching `(point, index)` whose
    /// action satisfies `wanted`.
    fn take(
        point: &str,
        index: Option<usize>,
        wanted: fn(&FaultAction) -> bool,
    ) -> Option<FaultAction> {
        let mut plan = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
        let faults = &mut plan.as_mut()?.faults;
        let pos = faults
            .iter()
            .position(|(p, i, a)| p == point && (i.is_none() || *i == index) && wanted(a))?;
        Some(faults.remove(pos).2)
    }

    /// Executes any armed panic/delay fault at `(point, index)`.
    pub fn hit(point: &str, index: Option<usize>) {
        match take(point, index, |a| {
            matches!(a, FaultAction::Panic | FaultAction::Delay(_))
        }) {
            Some(FaultAction::Panic) => panic!("injected fault: {point}"),
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            _ => {}
        }
    }

    /// Whether an armed synthetic-budget-pressure fault fires at
    /// `(point, index)`.
    pub fn budget_pressure(point: &str, index: Option<usize>) -> bool {
        matches!(
            take(point, index, |a| matches!(a, FaultAction::BudgetPressure)),
            Some(FaultAction::BudgetPressure)
        )
    }
}

#[cfg(feature = "fault-inject")]
pub use armed::{arm, budget_pressure, hit, FaultGuard};

#[cfg(not(feature = "fault-inject"))]
mod disarmed {
    /// No-op: fault injection is compiled out.
    #[inline(always)]
    pub fn hit(_point: &str, _index: Option<usize>) {}

    /// No-op: fault injection is compiled out.
    #[inline(always)]
    pub fn budget_pressure(_point: &str, _index: Option<usize>) -> bool {
        false
    }
}

#[cfg(not(feature = "fault-inject"))]
pub use disarmed::{budget_pressure, hit};

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;

    #[test]
    fn faults_are_one_shot_and_index_matched() {
        let guard = arm(FaultPlan::new()
            .fault_at("p", 1, FaultAction::BudgetPressure)
            .fault("q", FaultAction::BudgetPressure));
        assert!(!budget_pressure("p", Some(0)));
        assert!(budget_pressure("p", Some(1)));
        assert!(!budget_pressure("p", Some(1)), "one-shot");
        assert!(budget_pressure("q", Some(7)), "no index matches any");
        assert!(!budget_pressure("q", Some(7)));
        drop(guard);
        let _guard = arm(FaultPlan::new());
        assert!(!budget_pressure("p", Some(1)), "disarmed on drop");
    }

    #[test]
    fn hit_ignores_budget_pressure_entries() {
        let _guard = arm(FaultPlan::new().fault("r", FaultAction::BudgetPressure));
        hit("r", None); // must not consume the pressure entry
        assert!(budget_pressure("r", None));
    }
}
