use std::time::Duration;

use swact_circuit::LineId;

use crate::budget::DegradationReport;
use crate::pipeline::{SegmentTimings, StageTimings};
use crate::TransitionDist;

/// Work-reuse counters from one incremental propagation pass (see
/// [`Options::incremental`](crate::Options)). All zero when incremental
/// mode is off or on the first (cold) estimate over a compiled estimator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Collect messages served verbatim from the per-edge message cache.
    pub messages_reused: u64,
    /// Collect messages recomputed because evidence in their source
    /// subtree changed (or the cache was cold).
    pub messages_recomputed: u64,
    /// Segments whose whole posterior was served from the
    /// boundary-marginal memo without touching the junction tree.
    pub segments_skipped: u64,
}

impl ReuseStats {
    /// Fraction of collect messages served from the cache
    /// (`reused / (reused + recomputed)`); `0.0` when no messages were
    /// processed. Messages of memo-skipped segments count as neither.
    pub fn message_reuse_ratio(&self) -> f64 {
        let total = self.messages_reused + self.messages_recomputed;
        if total == 0 {
            0.0
        } else {
            self.messages_reused as f64 / total as f64
        }
    }
}

/// Confidence-interval report from the anytime sampling backend
/// ([`Backend::Sampling`](crate::pipeline::Backend)).
///
/// Attached per sampled segment to its posterior and aggregated over all
/// sampled segments into the [`Estimate`]: `half_width` is the *largest*
/// per-segment half-width (the weakest guarantee), `samples` the total
/// samples drawn, and `converged` true only when every sampled segment hit
/// its half-width target before its deadline or batch cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Achieved confidence-interval half-width on the segment's mean gate
    /// switching activity (normal approximation over batch means).
    pub half_width: f64,
    /// z-score of the confidence level the interval was computed at.
    pub z: f64,
    /// Total samples drawn.
    pub samples: u64,
    /// Whether the half-width target was met (vs. stopping on the
    /// deadline or the batch cap with the best estimate so far).
    pub converged: bool,
}

impl AccuracyReport {
    /// Merges another sampled segment's report into this aggregate:
    /// weakest half-width wins, samples add, convergence is conjunctive.
    pub(crate) fn merge(&mut self, other: &AccuracyReport) {
        if other.half_width > self.half_width {
            self.half_width = other.half_width;
        }
        self.z = other.z;
        self.samples += other.samples;
        self.converged = self.converged && other.converged;
    }
}

/// The result of one estimation pass: a transition distribution for every
/// line, plus timing and structure statistics matching the paper's Table 1
/// columns.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Per *working* line.
    dists: Vec<TransitionDist>,
    /// Original line index → working line index.
    line_map: Vec<usize>,
    compile_time: Duration,
    propagate_time: Duration,
    segments: usize,
    total_states: f64,
    max_clique_states: f64,
    stages: StageTimings,
    per_segment: Vec<SegmentTimings>,
    degradations: Vec<DegradationReport>,
    reuse: ReuseStats,
    accuracy: Option<AccuracyReport>,
}

impl Estimate {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        dists: Vec<TransitionDist>,
        line_map: Vec<usize>,
        compile_time: Duration,
        propagate_time: Duration,
        segments: usize,
        total_states: f64,
        max_clique_states: f64,
        stages: StageTimings,
        per_segment: Vec<SegmentTimings>,
        degradations: Vec<DegradationReport>,
        reuse: ReuseStats,
        accuracy: Option<AccuracyReport>,
    ) -> Estimate {
        Estimate {
            dists,
            line_map,
            compile_time,
            propagate_time,
            segments,
            total_states,
            max_clique_states,
            stages,
            per_segment,
            degradations,
            reuse,
            accuracy,
        }
    }

    /// The transition distribution of an (original-circuit) line.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range for the estimated circuit.
    pub fn distribution(&self, line: LineId) -> TransitionDist {
        self.dists[self.line_map[line.index()]]
    }

    /// The switching activity `P(x01) + P(x10)` of a line.
    pub fn switching(&self, line: LineId) -> f64 {
        self.distribution(line).switching()
    }

    /// Signal probability (at clock *t*) of a line.
    pub fn signal_probability(&self, line: LineId) -> f64 {
        self.distribution(line).p_one_next()
    }

    /// Switching activities for all original lines, indexed by
    /// `LineId::index`.
    pub fn switching_all(&self) -> Vec<f64> {
        self.line_map
            .iter()
            .map(|&w| self.dists[w].switching())
            .collect()
    }

    /// Mean switching activity over all original lines.
    pub fn mean_switching(&self) -> f64 {
        let all = self.switching_all();
        all.iter().sum::<f64>() / all.len() as f64
    }

    /// Number of Bayesian networks (segments) used. 1 ⇒ exact.
    pub fn num_segments(&self) -> usize {
        self.segments
    }

    /// Compilation time (LIDAG + junction trees) — Table 1's "Total" is
    /// this plus [`propagate_time`](Estimate::propagate_time).
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }

    /// Evidence-propagation time — Table 1's "Update" column.
    pub fn propagate_time(&self) -> Duration {
        self.propagate_time
    }

    /// Compile + propagate.
    pub fn total_time(&self) -> Duration {
        self.compile_time + self.propagate_time
    }

    /// Per-stage wall-clock breakdown: `plan`/`model`/`compile` from the
    /// compiled pipeline this estimate ran over, `propagate`/`forward`
    /// from this propagation pass.
    pub fn stage_timings(&self) -> StageTimings {
        self.stages
    }

    /// Per-segment stage breakdown (model/compile from compilation,
    /// propagate from this pass).
    pub fn segment_timings(&self) -> &[SegmentTimings] {
        &self.per_segment
    }

    /// Total junction-tree state count across segments.
    pub fn total_states(&self) -> f64 {
        self.total_states
    }

    /// Largest clique state count across segments.
    pub fn max_clique_states(&self) -> f64 {
        self.max_clique_states
    }

    /// Per-segment degradation provenance from the compile-time budget
    /// ladder (replans and twostate fallbacks); empty when every segment
    /// compiled within budget. A non-empty list means some lines carry
    /// reduced accuracy — inspect the reports before trusting tails.
    pub fn degradations(&self) -> &[DegradationReport] {
        &self.degradations
    }

    /// Whether any segment was degraded to stay within budget.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// Work-reuse counters from this propagation pass (message-cache hits
    /// and memo-skipped segments); all zero on cold runs.
    pub fn reuse_stats(&self) -> ReuseStats {
        self.reuse
    }

    /// Aggregated confidence-interval report when any segment was
    /// evaluated by the anytime sampling backend; `None` for fully exact
    /// (or twostate-only) estimates. See [`AccuracyReport`] for the
    /// aggregation semantics.
    pub fn accuracy(&self) -> Option<&AccuracyReport> {
        self.accuracy.as_ref()
    }

    /// Renders the estimate as CSV with one row per line of `circuit`:
    /// `line,p_x00,p_x01,p_x10,p_x11,switching,signal_probability`.
    ///
    /// # Panics
    ///
    /// Panics if `circuit` is not the circuit this estimate was computed
    /// for (line-count mismatch).
    pub fn to_csv(&self, circuit: &swact_circuit::Circuit) -> String {
        assert_eq!(
            circuit.num_lines(),
            self.line_map.len(),
            "estimate belongs to a different circuit"
        );
        let mut out = String::from("line,p_x00,p_x01,p_x10,p_x11,switching,signal_probability\n");
        for line in circuit.line_ids() {
            let d = self.distribution(line).as_array();
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                circuit.line_name(line),
                d[0],
                d[1],
                d[2],
                d[3],
                d[1] + d[2],
                d[1] + d[3],
            ));
        }
        out
    }

    /// Error statistics of this estimate against a per-line reference
    /// (e.g. long logic simulation), over the original lines.
    ///
    /// # Panics
    ///
    /// Panics if `reference.len()` differs from the original line count.
    pub fn compare(&self, reference: &[f64]) -> ErrorStats {
        ErrorStats::between(&self.switching_all(), reference)
    }
}

/// Accuracy statistics in the paper's Table 1 format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Mean of the absolute per-node error (µErr).
    pub mean_abs_error: f64,
    /// Standard deviation of the per-node error (σErr).
    pub std_error: f64,
    /// |avg(est) − avg(ref)| / avg(ref) in percent (%Error).
    pub percent_error: f64,
    /// Largest absolute per-node error.
    pub max_abs_error: f64,
}

impl ErrorStats {
    /// Computes statistics between an estimate and a reference, node-wise.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different (or zero) lengths.
    pub fn between(estimate: &[f64], reference: &[f64]) -> ErrorStats {
        assert_eq!(estimate.len(), reference.len(), "node count mismatch");
        assert!(!estimate.is_empty(), "need at least one node");
        let n = estimate.len() as f64;
        let errors: Vec<f64> = estimate.iter().zip(reference).map(|(e, r)| e - r).collect();
        let mean_abs_error = errors.iter().map(|e| e.abs()).sum::<f64>() / n;
        let mean_err = errors.iter().sum::<f64>() / n;
        let std_error = (errors
            .iter()
            .map(|e| (e - mean_err) * (e - mean_err))
            .sum::<f64>()
            / n)
            .sqrt();
        let avg_est = estimate.iter().sum::<f64>() / n;
        let avg_ref = reference.iter().sum::<f64>() / n;
        let percent_error = if avg_ref != 0.0 {
            (avg_est - avg_ref).abs() / avg_ref * 100.0
        } else {
            0.0
        };
        let max_abs_error = errors.iter().map(|e| e.abs()).fold(0.0, f64::max);
        ErrorStats {
            mean_abs_error,
            std_error,
            percent_error,
            max_abs_error,
        }
    }
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "µErr={:.4} σErr={:.4} %Err={:.3} max={:.4}",
            self.mean_abs_error, self.std_error, self.percent_error, self.max_abs_error
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_stats_exact_match() {
        let s = ErrorStats::between(&[0.1, 0.2, 0.3], &[0.1, 0.2, 0.3]);
        assert_eq!(s.mean_abs_error, 0.0);
        assert_eq!(s.std_error, 0.0);
        assert_eq!(s.percent_error, 0.0);
        assert_eq!(s.max_abs_error, 0.0);
    }

    #[test]
    fn error_stats_known_values() {
        let s = ErrorStats::between(&[0.2, 0.2], &[0.1, 0.3]);
        assert!((s.mean_abs_error - 0.1).abs() < 1e-12);
        // errors are +0.1 and −0.1 → mean 0, std 0.1.
        assert!((s.std_error - 0.1).abs() < 1e-12);
        // averages agree → 0 percent error on the mean.
        assert!(s.percent_error.abs() < 1e-12);
        assert!((s.max_abs_error - 0.1).abs() < 1e-12);
    }

    #[test]
    fn percent_error_of_mean() {
        let s = ErrorStats::between(&[0.22, 0.22], &[0.2, 0.2]);
        assert!((s.percent_error - 10.0).abs() < 1e-9);
    }

    #[test]
    fn csv_has_one_row_per_line() {
        use crate::{estimate, InputSpec, Options};
        let c17 = swact_circuit::catalog::c17();
        let est = estimate(&c17, &InputSpec::uniform(5), &Options::default()).unwrap();
        let csv = est.to_csv(&c17);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "line,p_x00,p_x01,p_x10,p_x11,switching,signal_probability"
        );
        assert_eq!(lines.count(), c17.num_lines());
        // Rows are parseable and consistent.
        for row in csv.lines().skip(1) {
            let cells: Vec<&str> = row.split(',').collect();
            assert_eq!(cells.len(), 7);
            let values: Vec<f64> = cells[1..].iter().map(|v| v.parse().unwrap()).collect();
            assert!((values[0] + values[1] + values[2] + values[3] - 1.0).abs() < 1e-5);
            assert!((values[4] - (values[1] + values[2])).abs() < 1e-5);
        }
    }

    #[test]
    fn display_is_compact() {
        let s = ErrorStats::between(&[0.2], &[0.1]);
        let shown = s.to_string();
        assert!(shown.contains("µErr="));
        assert!(shown.contains("%Err="));
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn mismatched_lengths_panic() {
        let _ = ErrorStats::between(&[0.1], &[0.1, 0.2]);
    }
}
