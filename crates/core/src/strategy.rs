//! The pluggable structure-optimization layer.
//!
//! Every expensive property of the compiled pipeline — clique state space,
//! sparse nnz, compile time, and the sole approximation source
//! (cross-boundary correlation loss) — is decided by two structural
//! choices made long before any probability is propagated: the
//! *elimination/variable order* inside each segment and the *segment
//! boundaries* themselves. [`StructureStrategy`] makes both choices
//! first-class and pluggable instead of hardwired greedy heuristics:
//!
//! - [`OrderingStrategy`] selects how per-segment orders are found. The
//!   default [`Greedy`](OrderingStrategy::Greedy) keeps today's behavior
//!   (min-fill/min-degree triangulation for the junction-tree backend,
//!   root-discovery order for BDD variables) bit-identically.
//!   [`Force`](OrderingStrategy::Force) additionally runs the
//!   deterministic FORCE center-of-gravity layout
//!   ([`swact_bayesnet::force_order`]) over each segment's structure
//!   hypergraph and keeps whichever compiled artifact is cheaper — so
//!   opting in can never make a segment's kernel cost (jtree) or node
//!   count (BDD) worse.
//! - [`SegmentationStrategy`] selects how segment boundaries are placed.
//!   The default [`TopoCover`](SegmentationStrategy::TopoCover) closes a
//!   segment wherever the cone-clustered walk first exceeds the state
//!   budget. [`BalancedCut`](SegmentationStrategy::BalancedCut) instead
//!   searches the recorded checkpoints of the walk for the boundary that
//!   minimizes the *cut* (lines the segment exports to later consumers —
//!   each one a correlation the multi-BN model drops) subject to a
//!   treewidth-balance floor, backtracking to it when the budget trips.
//!
//! The strategy participates in [`model_key`](crate::model_key) hashing
//! (see `pipeline::persist::write_options`), so compiled artifacts,
//! engine-cache entries, and on-disk files produced under different
//! strategies can never be confused for one another.

use std::fmt;
use std::str::FromStr;

/// How elimination orders (jtree) and variable orders (BDD) are chosen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum OrderingStrategy {
    /// The existing greedy behavior: min-fill/min-degree triangulation for
    /// junction trees, root-discovery order for BDD variables. The
    /// default; bit-identical to the pre-strategy pipeline.
    #[default]
    Greedy,
    /// Also compute a deterministic FORCE center-of-gravity layout per
    /// segment and keep whichever compiled structure is cheaper (ties go
    /// to greedy, preserving determinism). Costs roughly one extra
    /// compile per segment; never produces a worse artifact than greedy.
    Force,
}

impl OrderingStrategy {
    /// Stable lower-case name (`greedy`, `force`).
    pub fn name(&self) -> &'static str {
        match self {
            OrderingStrategy::Greedy => "greedy",
            OrderingStrategy::Force => "force",
        }
    }
}

impl fmt::Display for OrderingStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for OrderingStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<OrderingStrategy, String> {
        match s.to_ascii_lowercase().as_str() {
            "greedy" => Ok(OrderingStrategy::Greedy),
            "force" => Ok(OrderingStrategy::Force),
            other => Err(format!(
                "unknown ordering strategy '{other}' (expected greedy or force)"
            )),
        }
    }
}

/// How segment boundaries are placed during planning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SegmentationStrategy {
    /// Close a segment wherever the cone-clustered topological walk first
    /// exceeds the state budget — the paper's behavior and the default.
    #[default]
    TopoCover,
    /// Search the walk's checkpoints for the boundary minimizing the
    /// boundary-cut size (lines consumed by later segments) subject to a
    /// treewidth-balance floor, and backtrack to it when the budget trips.
    BalancedCut,
}

impl SegmentationStrategy {
    /// Stable lower-case name (`topo-cover`, `balanced-cut`).
    pub fn name(&self) -> &'static str {
        match self {
            SegmentationStrategy::TopoCover => "topo-cover",
            SegmentationStrategy::BalancedCut => "balanced-cut",
        }
    }
}

impl fmt::Display for SegmentationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SegmentationStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<SegmentationStrategy, String> {
        match s.to_ascii_lowercase().as_str() {
            "topo-cover" | "topo" | "cover" => Ok(SegmentationStrategy::TopoCover),
            "balanced-cut" | "balanced" | "search" => Ok(SegmentationStrategy::BalancedCut),
            other => Err(format!(
                "unknown segmentation strategy '{other}' (expected topo-cover or balanced-cut)"
            )),
        }
    }
}

/// The full structure-optimization policy one pipeline compiles under.
///
/// Part of [`Options`](crate::Options) and therefore hashed into every
/// [`model_key`](crate::model_key): two strategies never share an engine
/// cache entry or an on-disk artifact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct StructureStrategy {
    /// Elimination-/variable-order policy.
    pub ordering: OrderingStrategy,
    /// Segment-boundary policy.
    pub segmentation: SegmentationStrategy,
}

impl StructureStrategy {
    /// The default greedy strategy — bit-identical to the pre-strategy
    /// pipeline by construction.
    pub const GREEDY: StructureStrategy = StructureStrategy {
        ordering: OrderingStrategy::Greedy,
        segmentation: SegmentationStrategy::TopoCover,
    };

    /// FORCE orderings with the default topological-cover segmentation.
    pub fn force() -> StructureStrategy {
        StructureStrategy {
            ordering: OrderingStrategy::Force,
            segmentation: SegmentationStrategy::TopoCover,
        }
    }

    /// Balanced-cut segmentation search with greedy orderings.
    pub fn balanced_cut() -> StructureStrategy {
        StructureStrategy {
            ordering: OrderingStrategy::Greedy,
            segmentation: SegmentationStrategy::BalancedCut,
        }
    }
}

impl fmt::Display for StructureStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.ordering, self.segmentation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints() {
        assert_eq!(
            "force".parse::<OrderingStrategy>().unwrap(),
            OrderingStrategy::Force
        );
        assert_eq!(
            "GREEDY".parse::<OrderingStrategy>().unwrap(),
            OrderingStrategy::Greedy
        );
        assert!("random".parse::<OrderingStrategy>().is_err());
        assert_eq!(
            "balanced-cut".parse::<SegmentationStrategy>().unwrap(),
            SegmentationStrategy::BalancedCut
        );
        assert_eq!(
            "topo".parse::<SegmentationStrategy>().unwrap(),
            SegmentationStrategy::TopoCover
        );
        assert!("optimal".parse::<SegmentationStrategy>().is_err());
        assert_eq!(StructureStrategy::default(), StructureStrategy::GREEDY);
        assert_eq!(StructureStrategy::force().to_string(), "force/topo-cover");
        assert_eq!(
            StructureStrategy::balanced_cut().to_string(),
            "greedy/balanced-cut"
        );
    }
}
