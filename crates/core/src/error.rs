use std::error::Error;
use std::fmt;

use swact_bayesnet::BayesError;
use swact_circuit::CircuitError;

/// Errors produced while building or running the switching estimator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EstimateError {
    /// The input specification covers a different number of inputs than the
    /// circuit declares.
    InputCountMismatch {
        /// Inputs the circuit has.
        circuit: usize,
        /// Inputs the spec covers.
        spec: usize,
    },
    /// An input model's parameters are out of range or jointly infeasible.
    InvalidInputModel {
        /// Requested signal probability.
        p1: f64,
        /// Requested switching activity.
        activity: f64,
    },
    /// The spec's input-group structure differs from the one the estimator
    /// was compiled for (group membership is part of the compiled network
    /// structure; re-compile to change it).
    GroupStructureMismatch,
    /// A single-BN estimate was requested but the circuit's junction tree
    /// exceeds the configured budget; use segmented mode (the default).
    TooLarge {
        /// Estimated junction-tree state count.
        states: f64,
        /// The configured budget.
        budget: f64,
    },
    /// The selected inference backend cannot model a requested feature
    /// (e.g. input groups or pairwise joints outside the junction-tree
    /// backend).
    BackendUnsupported {
        /// Backend name (see [`Backend::name`](crate::pipeline::Backend)).
        backend: &'static str,
        /// Human-readable name of the unsupported feature.
        feature: &'static str,
    },
    /// A backend-internal failure (e.g. the OBDD node budget was
    /// exhausted while compiling a segment).
    Backend {
        /// Backend name.
        backend: &'static str,
        /// Backend-specific failure description.
        message: String,
    },
    /// Boundary-correlation parents widened a segment's junction tree
    /// past the tolerated blowup (4× the segment budget). This is an
    /// internal signal: the pipeline driver answers it by recompiling the
    /// segment with plain marginal forwarding, so it only escapes through
    /// direct [`InferenceBackend::compile`](crate::pipeline::InferenceBackend::compile)
    /// calls.
    CorrelationBlowup {
        /// Junction-tree state count with correlation parents.
        states: f64,
        /// The configured per-segment budget.
        budget: f64,
    },
    /// A resource budget ([`Budget`](crate::Budget)) was exceeded while
    /// compiling a segment, and the degradation ladder was disabled (or
    /// exhausted) for it.
    BudgetExceeded {
        /// Segment index in the final plan.
        segment: usize,
        /// Estimated junction-tree state count of the offending segment.
        states: f64,
        /// The configured budget it violated.
        budget: f64,
        /// The ladder rung that actually exhausted the budget: the
        /// backend whose compile attempt could not fit (`"jtree"`,
        /// `"bdd"`, `"sampling"`, `"twostate"` — or the primary backend's
        /// name when the ladder is disabled via `no_fallback`).
        rung: &'static str,
    },
    /// A per-stage wall-clock deadline ([`Budget::deadline`](crate::Budget))
    /// elapsed. Deadlines are cooperative: the stage checks them at
    /// segment/wave boundaries, so the stage finishes its current unit of
    /// work before reporting. Retryable — a later attempt on a less loaded
    /// worker may fit.
    DeadlineExceeded {
        /// Pipeline stage that ran out of time (`"compile"`,
        /// `"propagate"`, or `"queue"`).
        stage: &'static str,
        /// The configured deadline.
        deadline: std::time::Duration,
    },
    /// A worker panicked while evaluating this request; the panic was
    /// caught at the job boundary and converted to an error so the batch
    /// (and the worker) survive. Retryable — panics from transient faults
    /// disappear on re-execution.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The request was cancelled before (or instead of) running — e.g. it
    /// was still queued when the engine began shutting down. Not
    /// retryable against the same engine (it is going away), but a client
    /// may resubmit elsewhere.
    Cancelled,
    /// An underlying structural circuit error (e.g. during fan-in
    /// decomposition).
    Circuit(CircuitError),
    /// An underlying Bayesian-network error.
    Bayes(BayesError),
}

impl EstimateError {
    /// Whether retrying the same request may succeed. True only for
    /// transient failures ([`Panicked`](EstimateError::Panicked),
    /// [`DeadlineExceeded`](EstimateError::DeadlineExceeded)); structural
    /// errors (bad spec, budget exhaustion, circuit/BN construction) are
    /// deterministic and retrying them wastes work.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            EstimateError::Panicked { .. } | EstimateError::DeadlineExceeded { .. }
        )
    }

    /// Converts a caught panic payload (from `catch_unwind` or a failed
    /// thread join) into [`EstimateError::Panicked`], extracting the
    /// message when the payload is a string.
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> EstimateError {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        EstimateError::Panicked { message }
    }
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::InputCountMismatch { circuit, spec } => write!(
                f,
                "input spec covers {spec} inputs but the circuit has {circuit}"
            ),
            EstimateError::InvalidInputModel { p1, activity } => write!(
                f,
                "input model p1={p1}, activity={activity} is out of range or infeasible"
            ),
            EstimateError::GroupStructureMismatch => write!(
                f,
                "input-group structure differs from the compiled one; recompile"
            ),
            EstimateError::TooLarge { states, budget } => write!(
                f,
                "single-BN junction tree needs {states:.3e} states, budget is {budget:.3e}"
            ),
            EstimateError::BackendUnsupported { backend, feature } => write!(
                f,
                "backend '{backend}' does not support {feature}; use the jtree backend"
            ),
            EstimateError::Backend { backend, message } => {
                write!(f, "backend '{backend}' failed: {message}")
            }
            EstimateError::CorrelationBlowup { states, budget } => write!(
                f,
                "boundary-correlation parents widened the segment tree to {states:.3e} states \
                 (budget {budget:.3e}); the pipeline falls back to marginal forwarding"
            ),
            EstimateError::BudgetExceeded {
                segment,
                states,
                budget,
                rung,
            } => write!(
                f,
                "segment {segment} needs {states:.3e} states on the '{rung}' rung, \
                 budget is {budget:.3e} and fallback is disabled or exhausted"
            ),
            EstimateError::DeadlineExceeded { stage, deadline } => {
                write!(f, "{stage} stage exceeded its {deadline:?} deadline")
            }
            EstimateError::Panicked { message } => {
                write!(f, "worker panicked: {message}")
            }
            EstimateError::Cancelled => {
                write!(f, "request cancelled during engine shutdown")
            }
            EstimateError::Circuit(e) => write!(f, "circuit error: {e}"),
            EstimateError::Bayes(e) => write!(f, "bayesian network error: {e}"),
        }
    }
}

impl Error for EstimateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EstimateError::Circuit(e) => Some(e),
            EstimateError::Bayes(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for EstimateError {
    fn from(e: CircuitError) -> EstimateError {
        EstimateError::Circuit(e)
    }
}

impl From<BayesError> for EstimateError {
    fn from(e: BayesError) -> EstimateError {
        EstimateError::Bayes(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EstimateError::InputCountMismatch {
            circuit: 5,
            spec: 3,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.source().is_none());
        let e = EstimateError::from(BayesError::Empty);
        assert!(e.source().is_some());
        let e = EstimateError::from(CircuitError::NoInputs);
        assert!(e.to_string().contains("circuit error"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EstimateError>();
    }

    #[test]
    fn retryable_classification() {
        assert!(EstimateError::Panicked {
            message: "boom".into(),
        }
        .retryable());
        assert!(EstimateError::DeadlineExceeded {
            stage: "compile",
            deadline: std::time::Duration::from_millis(5),
        }
        .retryable());
        assert!(!EstimateError::BudgetExceeded {
            segment: 0,
            states: 1e9,
            budget: 1e3,
            rung: "jtree",
        }
        .retryable());
        assert!(!EstimateError::GroupStructureMismatch.retryable());
        assert!(!EstimateError::Cancelled.retryable());
        assert!(!EstimateError::from(CircuitError::NoInputs).retryable());
    }

    #[test]
    fn new_variants_display() {
        let e = EstimateError::BudgetExceeded {
            segment: 3,
            states: 1e9,
            budget: 1e3,
            rung: "twostate",
        };
        assert!(e.to_string().contains("segment 3"));
        assert!(e.to_string().contains("'twostate' rung"));
        let e = EstimateError::DeadlineExceeded {
            stage: "propagate",
            deadline: std::time::Duration::from_millis(7),
        };
        assert!(e.to_string().contains("propagate"));
        let e = EstimateError::Panicked {
            message: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("panicked"));
    }
}
