//! Circuit segmentation for multi-BN estimation (paper §6).
//!
//! One junction tree over a large circuit's LIDAG is intractable (clique
//! state counts grow exponentially with induced width), so the circuit is
//! cut into **segments** processed in topological order: each segment
//! becomes its own small Bayesian network whose root variables are the
//! primary inputs and the *boundary lines* computed by earlier segments.
//! A boundary line enters as an independent root carrying its estimated
//! four-state marginal — dropping only the cross-boundary joint
//! correlation, the paper's acknowledged error source ("the errors
//! encountered in larger circuits are contributed by the loss of some
//! correlations in the network boundaries").
//!
//! The planner walks gates in topological order and closes a segment when
//! the junction-tree state count of its LIDAG (estimated by a quick
//! min-degree triangulation) exceeds the configured budget.

use std::collections::{HashMap, VecDeque};

use swact_bayesnet::graph::UndirectedGraph;
use swact_bayesnet::triangulate::{estimate_cost, Heuristic};
use swact_circuit::{Circuit, LineId};

use crate::strategy::SegmentationStrategy;

/// Where a segment's root variable comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootSource {
    /// A primary input (position in the circuit's input list).
    PrimaryInput(usize),
    /// A line driven by a gate in an earlier segment.
    Boundary,
}

/// One planned segment: its root lines and its gate-output lines, both in
/// the working circuit's id space.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Root lines with their provenance, in first-use order.
    pub roots: Vec<(LineId, RootSource)>,
    /// Gate-output lines evaluated by this segment, in topological order.
    pub gates: Vec<LineId>,
}

/// A topologically ordered partition of a circuit's gates into segments
/// whose per-segment LIDAG junction trees fit a state budget.
///
/// # Example
///
/// ```
/// use swact::SegmentationPlan;
/// use swact_bayesnet::Heuristic;
/// use swact_circuit::catalog;
///
/// let c432 = catalog::benchmark("c432").unwrap();
/// let plan = SegmentationPlan::plan(&c432, 4, 1 << 14, 4, Heuristic::MinDegree);
/// assert!(plan.segments().len() > 1, "c432 does not fit one tiny BN");
/// // Every gate appears in exactly one segment.
/// let total: usize = plan.segments().iter().map(|s| s.gates.len()).sum();
/// assert_eq!(total, c432.num_gates());
/// ```
#[derive(Debug, Clone)]
pub struct SegmentationPlan {
    segments: Vec<Segment>,
    budget: f64,
}

impl SegmentationPlan {
    /// Plans segments for `circuit` (already fan-in decomposed):
    /// variables have `card` states (4 for transition variables), segments
    /// close when the estimated junction-tree state count exceeds
    /// `budget`, checked every `check_interval` gates with `heuristic`.
    ///
    /// The budget is soft: a segment may overshoot by up to
    /// `check_interval − 1` gates' worth of growth, and a single gate's
    /// family is never split however large.
    ///
    /// # Panics
    ///
    /// Panics if `check_interval` is zero.
    /// A plan with no segments, used when reconstructing a compiled
    /// pipeline from a persisted artifact — the final (post-degradation)
    /// segment list is stored separately, so the original plan is not
    /// needed and is not persisted.
    pub(crate) fn empty(budget: f64) -> SegmentationPlan {
        SegmentationPlan {
            segments: Vec::new(),
            budget,
        }
    }

    pub fn plan(
        circuit: &Circuit,
        card: usize,
        budget: usize,
        check_interval: usize,
        heuristic: Heuristic,
    ) -> SegmentationPlan {
        SegmentationPlan::plan_with(
            circuit,
            card,
            budget,
            check_interval,
            heuristic,
            SegmentationStrategy::TopoCover,
        )
    }

    /// Plans segments under an explicit [`SegmentationStrategy`].
    ///
    /// [`TopoCover`](SegmentationStrategy::TopoCover) is [`plan`]'s
    /// behavior verbatim. [`BalancedCut`](SegmentationStrategy::BalancedCut)
    /// records a checkpoint (estimated cost, boundary-cut size) at every
    /// budget check of the same walk and, when the budget finally trips,
    /// backtracks to the qualifying checkpoint with the smallest cut —
    /// trading a little state-space balance for fewer boundary roots, each
    /// of which is a dropped cross-segment correlation. A checkpoint
    /// qualifies when its estimated cost is at least a quarter of the
    /// budget, so the search cannot degenerate into many tiny segments.
    ///
    /// [`plan`]: SegmentationPlan::plan
    ///
    /// # Panics
    ///
    /// Panics if `check_interval` is zero.
    pub fn plan_with(
        circuit: &Circuit,
        card: usize,
        budget: usize,
        check_interval: usize,
        heuristic: Heuristic,
        strategy: SegmentationStrategy,
    ) -> SegmentationPlan {
        assert!(check_interval > 0, "check interval must be positive");
        let budget = budget as f64;
        let order = cone_order(circuit);
        let segments = match strategy {
            SegmentationStrategy::TopoCover => {
                let mut segments: Vec<Segment> = Vec::new();
                let mut builder = SegmentBuilder::new(circuit, card);
                let mut since_check = 0usize;
                for &gate in &order {
                    builder.push_gate(gate);
                    since_check += 1;
                    if since_check >= check_interval {
                        since_check = 0;
                        if builder.estimated_cost(heuristic) > budget && builder.gates.len() > 1 {
                            segments.push(builder.finish());
                            builder = SegmentBuilder::new(circuit, card);
                        }
                    }
                }
                if !builder.gates.is_empty() {
                    segments.push(builder.finish());
                }
                segments
            }
            SegmentationStrategy::BalancedCut => {
                balanced_cut_segments(circuit, card, budget, check_interval, heuristic, &order)
            }
        };
        SegmentationPlan { segments, budget }
    }

    /// The planned segments, in topological order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The state budget the plan was built for.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The planner's estimated junction-tree state count for each segment
    /// (the quick-triangulation admission figure, not the compiled size) —
    /// what `swact plan` prints to explain where a plan's budget went.
    pub fn estimated_costs(
        &self,
        circuit: &Circuit,
        card: usize,
        heuristic: Heuristic,
    ) -> Vec<f64> {
        self.segments
            .iter()
            .map(|seg| estimate_segment_cost(circuit, card, seg, heuristic))
            .collect()
    }

    /// Number of boundary-root connections across all segments — a proxy
    /// for how much cross-segment correlation is dropped.
    pub fn boundary_roots(&self) -> usize {
        self.segments
            .iter()
            .map(|s| {
                s.roots
                    .iter()
                    .filter(|(_, src)| *src == RootSource::Boundary)
                    .count()
            })
            .sum()
    }
}

/// Estimated junction-tree state count of one already-planned segment —
/// the same quick-triangulation admission figure the planner uses, exposed
/// so the pipeline can hard-check a [`Budget`](crate::Budget) *before*
/// allocating the segment's potentials.
pub(crate) fn estimate_segment_cost(
    circuit: &Circuit,
    card: usize,
    seg: &Segment,
    heuristic: Heuristic,
) -> f64 {
    let mut builder = SegmentBuilder::new(circuit, card);
    for &gate in &seg.gates {
        builder.push_gate(gate);
    }
    builder.estimated_cost(heuristic)
}

/// Replans a single over-budget segment under a tighter state budget,
/// splitting its gates (kept in their existing topological order) into
/// sub-segments exactly as [`SegmentationPlan::plan`] would. Sub-segment
/// roots are recomputed from scratch, so lines produced by an earlier
/// sub-segment become ordinary boundary roots of later ones.
pub(crate) fn replan_segment(
    circuit: &Circuit,
    card: usize,
    seg: &Segment,
    budget: f64,
    check_interval: usize,
    heuristic: Heuristic,
) -> Vec<Segment> {
    assert!(check_interval > 0, "check interval must be positive");
    let mut segments: Vec<Segment> = Vec::new();
    let mut builder = SegmentBuilder::new(circuit, card);
    let mut since_check = 0usize;
    for &gate in &seg.gates {
        builder.push_gate(gate);
        since_check += 1;
        if since_check >= check_interval {
            since_check = 0;
            if builder.estimated_cost(heuristic) > budget && builder.gates.len() > 1 {
                segments.push(builder.finish());
                builder = SegmentBuilder::new(circuit, card);
            }
        }
    }
    if !builder.gates.is_empty() {
        segments.push(builder.finish());
    }
    segments
}

/// One recorded budget-check state of the balanced-cut walk.
struct Checkpoint {
    /// Number of gates in the segment at this checkpoint.
    len: usize,
    /// Estimated junction-tree state count of the segment's LIDAG here.
    cost: f64,
    /// Lines driven by the segment so far that a later gate consumes —
    /// the boundary roots this cut would force onto later segments.
    cut: usize,
}

/// The balanced-cut segmentation search (see
/// [`SegmentationPlan::plan_with`]). Gates stay in the given cone order —
/// only where segments *close* differs from the topological cover: when
/// the budget trips, the walk backtracks to the recorded checkpoint with
/// the smallest boundary cut whose cost is at least `budget / 4`, and the
/// gates after it are replayed into the next segment. Fully deterministic.
fn balanced_cut_segments(
    circuit: &Circuit,
    card: usize,
    budget: f64,
    check_interval: usize,
    heuristic: Heuristic,
    order: &[LineId],
) -> Vec<Segment> {
    // Global position of each gate in the walk, and the last position at
    // which each line is consumed by a gate. A line whose last consumer
    // lies beyond a candidate boundary becomes a boundary root there.
    let mut pos_of: HashMap<LineId, usize> = HashMap::with_capacity(order.len());
    let mut last_use: HashMap<LineId, usize> = HashMap::new();
    for (p, &gate) in order.iter().enumerate() {
        pos_of.insert(gate, p);
        for &input in &circuit.gate(gate).expect("gate-driven line").inputs {
            last_use.insert(input, p);
        }
    }
    let cut_at = |gates: &[LineId], p: usize| -> usize {
        gates
            .iter()
            .filter(|g| last_use.get(g).is_some_and(|&u| u > p))
            .count()
    };

    let mut segments: Vec<Segment> = Vec::new();
    let mut queue: VecDeque<LineId> = order.iter().copied().collect();
    let mut builder = SegmentBuilder::new(circuit, card);
    let mut checkpoints: Vec<Checkpoint> = Vec::new();
    let mut since_check = 0usize;
    while let Some(gate) = queue.pop_front() {
        builder.push_gate(gate);
        since_check += 1;
        if since_check < check_interval {
            continue;
        }
        since_check = 0;
        let cost = builder.estimated_cost(heuristic);
        let here = pos_of[&gate];
        if cost > budget && builder.gates.len() > 1 {
            // Backtrack: among checkpoints heavy enough to be worth a
            // segment (cost ≥ budget/4), take the smallest cut; ties go to
            // the latest checkpoint (largest prefix). Without a qualifying
            // checkpoint, close here exactly as the topological cover does.
            let best_len = checkpoints
                .iter()
                .filter(|c| c.cost * 4.0 >= budget)
                .min_by(|a, b| a.cut.cmp(&b.cut).then(b.len.cmp(&a.len)))
                .map(|c| c.len);
            match best_len {
                Some(keep) if keep < builder.gates.len() => {
                    let tail: Vec<LineId> = builder.gates[keep..].to_vec();
                    let mut head = SegmentBuilder::new(circuit, card);
                    for &g in &builder.gates[..keep] {
                        head.push_gate(g);
                    }
                    segments.push(head.finish());
                    for &g in tail.iter().rev() {
                        queue.push_front(g);
                    }
                }
                _ => segments.push(builder.finish()),
            }
            builder = SegmentBuilder::new(circuit, card);
            checkpoints.clear();
        } else {
            checkpoints.push(Checkpoint {
                len: builder.gates.len(),
                cost,
                cut: cut_at(&builder.gates, here),
            });
        }
    }
    if !builder.gates.is_empty() {
        segments.push(builder.finish());
    }
    segments
}

/// Gate lines in a *cone-clustered* topological order: a depth-first
/// post-order from each primary output, so the logic feeding one output is
/// contiguous. Cutting such an order into segments keeps correlated
/// (reconvergent) logic together, which is what limits the correlation lost
/// at segment boundaries. Dead logic unreachable from any output is
/// appended in plain topological order.
fn cone_order(circuit: &Circuit) -> Vec<LineId> {
    let n = circuit.num_lines();
    let mut emitted = vec![false; n];
    let mut order = Vec::with_capacity(circuit.num_gates());
    for &po in circuit.outputs() {
        // Iterative DFS post-order.
        let mut stack: Vec<(LineId, usize)> = vec![(po, 0)];
        while let Some(&mut (line, ref mut child)) = stack.last_mut() {
            if emitted[line.index()] || circuit.is_input(line) {
                emitted[line.index()] = true;
                stack.pop();
                continue;
            }
            let inputs = &circuit.gate(line).expect("non-input line").inputs;
            if *child < inputs.len() {
                let next = inputs[*child];
                *child += 1;
                if !emitted[next.index()] && !circuit.is_input(next) {
                    stack.push((next, 0));
                }
            } else {
                emitted[line.index()] = true;
                order.push(line);
                stack.pop();
            }
        }
    }
    for line in circuit.topo_order() {
        if !emitted[line.index()] && !circuit.is_input(line) {
            order.push(line);
        }
    }
    order
}

struct SegmentBuilder<'c> {
    circuit: &'c Circuit,
    card: usize,
    /// Local index per line in this segment.
    local: HashMap<LineId, usize>,
    roots: Vec<(LineId, RootSource)>,
    gates: Vec<LineId>,
    /// Gate families as local index lists (for the moral graph).
    families: Vec<Vec<usize>>,
    /// Lines driven by a gate *inside* this segment.
    driven_here: std::collections::HashSet<LineId>,
}

impl<'c> SegmentBuilder<'c> {
    fn new(circuit: &'c Circuit, card: usize) -> SegmentBuilder<'c> {
        SegmentBuilder {
            circuit,
            card,
            local: HashMap::new(),
            roots: Vec::new(),
            gates: Vec::new(),
            families: Vec::new(),
            driven_here: std::collections::HashSet::new(),
        }
    }

    fn local_index(&mut self, line: LineId) -> usize {
        if let Some(&i) = self.local.get(&line) {
            return i;
        }
        let i = self.local.len();
        self.local.insert(line, i);
        i
    }

    fn push_gate(&mut self, gate_line: LineId) {
        let gate = self
            .circuit
            .gate(gate_line)
            .expect("segment gates are gate-driven lines")
            .clone();
        // Inputs not driven inside this segment become roots. Register the
        // local index immediately so a line repeated in one gate's input
        // list is only rooted once.
        for &input in &gate.inputs {
            if !self.driven_here.contains(&input) && !self.local.contains_key(&input) {
                let source = match self.circuit.inputs().iter().position(|&pi| pi == input) {
                    Some(pos) => RootSource::PrimaryInput(pos),
                    None => RootSource::Boundary,
                };
                self.roots.push((input, source));
                self.local_index(input);
            }
        }
        let mut family: Vec<usize> = gate.inputs.iter().map(|&l| self.local_index(l)).collect();
        family.push(self.local_index(gate_line));
        family.sort_unstable();
        family.dedup();
        self.families.push(family);
        self.driven_here.insert(gate_line);
        self.gates.push(gate_line);
    }

    fn estimated_cost(&self, heuristic: Heuristic) -> f64 {
        let n = self.local.len();
        let mut graph = UndirectedGraph::new(n);
        for family in &self.families {
            for (i, &a) in family.iter().enumerate() {
                for &b in &family[i + 1..] {
                    graph.add_edge(a, b);
                }
            }
        }
        estimate_cost(&graph, &vec![self.card; n], heuristic)
    }

    fn finish(self) -> Segment {
        Segment {
            roots: self.roots,
            gates: self.gates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_circuit::catalog;

    #[test]
    fn small_circuit_fits_one_segment() {
        let c17 = catalog::c17();
        let plan = SegmentationPlan::plan(&c17, 4, 1 << 20, 4, Heuristic::MinDegree);
        assert_eq!(plan.segments().len(), 1);
        assert_eq!(plan.boundary_roots(), 0);
        let seg = &plan.segments()[0];
        assert_eq!(seg.gates.len(), 6);
        assert_eq!(seg.roots.len(), 5);
        assert!(seg
            .roots
            .iter()
            .all(|(_, s)| matches!(s, RootSource::PrimaryInput(_))));
    }

    #[test]
    fn tiny_budget_forces_many_segments() {
        let c = catalog::benchmark("count").unwrap();
        let plan = SegmentationPlan::plan(&c, 4, 1 << 10, 2, Heuristic::MinDegree);
        assert!(plan.segments().len() > 2);
        assert!(plan.boundary_roots() > 0);
        // Coverage and order: every gate exactly once, topologically.
        let mut seen = std::collections::HashSet::new();
        let mut done = std::collections::HashSet::new();
        for seg in plan.segments() {
            for (line, source) in &seg.roots {
                match source {
                    RootSource::PrimaryInput(pos) => {
                        assert_eq!(c.inputs()[*pos], *line);
                    }
                    RootSource::Boundary => {
                        assert!(
                            done.contains(line),
                            "boundary root must come from an earlier segment"
                        );
                    }
                }
            }
            for &g in &seg.gates {
                assert!(seen.insert(g), "gate planned twice");
                done.insert(g);
            }
        }
        assert_eq!(seen.len(), c.num_gates());
    }

    fn assert_valid_plan(c: &Circuit, plan: &SegmentationPlan) {
        let mut seen = std::collections::HashSet::new();
        let mut done = std::collections::HashSet::new();
        for seg in plan.segments() {
            for (line, source) in &seg.roots {
                match source {
                    RootSource::PrimaryInput(pos) => assert_eq!(c.inputs()[*pos], *line),
                    RootSource::Boundary => assert!(
                        done.contains(line),
                        "boundary root must come from an earlier segment"
                    ),
                }
            }
            for &g in &seg.gates {
                assert!(seen.insert(g), "gate planned twice");
                done.insert(g);
            }
        }
        assert_eq!(seen.len(), c.num_gates());
    }

    #[test]
    fn balanced_cut_covers_every_gate_topologically() {
        for name in ["count", "pcler8", "c432"] {
            let c = catalog::benchmark(name).unwrap();
            let plan = SegmentationPlan::plan_with(
                &c,
                4,
                1 << 10,
                2,
                Heuristic::MinDegree,
                SegmentationStrategy::BalancedCut,
            );
            assert_valid_plan(&c, &plan);
        }
    }

    #[test]
    fn topo_cover_is_plan_verbatim() {
        let c = catalog::benchmark("count").unwrap();
        let legacy = SegmentationPlan::plan(&c, 4, 1 << 10, 2, Heuristic::MinDegree);
        let explicit = SegmentationPlan::plan_with(
            &c,
            4,
            1 << 10,
            2,
            Heuristic::MinDegree,
            SegmentationStrategy::TopoCover,
        );
        assert_eq!(legacy.segments().len(), explicit.segments().len());
        for (a, b) in legacy.segments().iter().zip(explicit.segments()) {
            assert_eq!(a.gates, b.gates);
            assert_eq!(a.roots, b.roots);
        }
    }

    #[test]
    fn balanced_cut_narrows_boundary_where_search_has_room() {
        // Not a guarantee on every circuit, but where the checkpoint
        // search has room to move a boundary it exists to win: fewer
        // boundary roots than the plain topological cover at the same
        // budget.
        for (name, shift) in [("pcler8", 10), ("count", 14)] {
            let c = catalog::benchmark(name).unwrap();
            let topo = SegmentationPlan::plan(&c, 4, 1 << shift, 2, Heuristic::MinDegree);
            let cut = SegmentationPlan::plan_with(
                &c,
                4,
                1 << shift,
                2,
                Heuristic::MinDegree,
                SegmentationStrategy::BalancedCut,
            );
            assert_valid_plan(&c, &cut);
            assert!(
                cut.boundary_roots() < topo.boundary_roots(),
                "{name}: balanced cut should narrow the boundary: {} vs {}",
                cut.boundary_roots(),
                topo.boundary_roots()
            );
        }
    }

    #[test]
    fn balanced_cut_is_deterministic() {
        let c = catalog::benchmark("c432").unwrap();
        let a = SegmentationPlan::plan_with(
            &c,
            4,
            1 << 10,
            2,
            Heuristic::MinDegree,
            SegmentationStrategy::BalancedCut,
        );
        let b = SegmentationPlan::plan_with(
            &c,
            4,
            1 << 10,
            2,
            Heuristic::MinDegree,
            SegmentationStrategy::BalancedCut,
        );
        assert_eq!(a.segments().len(), b.segments().len());
        for (x, y) in a.segments().iter().zip(b.segments()) {
            assert_eq!(x.gates, y.gates);
            assert_eq!(x.roots, y.roots);
        }
    }

    #[test]
    fn budget_monotonicity() {
        let c = catalog::benchmark("pcler8").unwrap();
        let small = SegmentationPlan::plan(&c, 4, 1 << 10, 2, Heuristic::MinDegree);
        let large = SegmentationPlan::plan(&c, 4, 1 << 22, 2, Heuristic::MinDegree);
        assert!(small.segments().len() >= large.segments().len());
    }

    #[test]
    fn boundary_line_can_root_multiple_segments() {
        // With a small budget on a reconvergent circuit, some line should
        // feed at least two later segments.
        let c = swact_circuit::benchgen::reconvergent("rc", 5, 4, 9);
        let plan = SegmentationPlan::plan(&c, 4, 1 << 9, 1, Heuristic::MinDegree);
        if plan.segments().len() > 2 {
            use std::collections::HashMap;
            let mut counts: HashMap<LineId, usize> = HashMap::new();
            for seg in plan.segments() {
                for (line, src) in &seg.roots {
                    if *src == RootSource::Boundary {
                        *counts.entry(*line).or_default() += 1;
                    }
                }
            }
            // Not guaranteed in every topology, but counts must be sane.
            assert!(counts.values().all(|&c| c >= 1));
        }
    }
}
