//! Dynamic power from switching activity — the application the paper's
//! estimates feed into.
//!
//! Average dynamic power of CMOS logic is
//! `P = ½ · V²dd · f · Σᵢ Cᵢ · swᵢ` over all lines *i*, where `swᵢ` is the
//! per-cycle switching activity estimated by this crate and `Cᵢ` the
//! capacitive load of line *i*. Absent extracted parasitics, the load is
//! modeled structurally as `C = C_base + C_fanout · fanout(i)`.

use swact_circuit::{Circuit, LineId};

use crate::Estimate;

/// Electrical parameters for the power computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Clock frequency in hertz.
    pub frequency: f64,
    /// Fixed capacitance per line, in farads (gate output + wire stub).
    pub base_capacitance: f64,
    /// Additional capacitance per fan-out connection, in farads.
    pub fanout_capacitance: f64,
}

impl Default for PowerModel {
    /// A representative late-1990s process: 3.3 V, 100 MHz, 20 fF base +
    /// 10 fF per fan-out.
    fn default() -> PowerModel {
        PowerModel {
            vdd: 3.3,
            frequency: 100e6,
            base_capacitance: 20e-15,
            fanout_capacitance: 10e-15,
        }
    }
}

/// Per-circuit power breakdown.
#[derive(Debug, Clone)]
pub struct PowerReport {
    /// Total average dynamic power, in watts.
    pub total_watts: f64,
    /// Per-line power, indexed by `LineId::index`.
    pub per_line_watts: Vec<f64>,
}

impl PowerReport {
    /// The most power-hungry lines, descending, as `(line, watts)`.
    pub fn hottest(&self, count: usize) -> Vec<(LineId, f64)> {
        let mut ranked: Vec<(LineId, f64)> = self
            .per_line_watts
            .iter()
            .enumerate()
            .map(|(i, &w)| (LineId::from_index(i), w))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite power"));
        ranked.truncate(count);
        ranked
    }
}

impl PowerModel {
    /// Computes the power report for a circuit from an [`Estimate`].
    ///
    /// # Example
    ///
    /// ```
    /// use swact::{estimate, InputSpec, Options, PowerModel};
    /// use swact_circuit::catalog;
    ///
    /// # fn main() -> Result<(), swact::EstimateError> {
    /// let c17 = catalog::c17();
    /// let est = estimate(&c17, &InputSpec::uniform(5), &Options::default())?;
    /// let report = PowerModel::default().power(&c17, &est);
    /// assert!(report.total_watts > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn power(&self, circuit: &Circuit, estimate: &Estimate) -> PowerReport {
        let fanout = circuit.fanout_counts();
        let capacitances: Vec<f64> = circuit
            .line_ids()
            .map(|line| {
                self.base_capacitance + self.fanout_capacitance * fanout[line.index()] as f64
            })
            .collect();
        self.power_with_capacitances(circuit, estimate, &capacitances)
    }

    /// Computes the power report with explicit per-line capacitances (e.g.
    /// from layout extraction), in farads, indexed by `LineId::index`.
    ///
    /// # Panics
    ///
    /// Panics if `capacitances.len()` differs from the circuit's line
    /// count.
    pub fn power_with_capacitances(
        &self,
        circuit: &Circuit,
        estimate: &Estimate,
        capacitances: &[f64],
    ) -> PowerReport {
        assert_eq!(
            capacitances.len(),
            circuit.num_lines(),
            "one capacitance per line"
        );
        let factor = 0.5 * self.vdd * self.vdd * self.frequency;
        let per_line_watts: Vec<f64> = circuit
            .line_ids()
            .map(|line| factor * capacitances[line.index()] * estimate.switching(line))
            .collect();
        PowerReport {
            total_watts: per_line_watts.iter().sum(),
            per_line_watts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{estimate, InputModel, InputSpec, Options};
    use swact_circuit::catalog;

    #[test]
    fn power_scales_with_activity() {
        let c17 = catalog::c17();
        let model = PowerModel::default();
        let active = estimate(&c17, &InputSpec::uniform(5), &Options::default()).unwrap();
        let quiet_spec = InputSpec::from_models(vec![InputModel::new(0.5, 0.05).unwrap(); 5]);
        let quiet = estimate(&c17, &quiet_spec, &Options::default()).unwrap();
        let p_active = model.power(&c17, &active);
        let p_quiet = model.power(&c17, &quiet);
        assert!(p_active.total_watts > p_quiet.total_watts);
    }

    #[test]
    fn zero_activity_means_zero_power() {
        let c17 = catalog::c17();
        let frozen = InputSpec::from_models(vec![InputModel::new(0.5, 0.0).unwrap(); 5]);
        let est = estimate(&c17, &frozen, &Options::default()).unwrap();
        let report = PowerModel::default().power(&c17, &est);
        assert!(report.total_watts.abs() < 1e-20);
    }

    #[test]
    fn power_scales_with_voltage_squared() {
        let c17 = catalog::c17();
        let est = estimate(&c17, &InputSpec::uniform(5), &Options::default()).unwrap();
        let low = PowerModel {
            vdd: 1.0,
            ..PowerModel::default()
        }
        .power(&c17, &est);
        let high = PowerModel {
            vdd: 2.0,
            ..PowerModel::default()
        }
        .power(&c17, &est);
        assert!((high.total_watts / low.total_watts - 4.0).abs() < 1e-9);
    }

    #[test]
    fn explicit_capacitances_override_structural_model() {
        let c17 = catalog::c17();
        let est = estimate(&c17, &InputSpec::uniform(5), &Options::default()).unwrap();
        let model = PowerModel::default();
        // Zero capacitance everywhere except one line: only it consumes.
        let mut caps = vec![0.0; c17.num_lines()];
        let target = c17.outputs()[0];
        caps[target.index()] = 10e-15;
        let report = model.power_with_capacitances(&c17, &est, &caps);
        assert!(report.total_watts > 0.0);
        assert_eq!(report.hottest(1)[0].0, target);
        let nonzero = report.per_line_watts.iter().filter(|&&w| w > 0.0).count();
        assert_eq!(nonzero, 1);
    }

    #[test]
    fn hottest_is_sorted_and_truncated() {
        let c17 = catalog::c17();
        let est = estimate(&c17, &InputSpec::uniform(5), &Options::default()).unwrap();
        let report = PowerModel::default().power(&c17, &est);
        let top = report.hottest(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }
}
