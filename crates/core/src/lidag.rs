//! LIDAG construction — the paper's Definition 8 and Theorem 3.
//!
//! The Logic-Induced Directed Acyclic Graph has one four-state random
//! variable per signal line; the parents of a gate-output variable are the
//! variables of that gate's input lines. Because each variable's Markov
//! boundary under a topological ordering is exactly its gate's inputs, the
//! LIDAG is a *boundary DAG* and hence (Pearl, Theorem 2) a minimal I-map
//! of the switching distribution: a Bayesian network capturing every
//! spatial and spatio-temporal dependency exactly.

use swact_bayesnet::{BayesNet, Cpt, VarId};
use swact_circuit::{decompose::decompose_fanin, Circuit, Driver, GateKind, LineId};

use crate::{EstimateError, InputSpec, Transition};

/// The deterministic CPT of a gate's transition variable given its inputs'
/// transition variables: with input states fixed, the output transition is
/// `(f(prev inputs), f(next inputs))` with probability one. Rows enumerate
/// parent states in gate-input order (last input fastest), matching
/// [`BayesNet::add_var`].
///
/// # Example
///
/// ```
/// use swact::gate_cpt;
/// use swact_circuit::GateKind;
///
/// let cpt = gate_cpt(GateKind::Or, 2);
/// assert_eq!(cpt.num_rows(), 16);
/// // Paper §4: P(X5=x01 | X1=x01, X2=x00) = 1 for an OR gate.
/// // Row index: x01 = 1, x00 = 0 → row 1·4 + 0 = 4; state x01 has index 1.
/// assert_eq!(cpt.as_rows()[4][1], 1.0);
/// ```
pub fn gate_cpt(kind: GateKind, fanin: usize) -> Cpt {
    let rows = 4usize.pow(fanin as u32);
    Cpt::deterministic(rows, 4, |row| {
        let mut states = [0usize; 16];
        debug_assert!(fanin <= 16, "fan-in bounded by decomposition");
        let mut rem = row;
        for i in (0..fanin).rev() {
            states[i] = rem % 4;
            rem /= 4;
        }
        let prev = kind.eval(
            states[..fanin]
                .iter()
                .map(|&s| Transition::from_index(s).prev()),
        );
        let next = kind.eval(
            states[..fanin]
                .iter()
                .map(|&s| Transition::from_index(s).next()),
        );
        Transition::from_values(prev, next).index()
    })
}

/// The Bayesian-network family of a gate whose input list may repeat
/// lines: the *distinct* input lines (in first-occurrence order) and the
/// CPT over them, with repeated connections evaluated consistently (e.g.
/// `XOR(a, a)` is the constant-0 family over parent `a`).
///
/// [`gate_cpt`] is the common special case of distinct inputs.
pub fn gate_family(kind: GateKind, inputs: &[LineId]) -> (Vec<LineId>, Cpt) {
    let mut unique: Vec<LineId> = Vec::new();
    let slot_of: Vec<usize> = inputs
        .iter()
        .map(|&line| match unique.iter().position(|&u| u == line) {
            Some(pos) => pos,
            None => {
                unique.push(line);
                unique.len() - 1
            }
        })
        .collect();
    if unique.len() == inputs.len() {
        return (unique, gate_cpt(kind, inputs.len()));
    }
    let k = unique.len();
    let rows = 4usize.pow(k as u32);
    let cpt = Cpt::deterministic(rows, 4, |row| {
        let mut states = vec![0usize; k];
        let mut rem = row;
        for i in (0..k).rev() {
            states[i] = rem % 4;
            rem /= 4;
        }
        let prev = kind.eval(
            slot_of
                .iter()
                .map(|&s| Transition::from_index(states[s]).prev()),
        );
        let next = kind.eval(
            slot_of
                .iter()
                .map(|&s| Transition::from_index(states[s]).next()),
        );
        Transition::from_values(prev, next).index()
    });
    (unique, cpt)
}

/// A circuit's LIDAG as a single Bayesian network.
///
/// Construction decomposes gates wider than `max_fanin` into trees of
/// two-input gates first (bounding clique sizes), so the network is over a
/// *working circuit* that may contain a few helper lines; original lines
/// are found by name.
///
/// For large circuits prefer the segmented estimator
/// ([`estimate`](crate::estimate)), which builds many small LIDAGs; the
/// single-network form here is what the theory section reasons about and
/// is used directly for exact estimates on compact circuits.
///
/// # Example
///
/// ```
/// use swact::{InputSpec, Lidag};
/// use swact_circuit::catalog;
///
/// # fn main() -> Result<(), swact::EstimateError> {
/// let circuit = catalog::paper_example();
/// let lidag = Lidag::build(&circuit, &InputSpec::uniform(4), 4)?;
/// // Nine lines ⇒ nine four-state variables (Figure 2).
/// assert_eq!(lidag.net().num_vars(), 9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lidag {
    working: Circuit,
    net: BayesNet,
    var_of: Vec<VarId>,
}

impl Lidag {
    /// Builds the LIDAG-BN of `circuit` with PI priors from `spec`,
    /// decomposing gates wider than `max_fanin` first.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::InputCountMismatch`] if the spec does not
    /// cover the circuit's inputs, or wrapped circuit/BN errors.
    pub fn build(
        circuit: &Circuit,
        spec: &InputSpec,
        max_fanin: usize,
    ) -> Result<Lidag, EstimateError> {
        if spec.len() != circuit.num_inputs() {
            return Err(EstimateError::InputCountMismatch {
                circuit: circuit.num_inputs(),
                spec: spec.len(),
            });
        }
        let working = decompose_fanin(circuit, max_fanin.max(2))?;
        let mut net = BayesNet::new();
        let mut var_of = vec![VarId::from_index(0); working.num_lines()];
        for line in working.topo_order() {
            let name = working.line_name(line).to_string();
            let var = match working.driver(line) {
                Driver::Input => {
                    let pi_pos = working
                        .inputs()
                        .iter()
                        .position(|&l| l == line)
                        .expect("input line is in the input list");
                    net.add_var(name, 4, &[], Cpt::prior(spec.prior_row(pi_pos)))?
                }
                Driver::Gate(g) => {
                    let (unique_inputs, cpt) = gate_family(g.kind, &g.inputs);
                    let parents: Vec<VarId> =
                        unique_inputs.iter().map(|&l| var_of[l.index()]).collect();
                    net.add_var(name, 4, &parents, cpt)?
                }
            };
            var_of[line.index()] = var;
        }
        Ok(Lidag {
            working,
            net,
            var_of,
        })
    }

    /// The Bayesian network.
    pub fn net(&self) -> &BayesNet {
        &self.net
    }

    /// The working (possibly fan-in-decomposed) circuit the network is
    /// built over.
    pub fn working_circuit(&self) -> &Circuit {
        &self.working
    }

    /// The network variable of a working-circuit line.
    pub fn var(&self, line: LineId) -> VarId {
        self.var_of[line.index()]
    }

    /// The network variable of a line looked up by name (works for both
    /// original and helper lines).
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.working.find_line(name).map(|l| self.var(l))
    }

    /// Replaces the primary-input priors (paper §6: re-estimation under new
    /// input statistics).
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::InputCountMismatch`] for a wrong-size spec.
    pub fn set_input_spec(&mut self, spec: &InputSpec) -> Result<(), EstimateError> {
        if spec.len() != self.working.num_inputs() {
            return Err(EstimateError::InputCountMismatch {
                circuit: self.working.num_inputs(),
                spec: spec.len(),
            });
        }
        for (i, &line) in self.working.inputs().iter().enumerate() {
            self.net
                .set_cpt(self.var(line), Cpt::prior(spec.prior_row(i)))?;
        }
        Ok(())
    }

    /// The jointly most probable transition pattern of the whole circuit
    /// under the current input priors (max-product MPE over the LIDAG),
    /// with its probability. Indexed by working-circuit line.
    ///
    /// Useful for worst-case-vector reasoning: the returned pattern is the
    /// single most likely (prev, next) behaviour of every line in one
    /// clock cycle.
    ///
    /// # Errors
    ///
    /// Returns wrapped BN errors if compilation fails (e.g. the circuit is
    /// too large for a single junction tree — this is a whole-circuit
    /// query, so segmentation does not apply).
    pub fn most_probable_transitions(&self) -> Result<(Vec<Transition>, f64), EstimateError> {
        let tree = swact_bayesnet::JunctionTree::compile(&self.net)?;
        let mut prop = swact_bayesnet::Propagator::new(&tree, &self.net)?;
        prop.max_calibrate();
        let (assignment, probability) = prop.most_probable_assignment();
        let transitions = self
            .working
            .line_ids()
            .map(|line| Transition::from_index(assignment[self.var(line).index()]))
            .collect();
        Ok((transitions, probability))
    }

    /// Renders the LIDAG as a Graphviz `digraph` (Figure 2 of the paper for
    /// the example circuit).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph lidag {{");
        for line in self.working.line_ids() {
            let _ = writeln!(
                out,
                "  v{} [label=\"X{}\"];",
                line.index(),
                self.working.line_name(line)
            );
        }
        for line in self.working.line_ids() {
            if let Some(g) = self.working.gate(line) {
                for &input in &g.inputs {
                    let _ = writeln!(out, "  v{} -> v{};", input.index(), line.index());
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_bayesnet::dsep::{d_separated, independent_in_joint, markov_blanket};
    use swact_circuit::catalog;

    #[test]
    fn gate_cpt_rows_are_deterministic() {
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            let cpt = gate_cpt(kind, 2);
            for row in cpt.as_rows() {
                assert_eq!(row.iter().filter(|&&p| p == 1.0).count(), 1);
                assert_eq!(row.iter().sum::<f64>(), 1.0);
            }
        }
        // NOT gate: x01 input → x10 output.
        let inv = gate_cpt(GateKind::Not, 1);
        assert_eq!(
            inv.as_rows()[Transition::Rise.index()][Transition::Fall.index()],
            1.0
        );
    }

    #[test]
    fn paper_or_gate_example() {
        // §4: if one OR input rises and the other stays 0, the output rises.
        let cpt = gate_cpt(GateKind::Or, 2);
        let row = Transition::Rise.index() * 4 + Transition::Stable0.index();
        assert_eq!(cpt.as_rows()[row][Transition::Rise.index()], 1.0);
    }

    #[test]
    fn lidag_matches_eq7_factorization() {
        let circuit = catalog::paper_example();
        let lidag = Lidag::build(&circuit, &InputSpec::uniform(4), 4).unwrap();
        let net = lidag.net();
        // Eq. 7 parent sets.
        let parents_of = |name: &str| -> Vec<String> {
            let v = lidag.var_by_name(name).unwrap();
            net.parents(v)
                .iter()
                .map(|&p| net.name(p).to_string())
                .collect()
        };
        assert_eq!(parents_of("5"), ["1", "2"]);
        assert_eq!(parents_of("6"), ["3", "4"]);
        assert_eq!(parents_of("7"), ["5", "6"]);
        assert_eq!(parents_of("8"), ["4"]);
        assert_eq!(parents_of("9"), ["7", "8"]);
        for name in ["1", "2", "3", "4"] {
            assert!(parents_of(name).is_empty());
        }
    }

    #[test]
    fn lidag_displays_paper_independencies() {
        // §4: X1 ⫫ X2 marginally, but conditionally *dependent* given X9;
        // X5 ⫫ everything else given X1, X2.
        let circuit = catalog::paper_example();
        let lidag = Lidag::build(&circuit, &InputSpec::uniform(4), 4).unwrap();
        let v = |n: &str| lidag.var_by_name(n).unwrap();
        let net = lidag.net();
        assert!(d_separated(net, &[v("1")], &[v("2")], &[]));
        assert!(!d_separated(net, &[v("1")], &[v("2")], &[v("9")]));
        // Transitions of line 5 are conditionally independent of all other
        // lines' transitions given lines 1 and 2 — except its descendants.
        assert!(d_separated(
            net,
            &[v("5")],
            &[v("3"), v("4"), v("6"), v("8")],
            &[v("1"), v("2")]
        ));
    }

    #[test]
    fn lidag_is_an_i_map_numerically() {
        // Verify Theorem 3 on the example circuit: sampled d-separations
        // hold in the actual joint distribution.
        let circuit = catalog::paper_example();
        let spec = InputSpec::independent([0.3, 0.6, 0.5, 0.8]);
        let lidag = Lidag::build(&circuit, &spec, 4).unwrap();
        let net = lidag.net();
        let v = |n: &str| lidag.var_by_name(n).unwrap();
        let triples: Vec<(Vec<_>, Vec<_>, Vec<_>)> = vec![
            (vec![v("1")], vec![v("2")], vec![]),
            (vec![v("5")], vec![v("6")], vec![]),
            (vec![v("5")], vec![v("3")], vec![]),
            (vec![v("9")], vec![v("1")], vec![v("7"), v("8")]),
            (vec![v("7")], vec![v("8")], vec![v("5"), v("6"), v("4")]),
        ];
        for (x, y, z) in triples {
            if d_separated(net, &x, &y, &z) {
                assert!(
                    independent_in_joint(net, &x, &y, &z, 1e-9),
                    "d-separation not matched by independence for {x:?} {y:?} {z:?}"
                );
            }
        }
    }

    #[test]
    fn markov_boundary_is_gate_family() {
        // Theorem 3's proof: the Markov boundary of a leaf output variable
        // is its gate's inputs.
        let circuit = catalog::paper_example();
        let lidag = Lidag::build(&circuit, &InputSpec::uniform(4), 4).unwrap();
        let v = |n: &str| lidag.var_by_name(n).unwrap();
        let mut expected = vec![v("7"), v("8")];
        expected.sort_unstable();
        assert_eq!(markov_blanket(lidag.net(), v("9")), expected);
    }

    #[test]
    fn wide_gates_are_decomposed() {
        use swact_circuit::CircuitBuilder;
        let mut b = CircuitBuilder::new("wide");
        for n in ["a", "b", "c", "d", "e", "f"] {
            b.input(n).unwrap();
        }
        b.gate("y", GateKind::And, &["a", "b", "c", "d", "e", "f"])
            .unwrap();
        b.output("y").unwrap();
        let circuit = b.finish().unwrap();
        let lidag = Lidag::build(&circuit, &InputSpec::uniform(6), 2).unwrap();
        assert!(lidag.net().num_vars() > circuit.num_lines());
        assert!(lidag.working_circuit().stats().max_fanin <= 2);
        // The original output survives by name.
        assert!(lidag.var_by_name("y").is_some());
    }

    #[test]
    fn input_spec_mismatch_rejected() {
        let circuit = catalog::c17();
        assert!(matches!(
            Lidag::build(&circuit, &InputSpec::uniform(3), 4),
            Err(EstimateError::InputCountMismatch {
                circuit: 5,
                spec: 3
            })
        ));
    }

    #[test]
    fn set_input_spec_updates_priors() {
        let circuit = catalog::c17();
        let mut lidag = Lidag::build(&circuit, &InputSpec::uniform(5), 4).unwrap();
        let spec = InputSpec::independent([0.9, 0.9, 0.9, 0.9, 0.9]);
        lidag.set_input_spec(&spec).unwrap();
        let pi0 = lidag.var(lidag.working_circuit().inputs()[0]);
        let prior = lidag.net().cpt_factor(pi0);
        assert!((prior.values()[3] - 0.81).abs() < 1e-12);
        assert!(lidag.set_input_spec(&InputSpec::uniform(2)).is_err());
    }

    #[test]
    fn most_probable_transitions_match_brute_force() {
        // With biased inputs the MPE is the argmax over all weighted
        // (prev, next) input vectors; internal lines follow
        // deterministically.
        let circuit = catalog::c17();
        let spec = InputSpec::independent([0.9, 0.1, 0.8, 0.2, 0.7]);
        let lidag = Lidag::build(&circuit, &spec, 4).unwrap();
        let (pattern, p) = lidag.most_probable_transitions().unwrap();
        // Brute force over 4^5 input transition assignments.
        let mut best = (0usize, f64::NEG_INFINITY);
        for assignment in 0..4usize.pow(5) {
            let mut weight = 1.0;
            let mut rem = assignment;
            for i in 0..5 {
                let t = Transition::from_index(rem % 4);
                rem /= 4;
                weight *= spec.model(i).to_distribution().p(t);
            }
            if weight > best.1 {
                best = (assignment, weight);
            }
        }
        assert!(
            (p - best.1).abs() < 1e-12,
            "probability {} vs {}",
            p,
            best.1
        );
        // Decode the winning input pattern and check the inputs match
        // (the internal lines are implied).
        let mut rem = best.0;
        for (i, &pi) in lidag.working_circuit().inputs().iter().enumerate() {
            let want = Transition::from_index(rem % 4);
            rem /= 4;
            assert_eq!(pattern[pi.index()], want, "input {i}");
        }
        // And the pattern is logically consistent on every gate.
        for line in lidag.working_circuit().gate_lines() {
            let g = lidag.working_circuit().gate(line).unwrap();
            let prev = g
                .kind
                .eval(g.inputs.iter().map(|&l| pattern[l.index()].prev()));
            let next = g
                .kind
                .eval(g.inputs.iter().map(|&l| pattern[l.index()].next()));
            assert_eq!(pattern[line.index()], Transition::from_values(prev, next));
        }
    }

    #[test]
    fn dot_export_has_all_nodes_and_edges() {
        let circuit = catalog::paper_example();
        let lidag = Lidag::build(&circuit, &InputSpec::uniform(4), 4).unwrap();
        let dot = lidag.to_dot();
        assert_eq!(dot.matches("label=\"X").count(), 9);
        assert_eq!(dot.matches(" -> ").count(), 9); // Figure 2 has 9 arcs
    }
}
