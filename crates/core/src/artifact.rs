//! Versioned, integrity-checked on-disk persistence of compiled models.
//!
//! Compiling a circuit (§3 of the paper's pipeline: segmentation,
//! moralization, triangulation, junction-tree construction, potential
//! initialization) dominates end-to-end latency for repeated estimation,
//! and the engine's in-memory LRU only amortizes it *within* a process.
//! This module gives compiled models a durable form so a fresh process can
//! warm-start: `compile → persist` once, `load → propagate` everywhere,
//! with bit-identical estimates (every `f64` travels as its exact bit
//! pattern via [`swact_bayesnet::codec`]).
//!
//! # File layout
//!
//! All integers little-endian, strings length-prefixed:
//!
//! ```text
//! magic            8 bytes   b"SWACTBN1"
//! format_version   u32       bumped on any encoding change
//! model_key        u128      FNV-1a-128 of circuit + options + spec shape
//! workspace        string    crate version that wrote the artifact
//! payload_len      u64
//! payload_checksum u128      FNV-1a-128 over the payload bytes
//! payload          bytes     [`pipeline::persist`] pipeline encoding
//! ```
//!
//! # Invalidation
//!
//! An artifact is rejected — never panicking, always leaving the caller to
//! fall through to a clean compile — when any of these fail, checked in
//! order: magic ([`ArtifactError::BadMagic`]), format version
//! ([`ArtifactError::UnsupportedVersion`]), writing crate version
//! ([`ArtifactError::WorkspaceMismatch`] — compiled numerics may legally
//! change between releases), model key ([`ArtifactError::ForeignKey`]),
//! payload checksum ([`ArtifactError::ChecksumMismatch`]), and finally
//! structural validation of the payload itself
//! ([`ArtifactError::Corrupt`]).
//!
//! The [`model_key`] binds an artifact to *what was compiled*: the working
//! circuit's structure, the full [`Options`], and the correlation shape of
//! the [`InputSpec`] (group membership and pairwise-joint wiring — the
//! parts [`CompiledEstimator::compile_for`] bakes into the trees). Input
//! probabilities are deliberately excluded: they are propagate-time data,
//! so one artifact serves every sweep point.
//!
//! Writes are atomic (unique temp file in the target directory, then
//! `rename`), so concurrent processes sharing a cache directory never
//! observe a torn artifact.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use swact_bayesnet::codec::{CodecError, Reader, Writer};
use swact_circuit::Circuit;

use crate::estimator::Options;
use crate::pipeline::persist;
use crate::{CompiledEstimator, InputSpec};

/// Leading bytes of every artifact file.
pub const MAGIC: [u8; 8] = *b"SWACTBN1";

/// Version of the on-disk encoding. Any change to the payload layout (or
/// the header after the version field) must bump this; readers reject
/// every other version. Version 2 added the structure-strategy tags to
/// the options codec and the `force_ordered` flag to segment stats;
/// version 3 added the sampling backend (seed/CI options, sampling
/// segment artifacts, and the `Fallback::Sampling` degradation tag);
/// version 4 added the propagation-kernel tag to the options codec and
/// blocked stride tables to the compiled-tree kernels.
pub const FORMAT_VERSION: u32 = 4;

/// Extension used by [`artifact_file_name`].
pub const ARTIFACT_EXTENSION: &str = "swact";

/// Why an artifact could not be written or trusted.
///
/// Every variant except [`ArtifactError::Io`] means "this file is not a
/// usable artifact for this request" — callers fall back to compiling.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// Filesystem failure while reading or writing.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] (or is shorter than it).
    BadMagic,
    /// The file's format version differs from [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The artifact was written by a different crate version. Compiled
    /// numerics may legally change between releases, so cross-version
    /// artifacts are rejected rather than risk silently different
    /// estimates.
    WorkspaceMismatch {
        /// Version recorded in the artifact.
        artifact: String,
        /// This crate's version.
        current: String,
    },
    /// The artifact's model key does not match the requested one — it was
    /// compiled from a different circuit, options, or correlation shape.
    ForeignKey {
        /// Key the caller asked for.
        expected: u128,
        /// Key recorded in the artifact.
        found: u128,
    },
    /// The payload bytes do not hash to the recorded checksum.
    ChecksumMismatch,
    /// The checksum matched but the payload failed structural validation
    /// (should not happen for files this crate wrote).
    Corrupt(CodecError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o: {e}"),
            ArtifactError::BadMagic => write!(f, "not a swact artifact (bad magic)"),
            ArtifactError::UnsupportedVersion { found } => write!(
                f,
                "unsupported artifact format version {found} (expected {FORMAT_VERSION})"
            ),
            ArtifactError::WorkspaceMismatch { artifact, current } => {
                write!(f, "artifact written by swact {artifact}, this is {current}")
            }
            ArtifactError::ForeignKey { expected, found } => write!(
                f,
                "artifact model key {found:032x} does not match expected {expected:032x}"
            ),
            ArtifactError::ChecksumMismatch => write!(f, "artifact payload checksum mismatch"),
            ArtifactError::Corrupt(e) => write!(f, "artifact payload corrupt: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> ArtifactError {
        ArtifactError::Io(e)
    }
}

impl From<CodecError> for ArtifactError {
    fn from(e: CodecError) -> ArtifactError {
        ArtifactError::Corrupt(e)
    }
}

/// The parsed fixed part of an artifact file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactHeader {
    /// Encoding version ([`FORMAT_VERSION`] for files this build reads).
    pub format_version: u32,
    /// Key binding the artifact to circuit + options + correlation shape.
    pub model_key: u128,
    /// Crate version that wrote the artifact.
    pub workspace_version: String,
    /// Payload size in bytes.
    pub payload_len: u64,
    /// FNV-1a-128 checksum of the payload.
    pub checksum: u128,
}

/// FNV-1a-128 over a byte slice — the same function the junction-tree
/// message cache uses for evidence signatures, here over whole payloads.
fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &byte in bytes {
        h ^= u128::from(byte);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Stable 128-bit identity of a compiled model: circuit structure, the
/// full [`Options`], and the correlation *shape* of the spec (group
/// membership and pairwise wiring) — exactly the inputs that determine
/// the compiled artifact. Input probabilities do not participate, so one
/// key covers every propagation over the same compiled structure.
///
/// The key is a pure function of its arguments — stable across processes,
/// machines, and hash-seed randomization (unlike `DefaultHasher`).
pub fn model_key(circuit: &Circuit, spec: Option<&InputSpec>, options: &Options) -> u128 {
    let mut w = Writer::new();
    persist::write_circuit(&mut w, circuit);
    persist::write_options(&mut w, options);
    match spec {
        None => w.u8(0),
        Some(spec) => {
            w.u8(1);
            w.usize(spec.groups().len());
            for group in spec.groups() {
                w.usize(group.members.len());
                for &member in &group.members {
                    w.usize(member);
                }
            }
            w.usize(spec.pairwise_joints().len());
            for pair in spec.pairwise_joints() {
                w.usize(pair.a);
                w.usize(pair.b);
            }
        }
    }
    fnv128(&w.into_bytes())
}

/// Canonical file name of an artifact: the model key in hex plus
/// [`ARTIFACT_EXTENSION`].
pub fn artifact_file_name(key: u128) -> String {
    format!("{key:032x}.{ARTIFACT_EXTENSION}")
}

/// Parses a file name produced by [`artifact_file_name`] back to its key.
pub fn parse_artifact_file_name(name: &str) -> Option<u128> {
    let stem = name.strip_suffix(&format!(".{ARTIFACT_EXTENSION}"))?;
    if stem.len() != 32 {
        return None;
    }
    u128::from_str_radix(stem, 16).ok()
}

fn encode_with(key: u128, workspace_version: &str, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u128(key);
    w.str(workspace_version);
    w.u64(payload.len() as u64);
    w.u128(fnv128(payload));
    w.raw(payload);
    w.into_bytes()
}

/// Serializes a compiled estimator into artifact bytes under `key`.
pub fn encode_artifact(key: u128, estimator: &CompiledEstimator) -> Vec<u8> {
    encode_with(
        key,
        env!("CARGO_PKG_VERSION"),
        &persist::encode_pipeline(estimator.pipeline()),
    )
}

fn read_header_fields(r: &mut Reader<'_>) -> Result<ArtifactHeader, ArtifactError> {
    let magic = r.raw(MAGIC.len()).map_err(|_| ArtifactError::BadMagic)?;
    if magic != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let format_version = r.u32()?;
    if format_version != FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            found: format_version,
        });
    }
    let model_key = r.u128()?;
    let workspace_version = r.str()?;
    let payload_len = r.u64()?;
    let checksum = r.u128()?;
    Ok(ArtifactHeader {
        format_version,
        model_key,
        workspace_version,
        payload_len,
        checksum,
    })
}

/// Parses and validates the header of artifact bytes without touching the
/// payload (beyond checking the recorded length fits the file).
pub fn decode_header(bytes: &[u8]) -> Result<ArtifactHeader, ArtifactError> {
    let mut r = Reader::new(bytes);
    let header = read_header_fields(&mut r)?;
    if (r.remaining() as u64) < header.payload_len {
        return Err(ArtifactError::Corrupt(CodecError::Truncated));
    }
    Ok(header)
}

/// Decodes artifact bytes into a compiled estimator, enforcing every
/// invalidation rule in the module docs. When `expected_key` is given the
/// artifact must have been compiled for exactly that model.
pub fn decode_artifact(
    bytes: &[u8],
    expected_key: Option<u128>,
) -> Result<(ArtifactHeader, CompiledEstimator), ArtifactError> {
    let mut r = Reader::new(bytes);
    let header = read_header_fields(&mut r)?;
    let current = env!("CARGO_PKG_VERSION");
    if header.workspace_version != current {
        return Err(ArtifactError::WorkspaceMismatch {
            artifact: header.workspace_version.clone(),
            current: current.to_string(),
        });
    }
    if let Some(expected) = expected_key {
        if header.model_key != expected {
            return Err(ArtifactError::ForeignKey {
                expected,
                found: header.model_key,
            });
        }
    }
    let payload_len = usize::try_from(header.payload_len)
        .map_err(|_| ArtifactError::Corrupt(CodecError::Truncated))?;
    let payload = r.raw(payload_len)?;
    if fnv128(payload) != header.checksum {
        return Err(ArtifactError::ChecksumMismatch);
    }
    r.finish()?;
    let pipeline = persist::decode_pipeline(payload)?;
    Ok((header, CompiledEstimator::from_pipeline(pipeline)))
}

/// Reads and validates only the header of an artifact file.
pub fn read_header(path: &Path) -> Result<ArtifactHeader, ArtifactError> {
    decode_header(&fs::read(path)?)
}

/// Loads a compiled estimator from an artifact file. See
/// [`decode_artifact`] for the validation performed.
pub fn read_artifact(
    path: &Path,
    expected_key: Option<u128>,
) -> Result<(ArtifactHeader, CompiledEstimator), ArtifactError> {
    decode_artifact(&fs::read(path)?, expected_key)
}

/// Fully validates an artifact file — header, checksum, and structural
/// payload decode — without keeping the estimator.
pub fn verify_artifact(path: &Path) -> Result<ArtifactHeader, ArtifactError> {
    read_artifact(path, None).map(|(header, _)| header)
}

/// Persists a compiled estimator under `dir`, named by
/// [`artifact_file_name`]. The write is atomic: bytes go to a unique temp
/// file in `dir` first and are `rename`d into place, so a concurrent
/// reader sees either the old artifact or the complete new one, never a
/// torn file. Returns the final path.
pub fn write_artifact(
    dir: &Path,
    key: u128,
    estimator: &CompiledEstimator,
) -> Result<PathBuf, ArtifactError> {
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    fs::create_dir_all(dir)?;
    let final_path = dir.join(artifact_file_name(key));
    let temp_path = dir.join(format!(
        ".tmp-{}-{}-{key:032x}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let bytes = encode_artifact(key, estimator);
    let result = (|| {
        let mut file = fs::File::create(&temp_path)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        fs::rename(&temp_path, &final_path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&temp_path);
    }
    result?;
    Ok(final_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, InputGroup, InputModel, StructureStrategy};
    use swact_circuit::catalog;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swact-artifact-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn compiled_c17() -> CompiledEstimator {
        CompiledEstimator::compile(&catalog::c17(), &Options::default()).expect("compiles")
    }

    #[test]
    fn file_name_round_trips_the_key() {
        let key = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        let name = artifact_file_name(key);
        assert_eq!(parse_artifact_file_name(&name), Some(key));
        assert_eq!(parse_artifact_file_name("nope.swact"), None);
        assert_eq!(parse_artifact_file_name("0.swact"), None);
        assert_eq!(parse_artifact_file_name(&name[..10]), None);
    }

    #[test]
    fn model_key_is_stable_and_sensitive() {
        let c17 = catalog::c17();
        let options = Options::default();
        let key = model_key(&c17, None, &options);
        assert_eq!(key, model_key(&c17, None, &options), "must be pure");
        let other_backend = Options {
            backend: Backend::Bdd,
            ..options
        };
        assert_ne!(key, model_key(&c17, None, &other_backend));
        assert_ne!(key, model_key(&catalog::paper_example(), None, &options));
        // Correlation shape participates; probabilities do not.
        let grouped = |copy_prob| {
            InputSpec::uniform(5).with_groups(vec![InputGroup {
                members: vec![0, 1],
                latent: InputModel::independent(0.5),
                copy_prob,
            }])
        };
        let a = grouped(0.3);
        let b = grouped(0.9);
        assert_ne!(key, model_key(&c17, Some(&a), &options));
        assert_eq!(
            model_key(&c17, Some(&a), &options),
            model_key(&c17, Some(&b), &options),
            "group probabilities are propagate-time data"
        );
        // The structure strategy shapes the compiled artifact, so it is
        // identity: orderings must never mix.
        assert_ne!(
            key,
            model_key(
                &c17,
                None,
                &Options::with_strategy(StructureStrategy::force())
            )
        );
        assert_ne!(
            key,
            model_key(
                &c17,
                None,
                &Options::with_strategy(StructureStrategy::balanced_cut())
            )
        );
    }

    #[test]
    fn disk_round_trip_is_bit_identical() {
        let dir = temp_dir("roundtrip");
        let c17 = catalog::c17();
        let compiled = compiled_c17();
        let key = model_key(&c17, None, compiled.options());
        let path = write_artifact(&dir, key, &compiled).expect("writes");
        assert_eq!(
            path.file_name().unwrap().to_str(),
            Some(artifact_file_name(key).as_str())
        );
        let (header, loaded) = read_artifact(&path, Some(key)).expect("loads");
        assert_eq!(header.model_key, key);
        assert_eq!(header.workspace_version, env!("CARGO_PKG_VERSION"));
        let spec = InputSpec::independent(vec![0.12, 0.3, 0.5, 0.77, 0.9]);
        let fresh = compiled.estimate(&spec).expect("fresh");
        let warm = loaded.estimate(&spec).expect("warm");
        for line in c17.line_ids() {
            let a = fresh.distribution(line).as_array();
            let b = warm.distribution(line).as_array();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "line {line}");
            }
        }
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_and_truncated_artifacts_are_rejected() {
        let compiled = compiled_c17();
        let bytes = encode_artifact(7, &compiled);
        // Flip one payload byte: checksum must catch it.
        let mut flipped = bytes.clone();
        *flipped.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            decode_artifact(&flipped, Some(7)),
            Err(ArtifactError::ChecksumMismatch)
        ));
        // Truncations anywhere must error, never panic.
        for cut in [0, 4, 8, 11, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_artifact(&bytes[..cut], None).is_err(), "cut {cut}");
        }
        // Trailing garbage is rejected too.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_artifact(&trailing, None).is_err());
        // Wrong magic.
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            decode_artifact(&wrong_magic, None),
            Err(ArtifactError::BadMagic)
        ));
    }

    #[test]
    fn version_and_key_mismatches_are_rejected() {
        let compiled = compiled_c17();
        let bytes = encode_artifact(7, &compiled);
        // Bump the format version (bytes 8..12, little-endian u32).
        let mut bumped = bytes.clone();
        bumped[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            decode_artifact(&bumped, Some(7)),
            Err(ArtifactError::UnsupportedVersion { found }) if found == FORMAT_VERSION + 1
        ));
        // A different workspace version is stale.
        let payload = persist::encode_pipeline(compiled.pipeline());
        let foreign = encode_with(7, "0.0.0-elsewhere", &payload);
        assert!(matches!(
            decode_artifact(&foreign, Some(7)),
            Err(ArtifactError::WorkspaceMismatch { .. })
        ));
        // A key mismatch is foreign.
        assert!(matches!(
            decode_artifact(&bytes, Some(8)),
            Err(ArtifactError::ForeignKey {
                expected: 8,
                found: 7
            })
        ));
        // With no expected key the same artifact is fine.
        assert!(decode_artifact(&bytes, None).is_ok());
    }

    #[test]
    fn verify_and_header_only_reads() {
        let dir = temp_dir("verify");
        let compiled = compiled_c17();
        let path = write_artifact(&dir, 42, &compiled).expect("writes");
        let header = read_header(&path).expect("header");
        assert_eq!(header.model_key, 42);
        assert_eq!(verify_artifact(&path).expect("verifies"), header);
        // Damage the payload: header-only read still succeeds, verify fails.
        let mut bytes = fs::read(&path).expect("read");
        *bytes.last_mut().unwrap() ^= 0xff;
        fs::write(&path, &bytes).expect("write");
        assert!(read_header(&path).is_ok());
        assert!(matches!(
            verify_artifact(&path),
            Err(ArtifactError::ChecksumMismatch)
        ));
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
